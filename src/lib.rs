//! # adaptive-backpressure
//!
//! A production-quality Rust reproduction of *Chang, Roy, Zhao, Annaswamy,
//! Chakraborty — "CPS-oriented Modeling and Control of Traffic Signals
//! Using Adaptive Back Pressure" (DATE 2020)*: the **UTIL-BP**
//! utilization-aware adaptive back-pressure traffic signal controller,
//! every substrate it needs (a microscopic traffic simulator standing in
//! for SUMO, the paper's discrete-time queueing network, grid networks and
//! Poisson demand), the baselines it is compared against, and the
//! experiment harness that regenerates every table and figure of the
//! paper's evaluation.
//!
//! This crate is a facade: each module re-exports one workspace crate.
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`core`] | `utilbp-core` | Intersection model (Section II), link gains (Eqs. 4–11), **Algorithm 1** |
//! | [`baselines`] | `utilbp-baselines` | CAP-BP, original BP, fixed-time, greedy, fixed-length ablation; fault-injection wrappers and the watchdog fallback |
//! | [`queueing`] | `utilbp-queueing` | Mesoscopic store-and-forward network simulator (Eq. 2) |
//! | [`microsim`] | `utilbp-microsim` | Microscopic simulator: Krauss car-following, dedicated lanes, ambers |
//! | [`netgen`] | `utilbp-netgen` | 3×3 grid builder, Table I/II demand, routes, en-route replanning |
//! | [`metrics`] | `utilbp-metrics` | Waiting ledgers, time series, phase traces, rendering |
//! | [`substrate`] | `utilbp-substrate` | The unified plant layer: one `TrafficSubstrate` trait over both simulators, plus the opt-in `InvariantGuard` |
//! | [`scenario`] | `utilbp-scenario` | Scenario files: topologies × demand profiles × disruption events (closures, sensor/actuator/comms faults) |
//! | [`telemetry`] | `utilbp-telemetry` | Flight recorder: typed event stream, gauge registry, tick-section profiler, timeline rendering |
//! | [`snapshot`] | `utilbp-snapshot` | Durable snapshot container: versioned format, per-section checksums, typed corruption errors |
//! | [`experiments`] | `utilbp-experiments` | Fig. 2, Table III, Figs. 3–5, ablations, scenario sweeps, the `chaos` resilience harness, the `trace` replay binary, the `recover` crash-recovery drill |
//!
//! ## Substrate layer
//!
//! The paper's CPS framing separates the *control plane* (decentralized
//! adaptive back-pressure signal decisions) from the *plant* (the road
//! network). In this workspace the plant is a single trait —
//! [`substrate::TrafficSubstrate`] — with two implementations:
//! [`queueing::QueueSim`] (the paper's Section II store-and-forward
//! model, exact and fast) and [`microsim::MicroSim`] (the microscopic
//! SUMO substitute). Every driver — the scenario engine, the experiments
//! runner, the `scenarios` binary, the perf harness — builds a simulator
//! through [`substrate::build_substrate`] and steps it through the trait;
//! nothing above the substrate crate dispatches on the backend.
//!
//! The trait is a *contract*, not just an interface (the full statement
//! lives in the `utilbp-substrate` crate docs):
//!
//! - **Determinism** — identical inputs give bit-identical metrics,
//!   across repeats and across `Parallelism::{Serial, Rayon}` (sharded
//!   phases use per-road RNG streams and no cross-shard state).
//! - **Closure semantics** — `set_road_closed` stops traffic from
//!   *entering* a road while on-road traffic drains; reopening restores
//!   admission. Exit roads never close (validated at the scenario layer).
//! - **Waiting accounting** — waiting accumulates per vehicle inside the
//!   step path and is flushed to the ledger once at completion;
//!   `mean_waiting_including_active` folds live accumulators (and
//!   backlog dwell) at query time. Nothing scans the fleet per tick.
//! - **Route-cursor access** — `replan_routes` walks every vehicle with
//!   junctions still ahead in a deterministic order (handing the caller
//!   the vehicle's id, route, and committed-hop count) and lets the
//!   caller rewrite its uncommitted route suffix. The routing-response
//!   layer below is built on this.
//! - **Occupancy snapshots** — `occupancy_snapshot` fills a reusable
//!   buffer with every road's incrementally maintained occupancy
//!   counter, the O(roads) sensor read behind periodic congestion
//!   monitoring.
//!
//! ### Routing response
//!
//! [`scenario::ReplanPolicy`] governs how vehicles already en route react
//! to the live network, executed by the scenario engine through the
//! substrate hooks above (all passes are serial, draw no randomness, and
//! read only deterministic sensor state — so Serial/Rayon/repeat runs
//! stay bit-identical under every policy):
//!
//! - **Closure diversion** (`AtNextJunction`): when a road closes
//!   mid-run, [`netgen::Replanner`] rewrites the uncommitted suffix of
//!   every upstream vehicle whose journey would enter it, splicing the
//!   best-weighted open detour from bounded-turn route enumeration onto
//!   the preserved committed prefix.
//! - **Reopen-restore**: the engine tracks diverted vehicles by id; when
//!   the road reopens, vehicles whose detour is *strictly* dominated by
//!   an open continuation are rewritten back ([`netgen::Replanner`]'s
//!   `restore`), and the reopened corridor carries its through-traffic
//!   again. Undominated detours are kept — a detour as good as the
//!   original is not churned.
//! - **Congestion replanning** (`Congestion { period, threshold,
//!   hysteresis }`): every `period` ticks the engine snapshots occupancy,
//!   folds occupancy/capacity ratios into a hysteresis-banded
//!   congested-road set ([`scenario::CongestionMonitor`]), and — only
//!   when the set is non-empty — diverts journeys headed into congestion,
//!   scoring detours through a congestion-weighted view of the network's
//!   edge weights (emptier roads weigh more; congested and closed roads
//!   are inadmissible, so reroutes cannot oscillate while the set is
//!   stable). Routing thereby responds to observed queue state rather
//!   than a fixed turn matrix — the regime of back-pressure control with
//!   unknown routing rates (arXiv:1401.3357).
//!
//! ## Robustness & fault plane
//!
//! The paper's CPS story is incomplete without the failure modes a
//! deployed signal system actually sees: dead induction loops, stuck
//! actuators, dropped command messages. The workspace models them as a
//! *fault plane* — deterministic decorators between the controller and
//! the plant, plus a watchdog that detects implausible sensing and
//! degrades gracefully:
//!
//! - **Sensor faults** ([`baselines::FaultySensors`],
//!   [`baselines::SensorFaultConfig`]): per-intersection seeded streams
//!   inject dropouts (counters read zero), frozen counters (stale
//!   reads), and stuck-at values into the queue lengths a controller
//!   sees. The plant itself is untouched — only perception is corrupted.
//! - **Actuator / comms faults** ([`baselines::FaultyActuation`],
//!   [`baselines::ActuationFaultConfig`]): the controller's *decision*
//!   is distorted on its way to the plant — phases stick for a
//!   configured dwell, commands drop (the last delivered decision
//!   holds), or deliveries lag by a bounded delay, each from an
//!   independent seeded stream.
//! - **Watchdog fallback** ([`baselines::Degrading`],
//!   [`baselines::WatchdogConfig`]): a per-intersection plausibility
//!   monitor over the sensor stream the controller consumes. When the
//!   stream turns implausible (frozen, impossibly jumpy, all-zero), the
//!   intersection switches to a fixed-time fallback; a hysteresis band
//!   of consecutive plausible reads must pass before control returns.
//!   Activation counts, degraded ticks, and mean recovery time surface
//!   in [`scenario::ScenarioOutcome`].
//! - **Runtime invariant guard** ([`substrate::InvariantGuard`]): an
//!   opt-in substrate wrapper (engine: `EngineConfig::guarded()`)
//!   checking vehicle conservation, queue non-negativity, and
//!   closed-road admission every tick, panicking with a tick-stamped
//!   diagnostic on the first violation. When absent it costs nothing —
//!   the unguarded path is untouched.
//!
//! All fault draws come from per-intersection streams split from the
//! scenario seed by fault domain, and every mode's draw is gated on its
//! probability, so enabling one mode never perturbs another's stream —
//! fixed-seed goldens hold with faults off, and runs with faults on are
//! bit-identical across Serial/Rayon and across repeats. Mid-run
//! toggling is exposed through shared [`baselines::FaultSwitch`]
//! handles. The `chaos` binary (and `tests/chaos.rs`) sweeps seeded
//! fault timelines — sensor, actuator, comms, closure/reopen
//! interleavings — over both backends under the guard, asserting zero
//! panics, exact conservation, bit-identical outcomes, and bounded
//! degradation with the fallback on.
//!
//! ## Observability
//!
//! The observability plane ([`telemetry`]) is a *flight recorder* for the
//! whole stack: deterministic, strictly passive, and zero-cost when off.
//! It has four pieces, all engine-attached (`scenario::ScenarioEngine`):
//!
//! - **Event stream** ([`telemetry::Recorder`],
//!   [`telemetry::FlightRecorder`]): typed, tick-stamped events — phase
//!   switches, closures/reopenings, surges, fault windows, watchdog
//!   activations/recoveries, replans (closure / reopen / congestion),
//!   invariant-guard violations — captured into a bounded ring buffer
//!   (oldest dropped first) and exported as JSONL with a fixed key
//!   order, so fixed-seed streams are byte-identical across
//!   Serial/Rayon and across repeats. [`telemetry::NullRecorder`] is
//!   the default: `enabled()` is false and every emission site is
//!   gated on one cached bool, so the off path allocates nothing.
//! - **Gauges** ([`telemetry::GaugeRegistry`]): backlog depth,
//!   congested-set size, per-intersection queue totals and max
//!   movement pressure, per-road occupancy — sampled on a fixed tick
//!   cadence into [`metrics::TimeSeries`].
//! - **Profiler** ([`telemetry::TickProfiler`]): wall-clock laps per
//!   tick section (decide / car-following / landings / waiting /
//!   replan / monitor) through the substrates' timed step hooks,
//!   rendered as a percentile table. Timing is observational only — it
//!   never feeds back into simulation state.
//! - **Sinks**: JSONL export, the per-intersection ASCII timeline
//!   ([`telemetry::render_timeline`]: phases × faults × fallbacks),
//!   and the `trace` binary (plus `scenarios --trace` / `chaos
//!   --trace`), which replays a scenario with recording on — under the
//!   guard's non-panicking *observe* mode — and renders the full
//!   report.
//!
//! The contract (stated in full in the `utilbp-telemetry` crate docs):
//! recording is *passive* — attaching any recorder, gauge cadence, or
//! profiler changes no simulation outcome bit, and the event stream
//! itself is deterministic. `tests/telemetry.rs` enforces both;
//! `tests/perf_alloc.rs` bounds the off path's allocations.
//!
//! ## Durability & recovery
//!
//! The durable state plane makes the whole stack *checkpointable*: a
//! running scenario can be captured to bytes at any tick and later
//! restored into an engine that continues **bit-identically** — same
//! [`scenario::ScenarioOutcome`], byte-equal telemetry JSONL — on either
//! substrate and under either execution mode (a checkpoint captured
//! under `Serial` resumes exactly under `Rayon`, and vice versa).
//!
//! - **Container** ([`snapshot`]): a little-endian binary format with a
//!   magic/version header and tagged sections, each carrying its length
//!   and a CRC-32 of its payload. Parsing damaged bytes never panics:
//!   bad magic, version skew, truncation, duplicate or misaligned
//!   sections, and checksum mismatches all surface as typed
//!   [`snapshot::SnapshotError`]s. The wire contract is documented in
//!   the `utilbp-snapshot` crate docs.
//! - **State plumbing** (`utilbp_core::state`): every stateful component
//!   — both plants, all controllers and their fault/watchdog decorators,
//!   the waiting ledger, the demand generator, the RNGs (by exact
//!   xoshiro256++ state words), the invariant guard's watermarks, the
//!   flight recorder — implements `save_state`/`load_state` over a flat
//!   word stream, with floats stored by bit pattern and collections in
//!   canonical order, so *save → load → save is a byte-level fixed
//!   point*. Intra-step scratch is deliberately excluded and rebuilt by
//!   the next step; gauges and profiler laps are measurements, not
//!   state, and are not captured.
//! - **Engine checkpoints** ([`scenario::ScenarioEngine::checkpoint`] /
//!   [`scenario::ScenarioEngine::restore`] /
//!   [`scenario::CheckpointPolicy`]): a checkpoint embeds the scenario
//!   spec in text form plus the full dynamic state; restore validates
//!   configuration compatibility (backend, guard flags, microscopic
//!   parameters) and rejects mismatches with a typed
//!   [`scenario::RestoreError`]. Periodic capture retains a small ring
//!   of recent checkpoints and surfaces each capture as a `checkpoint`
//!   event (size + CRC) in the flight recorder; the policy itself is
//!   durable, so a resumed run keeps the cadence.
//! - **Forking** ([`scenario::ScenarioEngine::fork`]): a checkpoint
//!   restored into an *independent* engine — a what-if timeline
//!   (closures, surges, controller swaps) explored without disturbing
//!   the primary run.
//! - **Crash-recovery drill** (`experiments::run_recovery`, the
//!   `recover` binary, and one round per `chaos` timeline): kill a run
//!   at an adversarial tick, tear or bit-flip the newest checkpoint,
//!   verify integrity validation rejects the damage, fall back to the
//!   newest valid capture, fast-forward, and gate on byte-identity with
//!   an uninterrupted golden run. `crates/scenario/tests/durability.rs`
//!   holds the full resume/fixed-point/corruption test matrix.
//!
//! ## Quickstart
//!
//! Run UTIL-BP on the paper's 3×3 network for ten simulated minutes:
//!
//! ```
//! use adaptive_backpressure::core::{SignalController, Tick, Ticks, UtilBp};
//! use adaptive_backpressure::netgen::{
//!     DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec,
//!     Pattern,
//! };
//! use adaptive_backpressure::queueing::{QueueSim, QueueSimConfig};
//!
//! let grid = GridNetwork::new(GridSpec::paper());
//! let controllers = (0..9)
//!     .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
//!     .collect();
//! let mut sim = QueueSim::new(
//!     grid.topology().clone(),
//!     controllers,
//!     QueueSimConfig::paper_exact(),
//! );
//! let mut demand = DemandGenerator::new(
//!     &grid,
//!     DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(600))),
//!     42,
//! );
//! for k in 0..600 {
//!     let arrivals = demand.poll(&grid, Tick::new(k));
//!     sim.step(arrivals);
//! }
//! println!(
//!     "served {} vehicles, mean queuing time {:.1} s",
//!     sim.ledger().completed(),
//!     sim.mean_waiting_including_active(),
//! );
//! ```
//!
//! See `examples/` for runnable scenarios and `DESIGN.md` /
//! `EXPERIMENTS.md` for the reproduction methodology and measured
//! results. The consolidated workspace guides live in `docs/`:
//! `docs/ARCHITECTURE.md` (crate graph, tick data-flow, where each
//! layer's contract is documented) and `docs/PERFORMANCE.md` (the
//! vehicle-storage layout story, the bench protocol behind
//! `BENCH_sim_throughput.json` and its run-entry schema, and the
//! shared-hardware caveats that govern how to read the numbers).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// The paper's intersection model and the UTIL-BP controller
/// (re-export of `utilbp-core`).
pub mod core {
    pub use utilbp_core::*;
}

/// Baseline and ablation controllers (re-export of `utilbp-baselines`).
pub mod baselines {
    pub use utilbp_baselines::*;
}

/// The mesoscopic queueing-network simulator (re-export of
/// `utilbp-queueing`).
pub mod queueing {
    pub use utilbp_queueing::*;
}

/// The microscopic traffic simulator (re-export of `utilbp-microsim`).
///
/// See the crate-level "Performance architecture" notes in
/// `utilbp-microsim` for the step path's mechanisms: the network-wide
/// vehicle arena (per-vehicle hot state in one contiguous
/// struct-of-arrays buffer, roads as index spans), the
/// occupancy-ordered sweep (an incrementally maintained active-road
/// list, so empty roads and lanes cost zero cache lines in either
/// fidelity), incremental sensing, and the
/// [`microsim::Fidelity`] contract: `Exact` (the default, the mode
/// every fixed-seed golden pins) vs `Batched` (counter-RNG,
/// road-granular car-following kernel, validated distributionally by
/// [`experiments::equivalence`]). `docs/PERFORMANCE.md` tells the
/// measured story.
pub mod microsim {
    pub use utilbp_microsim::*;
}

/// Network construction and demand generation (re-export of
/// `utilbp-netgen`).
pub mod netgen {
    pub use utilbp_netgen::*;
}

/// Measurement and reporting utilities (re-export of `utilbp-metrics`).
pub mod metrics {
    pub use utilbp_metrics::*;
}

/// The unified plant layer: the `TrafficSubstrate` trait both simulators
/// implement and the shared constructor every driver builds through
/// (re-export of `utilbp-substrate`).
pub mod substrate {
    pub use utilbp_substrate::*;
}

/// Scenario descriptions and the engine that drives both substrates
/// through them (re-export of `utilbp-scenario`).
pub mod scenario {
    pub use utilbp_scenario::*;
}

/// The flight recorder: deterministic telemetry, tracing, and profiling
/// (re-export of `utilbp-telemetry`).
pub mod telemetry {
    pub use utilbp_telemetry::*;
}

/// The durable snapshot container: versioned, checksummed sections with
/// typed corruption errors (re-export of `utilbp-snapshot`).
pub mod snapshot {
    pub use utilbp_snapshot::*;
}

/// The table/figure regeneration harness (re-export of
/// `utilbp-experiments`).
pub mod experiments {
    pub use utilbp_experiments::*;
}
