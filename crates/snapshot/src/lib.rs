//! # utilbp-snapshot
//!
//! The durable snapshot container behind checkpoint/restore: a
//! versioned, checksummed binary framing for the word-level state
//! streams of [`utilbp_core::state`]. The `crates/compat/serde` shims
//! are no-ops, so — like the scenario text format and the telemetry
//! JSONL — the format is hand-rolled and fully specified here.
//!
//! ## Wire format (version 1)
//!
//! ```text
//! header   := magic "UBPSNAP\0" (8 bytes) · version u32 LE · section_count u32 LE
//! section  := tag u32 LE · payload_len u64 LE · crc32 u32 LE · payload
//! snapshot := header · section^section_count
//! ```
//!
//! - All integers are little-endian; a *word section* is a payload of
//!   `u64` words packed little-endian (length a multiple of 8).
//! - The CRC is CRC-32 (IEEE 802.3, the zlib/PNG polynomial) over the
//!   payload bytes only. Each section is independently verified, so a
//!   torn write corrupts — and is detected in — exactly the sections it
//!   touched.
//! - Sections are identified by caller-chosen tags, appear in write
//!   order, and must be unique; readers address them by tag, so a
//!   future version can append sections without breaking older
//!   readers of the ones they know. The header's section count makes
//!   a write torn *between* sections detectable too — a valid prefix
//!   of sections is still a truncated snapshot.
//!
//! ## Error contract
//!
//! Parsing never panics on untrusted bytes: truncation, bad magic,
//! version skew, and checksum mismatches all surface as typed
//! [`SnapshotError`] values ([`SnapshotReader::parse`] validates every
//! section's checksum up front). Recovery layers rely on this to
//! reject a corrupted checkpoint and fall back to an older one.
//!
//! ## Example
//!
//! ```
//! use utilbp_snapshot::{SnapshotReader, SnapshotWriter, SnapshotError};
//!
//! let mut w = SnapshotWriter::new();
//! w.section_words(1, &[7, 8, 9]);
//! w.section_bytes(2, b"spec text");
//! let bytes = w.finish();
//!
//! let reader = SnapshotReader::parse(&bytes).unwrap();
//! assert_eq!(reader.words(1).unwrap(), vec![7, 8, 9]);
//! assert_eq!(reader.bytes(2).unwrap(), b"spec text");
//!
//! // A flipped payload bit is caught by the section checksum.
//! let mut torn = bytes.clone();
//! *torn.last_mut().unwrap() ^= 0x01;
//! assert!(matches!(
//!     SnapshotReader::parse(&torn),
//!     Err(SnapshotError::ChecksumMismatch { tag: 2 })
//! ));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::error::Error;
use std::fmt;

use utilbp_core::state::StateError;

/// The 8-byte magic prefix of every snapshot.
pub const MAGIC: [u8; 8] = *b"UBPSNAP\0";

/// The current wire-format version.
pub const FORMAT_VERSION: u32 = 1;

/// Builds the CRC-32 (IEEE) lookup table at compile time.
const fn crc32_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

const CRC_TABLE: [u32; 256] = crc32_table();

/// CRC-32 (IEEE 802.3 / zlib polynomial) of `bytes`.
///
/// # Examples
///
/// ```
/// // The classic check value for the IEEE polynomial.
/// assert_eq!(utilbp_snapshot::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ u32::from(b)) & 0xFF) as usize];
    }
    !crc
}

/// A malformed, truncated, or corrupted snapshot.
///
/// Every variant is a recoverable error value — parsing untrusted
/// bytes never panics.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The bytes do not start with [`MAGIC`].
    BadMagic,
    /// The header names a format version this reader does not speak.
    UnsupportedVersion {
        /// The version found in the header.
        found: u32,
    },
    /// The bytes end mid-header, mid-section, or before the header's
    /// section count is satisfied.
    Truncated {
        /// Byte offset at which parsing ran out of input.
        at: usize,
    },
    /// Bytes remain after the last section the header promised.
    TrailingBytes {
        /// Offset of the first unexpected byte.
        at: usize,
    },
    /// A section's payload does not match its stored checksum.
    ChecksumMismatch {
        /// The corrupted section's tag.
        tag: u32,
    },
    /// The same tag appears twice.
    DuplicateSection {
        /// The repeated tag.
        tag: u32,
    },
    /// A section required by the reader is absent.
    MissingSection {
        /// The absent tag.
        tag: u32,
    },
    /// A word section's payload length is not a multiple of 8.
    MisalignedSection {
        /// The misaligned section's tag.
        tag: u32,
    },
    /// A section parsed and verified, but its word stream failed a
    /// component's semantic checks.
    State(StateError),
}

impl fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SnapshotError::BadMagic => write!(f, "not a snapshot: bad magic"),
            SnapshotError::UnsupportedVersion { found } => {
                write!(
                    f,
                    "unsupported snapshot format version {found} (reader speaks {FORMAT_VERSION})"
                )
            }
            SnapshotError::Truncated { at } => {
                write!(f, "snapshot truncated at byte {at}")
            }
            SnapshotError::TrailingBytes { at } => {
                write!(f, "unexpected bytes after the last section, at byte {at}")
            }
            SnapshotError::ChecksumMismatch { tag } => {
                write!(f, "section {tag} failed its checksum")
            }
            SnapshotError::DuplicateSection { tag } => {
                write!(f, "section {tag} appears more than once")
            }
            SnapshotError::MissingSection { tag } => {
                write!(f, "required section {tag} is absent")
            }
            SnapshotError::MisalignedSection { tag } => {
                write!(f, "section {tag} is not a whole number of words")
            }
            SnapshotError::State(e) => write!(f, "section state stream: {e}"),
        }
    }
}

impl Error for SnapshotError {}

impl From<StateError> for SnapshotError {
    fn from(e: StateError) -> Self {
        SnapshotError::State(e)
    }
}

/// Serializes a snapshot: header first, then checksummed sections in
/// write order.
#[derive(Debug)]
pub struct SnapshotWriter {
    buf: Vec<u8>,
    count: u32,
}

impl SnapshotWriter {
    /// A writer with the version-1 header already emitted (the section
    /// count is patched in by [`finish`](Self::finish)).
    pub fn new() -> Self {
        let mut buf = Vec::with_capacity(64);
        buf.extend_from_slice(&MAGIC);
        buf.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        buf.extend_from_slice(&0u32.to_le_bytes());
        SnapshotWriter { buf, count: 0 }
    }

    /// Appends a raw byte section under `tag`.
    pub fn section_bytes(&mut self, tag: u32, payload: &[u8]) {
        self.buf.extend_from_slice(&tag.to_le_bytes());
        self.buf
            .extend_from_slice(&(payload.len() as u64).to_le_bytes());
        self.buf.extend_from_slice(&crc32(payload).to_le_bytes());
        self.buf.extend_from_slice(payload);
        self.count += 1;
    }

    /// Appends a word section under `tag`: the words packed
    /// little-endian.
    pub fn section_words(&mut self, tag: u32, words: &[u64]) {
        let mut payload = Vec::with_capacity(words.len() * 8);
        for &w in words {
            payload.extend_from_slice(&w.to_le_bytes());
        }
        self.section_bytes(tag, &payload);
    }

    /// Finalizes the snapshot, patching the section count into the
    /// header.
    pub fn finish(self) -> Vec<u8> {
        let mut buf = self.buf;
        buf[12..16].copy_from_slice(&self.count.to_le_bytes());
        buf
    }
}

impl Default for SnapshotWriter {
    fn default() -> Self {
        SnapshotWriter::new()
    }
}

/// A parsed, fully checksum-verified snapshot.
#[derive(Debug)]
pub struct SnapshotReader<'a> {
    sections: Vec<(u32, &'a [u8])>,
}

impl<'a> SnapshotReader<'a> {
    /// Parses and verifies `bytes`: header magic and version, section
    /// framing, tag uniqueness, and every section's checksum.
    ///
    /// # Errors
    ///
    /// Any [`SnapshotError`] variant except `MissingSection` /
    /// `MisalignedSection` / `State` (those belong to per-section
    /// reads).
    pub fn parse(bytes: &'a [u8]) -> Result<Self, SnapshotError> {
        let prefix = bytes.len().min(MAGIC.len());
        if bytes[..prefix] != MAGIC[..prefix] {
            return Err(SnapshotError::BadMagic);
        }
        if bytes.len() < 16 {
            return Err(SnapshotError::Truncated { at: bytes.len() });
        }
        let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
        if version != FORMAT_VERSION {
            return Err(SnapshotError::UnsupportedVersion { found: version });
        }
        let count = u32::from_le_bytes(bytes[12..16].try_into().expect("4 bytes"));
        let mut sections: Vec<(u32, &'a [u8])> = Vec::new();
        let mut pos = 16;
        for _ in 0..count {
            if bytes.len() - pos < 16 {
                return Err(SnapshotError::Truncated {
                    at: bytes.len().min(pos + 16),
                });
            }
            let tag = u32::from_le_bytes(bytes[pos..pos + 4].try_into().expect("4 bytes"));
            let len = u64::from_le_bytes(bytes[pos + 4..pos + 12].try_into().expect("8 bytes"));
            let crc = u32::from_le_bytes(bytes[pos + 12..pos + 16].try_into().expect("4 bytes"));
            pos += 16;
            let len = usize::try_from(len).map_err(|_| SnapshotError::Truncated { at: pos })?;
            if bytes.len() - pos < len {
                return Err(SnapshotError::Truncated { at: bytes.len() });
            }
            let payload = &bytes[pos..pos + len];
            pos += len;
            if crc32(payload) != crc {
                return Err(SnapshotError::ChecksumMismatch { tag });
            }
            if sections.iter().any(|&(t, _)| t == tag) {
                return Err(SnapshotError::DuplicateSection { tag });
            }
            sections.push((tag, payload));
        }
        if pos != bytes.len() {
            return Err(SnapshotError::TrailingBytes { at: pos });
        }
        Ok(SnapshotReader { sections })
    }

    /// The section tags, in write order.
    pub fn tags(&self) -> impl Iterator<Item = u32> + '_ {
        self.sections.iter().map(|&(t, _)| t)
    }

    /// Whether a section with `tag` exists.
    pub fn has(&self, tag: u32) -> bool {
        self.sections.iter().any(|&(t, _)| t == tag)
    }

    /// The raw payload of section `tag`.
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] when absent.
    pub fn bytes(&self, tag: u32) -> Result<&'a [u8], SnapshotError> {
        self.sections
            .iter()
            .find(|&&(t, _)| t == tag)
            .map(|&(_, p)| p)
            .ok_or(SnapshotError::MissingSection { tag })
    }

    /// The words of section `tag` (payload unpacked little-endian).
    ///
    /// # Errors
    ///
    /// [`SnapshotError::MissingSection`] when absent,
    /// [`SnapshotError::MisalignedSection`] when the payload is not a
    /// whole number of words.
    pub fn words(&self, tag: u32) -> Result<Vec<u64>, SnapshotError> {
        let payload = self.bytes(tag)?;
        if payload.len() % 8 != 0 {
            return Err(SnapshotError::MisalignedSection { tag });
        }
        Ok(payload
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes(c.try_into().expect("8 bytes")))
            .collect())
    }
}

/// Verifies `bytes` parse as a well-formed snapshot with every section
/// checksum intact (the recovery scan's validity test).
///
/// # Errors
///
/// The first [`SnapshotError`] encountered.
pub fn validate(bytes: &[u8]) -> Result<(), SnapshotError> {
    SnapshotReader::parse(bytes).map(|_| ())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut w = SnapshotWriter::new();
        w.section_words(10, &[1, u64::MAX, 0x0123_4567_89AB_CDEF]);
        w.section_bytes(20, b"scenario text\n");
        w.section_words(30, &[]);
        w.finish()
    }

    #[test]
    fn round_trips_sections_by_tag() {
        let bytes = sample();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(r.tags().collect::<Vec<_>>(), vec![10, 20, 30]);
        assert_eq!(
            r.words(10).unwrap(),
            vec![1, u64::MAX, 0x0123_4567_89AB_CDEF]
        );
        assert_eq!(r.bytes(20).unwrap(), b"scenario text\n");
        assert_eq!(r.words(30).unwrap(), Vec::<u64>::new());
        assert!(r.has(10));
        assert!(!r.has(99));
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample(), sample());
    }

    #[test]
    fn bad_magic_is_rejected() {
        let mut bytes = sample();
        bytes[0] ^= 0xFF;
        assert_eq!(
            SnapshotReader::parse(&bytes).unwrap_err(),
            SnapshotError::BadMagic
        );
        assert_eq!(
            SnapshotReader::parse(b"not a snapshot at all").unwrap_err(),
            SnapshotError::BadMagic
        );
    }

    #[test]
    fn version_skew_is_rejected() {
        let mut bytes = sample();
        bytes[8..12].copy_from_slice(&99u32.to_le_bytes());
        assert_eq!(
            SnapshotReader::parse(&bytes).unwrap_err(),
            SnapshotError::UnsupportedVersion { found: 99 }
        );
    }

    #[test]
    fn every_truncation_point_is_an_error_not_a_panic() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = SnapshotReader::parse(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(
                    err,
                    SnapshotError::Truncated { .. } | SnapshotError::BadMagic
                ),
                "cut at {cut}: {err}"
            );
        }
        assert!(SnapshotReader::parse(&bytes).is_ok());
    }

    #[test]
    fn every_single_bit_flip_in_a_payload_is_detected() {
        let bytes = sample();
        // Section 20's payload: find it and flip each bit in turn.
        let r = SnapshotReader::parse(&bytes).unwrap();
        let payload = r.bytes(20).unwrap();
        // From the tail: the final section is a bare 16-byte header with
        // an empty payload, preceded by section 20's header + payload.
        let start = bytes.len() - 16 - payload.len();
        drop(r);
        for bit in 0..payload.len() * 8 {
            let mut torn = bytes.clone();
            torn[start + bit / 8] ^= 1 << (bit % 8);
            assert_eq!(
                SnapshotReader::parse(&torn).unwrap_err(),
                SnapshotError::ChecksumMismatch { tag: 20 },
                "flipped bit {bit}"
            );
        }
    }

    #[test]
    fn duplicate_and_missing_sections_are_typed_errors() {
        let mut w = SnapshotWriter::new();
        w.section_words(5, &[1]);
        w.section_words(5, &[2]);
        assert_eq!(
            SnapshotReader::parse(&w.finish()).unwrap_err(),
            SnapshotError::DuplicateSection { tag: 5 }
        );

        let r_bytes = sample();
        let r = SnapshotReader::parse(&r_bytes).unwrap();
        assert_eq!(
            r.words(99).unwrap_err(),
            SnapshotError::MissingSection { tag: 99 }
        );
    }

    #[test]
    fn misaligned_word_sections_are_rejected() {
        let mut w = SnapshotWriter::new();
        w.section_bytes(7, b"12345");
        let bytes = w.finish();
        let r = SnapshotReader::parse(&bytes).unwrap();
        assert_eq!(
            r.words(7).unwrap_err(),
            SnapshotError::MisalignedSection { tag: 7 }
        );
    }

    #[test]
    fn crc_reference_vectors() {
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn validate_matches_parse() {
        let bytes = sample();
        assert!(validate(&bytes).is_ok());
        let mut torn = bytes.clone();
        torn.truncate(torn.len() - 1);
        assert!(validate(&torn).is_err());
    }
}
