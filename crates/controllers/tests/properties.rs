//! Property-based tests of the baseline controllers' timing invariants.

use proptest::prelude::*;
use utilbp_baselines::{
    Actuated, ActuatedConfig, CapBp, FixedLengthUtilBp, FixedTime, LongestQueueFirst, OriginalBp,
    SlotMachine,
};
use utilbp_core::{
    standard, IntersectionView, PhaseDecision, PhaseId, QueueObservation, SignalController, Tick,
    Ticks,
};

fn observation_strategy() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (
        proptest::collection::vec(0u32..=40, 12),
        proptest::collection::vec(0u32..=120, 4),
    )
}

fn build_obs(
    layout: &utilbp_core::IntersectionLayout,
    movements: &[u32],
    outgoing: &[u32],
) -> QueueObservation {
    let mut obs = QueueObservation::zeros(layout);
    for (i, &q) in movements.iter().enumerate() {
        obs.set_movement(utilbp_core::LinkId::new(i as u16), q);
    }
    for (i, &q) in outgoing.iter().enumerate() {
        obs.set_outgoing(utilbp_core::OutgoingId::new(i as u8), q);
    }
    obs
}

/// Feeds a controller a sequence of random observations and checks the
/// universal timing contract: decisions are valid phases or ambers, and
/// every amber run lasts exactly 4 ticks.
fn check_timing_contract(
    ctrl: &mut dyn SignalController,
    seq: &[(Vec<u32>, Vec<u32>)],
) -> Result<(), TestCaseError> {
    let layout = standard::four_way(120, 1.0);
    let mut amber_run = 0u64;
    let mut k = 0u64;
    for (movements, outgoing) in seq {
        let obs = build_obs(&layout, movements, outgoing);
        for _ in 0..6 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            match ctrl.decide(&view, Tick::new(k)) {
                PhaseDecision::Transition => amber_run += 1,
                PhaseDecision::Control(p) => {
                    prop_assert!(p.index() < layout.num_phases());
                    if amber_run > 0 {
                        prop_assert_eq!(amber_run, 4, "amber must last exactly 4 ticks");
                    }
                    amber_run = 0;
                }
            }
            k += 1;
        }
    }
    Ok(())
}

proptest! {
    #[test]
    fn all_baselines_respect_the_timing_contract(
        seq in proptest::collection::vec(observation_strategy(), 2..12),
    ) {
        let mut controllers: Vec<Box<dyn SignalController>> = vec![
            Box::new(CapBp::new(Ticks::new(7))),
            Box::new(OriginalBp::new(Ticks::new(9))),
            Box::new(FixedTime::new(Ticks::new(5), Ticks::new(4))),
            Box::new(LongestQueueFirst::new(Ticks::new(6))),
            Box::new(FixedLengthUtilBp::new(Ticks::new(8))),
            Box::new(Actuated::with_config(ActuatedConfig {
                min_green: Ticks::new(3),
                max_green: Ticks::new(12),
                transition: Ticks::new(4),
            })),
        ];
        for ctrl in &mut controllers {
            check_timing_contract(ctrl.as_mut(), &seq)?;
        }
    }

    /// The slot machine's green share converges to period/(period+amber)
    /// in always-transition mode, for any period/amber combination.
    #[test]
    fn slot_machine_duty_cycle(period in 2u64..40, amber in 1u64..8) {
        let mut m = SlotMachine::with_always_transition(
            Ticks::new(period),
            Ticks::new(amber),
        );
        let cycles = 50;
        let horizon = (period + amber) * cycles;
        let mut green = 0u64;
        for k in 0..horizon {
            if m.decide(Tick::new(k), |_| PhaseId::new(0)) != PhaseDecision::Transition {
                green += 1;
            }
        }
        let share = green as f64 / horizon as f64;
        let expected = period as f64 / (period + amber) as f64;
        prop_assert!(
            (share - expected).abs() < 0.05,
            "share {share} vs expected {expected}"
        );
    }

    /// Baselines are deterministic: equal observation streams give equal
    /// decision streams.
    #[test]
    fn baselines_are_deterministic(
        seq in proptest::collection::vec(observation_strategy(), 1..10),
    ) {
        let layout = standard::four_way(120, 1.0);
        let mut a = CapBp::new(Ticks::new(11));
        let mut b = CapBp::new(Ticks::new(11));
        let mut k = 0u64;
        for (movements, outgoing) in &seq {
            let obs = build_obs(&layout, movements, outgoing);
            for _ in 0..3 {
                let va = IntersectionView::new(&layout, &obs).unwrap();
                let vb = IntersectionView::new(&layout, &obs).unwrap();
                prop_assert_eq!(a.decide(&va, Tick::new(k)), b.decide(&vb, Tick::new(k)));
                k += 1;
            }
        }
    }
}
