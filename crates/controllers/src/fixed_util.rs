//! Ablation controller: UTIL-BP's gain function inside fixed-length slots.
//!
//! Isolates the contribution of *adaptivity* (varying-length phases) from
//! the contribution of the *utilization-aware gain* (Eq. 8): this
//! controller selects phases exactly like UTIL-BP's Case 3, but only at
//! fixed slot boundaries, like CAP-BP. Comparing
//! `UtilBp` vs `FixedLengthUtilBp` vs `CapBp` decomposes the paper's
//! improvement into its two mechanisms.

use serde::{Deserialize, Serialize};
use utilbp_core::{
    pressure, GainPenalties, IntersectionView, PhaseDecision, PhaseId, SignalController, Tick,
    Ticks,
};

use crate::slot::SlotMachine;

/// Configuration of [`FixedLengthUtilBp`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct FixedLengthUtilBpConfig {
    /// The fixed green period.
    pub period: Ticks,
    /// Amber duration between differing slots.
    pub transition: Ticks,
    /// The `α`/`β` penalties of Eq. 8.
    pub penalties: GainPenalties,
}

/// UTIL-BP's utilization-aware phase selection on a fixed-length slot
/// schedule (ablation).
#[derive(Debug, Clone)]
pub struct FixedLengthUtilBp {
    config: FixedLengthUtilBpConfig,
    slots: SlotMachine,
}

impl FixedLengthUtilBp {
    /// Creates a controller with the paper's amber and penalties and the
    /// given period.
    pub fn new(period: Ticks) -> Self {
        FixedLengthUtilBp::with_config(FixedLengthUtilBpConfig {
            period,
            transition: Ticks::new(4),
            penalties: GainPenalties::PAPER,
        })
    }

    /// Creates a controller from an explicit configuration.
    pub fn with_config(config: FixedLengthUtilBpConfig) -> Self {
        FixedLengthUtilBp {
            config,
            // Conventional fixed-length timing: every slot ends with an
            // amber, so the comparison against the adaptive UtilBp isolates
            // exactly the paper's varying-length-phase mechanism.
            slots: SlotMachine::with_always_transition(config.period, config.transition),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &FixedLengthUtilBpConfig {
        &self.config
    }

    /// UTIL-BP Case 3 selection (Lines 6–11 of Algorithm 1).
    fn select(
        view: &IntersectionView<'_>,
        penalties: GainPenalties,
        current: Option<PhaseId>,
    ) -> PhaseId {
        let layout = view.layout();
        let alpha = penalties.alpha();

        let mut scores = Vec::with_capacity(layout.num_phases());
        for phase in layout.phase_ids() {
            let mut total = 0.0;
            let mut max = f64::NEG_INFINITY;
            for &l in layout.phase(phase).links() {
                let g = pressure::link_gain(view, l, penalties);
                total += g;
                max = max.max(g);
            }
            scores.push((phase, total, max));
        }

        let any_utilizable = scores.iter().any(|&(_, _, max)| max > alpha);
        let mut best: Option<(PhaseId, f64)> = None;
        for &(phase, total, max) in &scores {
            if any_utilizable && max <= alpha {
                continue;
            }
            let key = if any_utilizable { total } else { max };
            let replace = match best {
                None => true,
                Some((p, s)) => key > s || (key == s && current == Some(phase) && p != phase),
            };
            if replace {
                best = Some((phase, key));
            }
        }
        best.expect("layouts always have at least one phase").0
    }
}

impl SignalController for FixedLengthUtilBp {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        let penalties = self.config.penalties;
        self.slots
            .decide(now, |current| Self::select(view, penalties, current))
    }

    fn reset(&mut self) {
        self.slots.reset();
    }

    fn name(&self) -> &'static str {
        "util-bp/fixed-length"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        self.slots.save_state(writer);
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        self.slots.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::standard::{self, Approach, Turn};
    use utilbp_core::QueueObservation;

    fn layout() -> utilbp_core::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    #[test]
    fn selection_matches_utilbp_case3() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        // c1's best link blocked by a full exit, c4 servable: Case 3 must
        // route to c4 — same scenario as the UtilBp unit test.
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 100);
        obs.set_outgoing(layout.link(ns).to(), 120);
        obs.set_movement(standard::link_id(Approach::East, Turn::Right), 1);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let mut ctrl = FixedLengthUtilBp::new(Ticks::new(12));
        assert_eq!(
            ctrl.decide(&view, Tick::ZERO).phase(),
            Some(standard::phase_id(4))
        );
    }

    #[test]
    fn cannot_react_mid_slot_unlike_adaptive_utilbp() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 3);
        let mut ctrl = FixedLengthUtilBp::new(Ticks::new(12));
        {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(
                ctrl.decide(&view, Tick::ZERO).phase(),
                Some(standard::phase_id(1))
            );
        }
        // Queue empties immediately; the fixed-length variant still burns
        // the whole slot on c1.
        obs.set_movement(ns, 0);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 40);
        for k in 1..12 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(
                ctrl.decide(&view, Tick::new(k)).phase(),
                Some(standard::phase_id(1)),
                "k={k}"
            );
        }
        let view = IntersectionView::new(&layout, &obs).unwrap();
        assert!(ctrl.decide(&view, Tick::new(12)).is_transition());
    }

    #[test]
    fn config_and_name() {
        let ctrl = FixedLengthUtilBp::new(Ticks::new(8));
        assert_eq!(ctrl.config().period, Ticks::new(8));
        assert_eq!(ctrl.config().transition, Ticks::new(4));
        assert_eq!(ctrl.name(), "util-bp/fixed-length");
    }
}
