//! Watchdog-guarded graceful degradation: a per-intersection health
//! monitor that swaps an adaptive controller for a fixed-time fallback
//! while its sensor stream looks implausible.
//!
//! The paper's CPS framing makes each intersection an autonomous
//! sensor→controller→actuator loop. An adaptive controller fed garbage
//! readings can behave arbitrarily badly (a frozen counter pins UTIL-BP
//! to one phase forever); a fixed-time plan reads no sensors at all and
//! therefore bounds the damage. [`Degrading`] monitors the *readings
//! the wrapped controller actually sees* (wrap it **inside**
//! [`FaultySensors`](crate::FaultySensors), so corruption is visible to
//! the monitor) and degrades per intersection:
//!
//! - **frozen stream**: every movement reading identical to the
//!   previous decision's for `freeze_ticks` consecutive decisions while
//!   at least one queue is non-empty — real queues under service do not
//!   hold perfectly still that long;
//! - **impossible delta**: any movement reading jumping by more than
//!   `max_delta` vehicles between consecutive decisions — arrivals and
//!   service are rate-limited, teleporting queues are not.
//!
//! Recovery is hysteresis-banded: the monitor returns control to the
//! adaptive controller only after `recovery_ticks` consecutive
//! *plausible* decisions, so a flapping sensor cannot bounce the
//! intersection between controllers every tick.
//!
//! Both controllers run every decision (the fallback's cycle clock and
//! the adaptive controller's internal state stay warm), so hand-offs
//! are seamless and the whole wrapper stays deterministic: it draws no
//! randomness and each instance owns its own [`WatchdogStats`] handle,
//! which parallel substrates never share across intersections.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use serde::{Deserialize, Serialize};
use utilbp_core::{IntersectionView, PhaseDecision, SignalController, Tick};

/// Health-monitor parameters for [`Degrading`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WatchdogConfig {
    /// Consecutive decisions with a bit-identical, non-empty movement
    /// snapshot before the stream is declared frozen. Must be ≥ 1.
    pub freeze_ticks: u64,
    /// Largest credible per-decision change of a single movement
    /// reading, in vehicles.
    pub max_delta: u32,
    /// Consecutive plausible decisions required before control returns
    /// to the adaptive controller. Must be ≥ 1.
    pub recovery_ticks: u64,
}

impl Default for WatchdogConfig {
    fn default() -> Self {
        WatchdogConfig {
            freeze_ticks: 24,
            max_delta: 16,
            recovery_ticks: 12,
        }
    }
}

impl WatchdogConfig {
    /// Validates the monitor thresholds.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        if self.freeze_ticks == 0 {
            return Err("freeze-ticks must be ≥ 1".to_string());
        }
        if self.recovery_ticks == 0 {
            return Err("recovery-ticks must be ≥ 1".to_string());
        }
        if self.max_delta == 0 {
            return Err("max-delta must be ≥ 1".to_string());
        }
        Ok(())
    }
}

#[derive(Debug, Default)]
struct StatsInner {
    activations: AtomicU64,
    degraded_ticks: AtomicU64,
    recoveries: AtomicU64,
    recovery_ticks_total: AtomicU64,
    degraded_now: AtomicBool,
}

/// A shared, read-side handle onto one [`Degrading`] wrapper's
/// counters: the scenario engine keeps a clone per intersection and
/// aggregates after the run. Each wrapper mutates only its own handle,
/// so parallel substrates stay deterministic.
#[derive(Debug, Clone, Default)]
pub struct WatchdogStats(Arc<StatsInner>);

impl WatchdogStats {
    /// How many times the watchdog switched this intersection onto the
    /// fallback controller.
    pub fn activations(&self) -> u64 {
        self.0.activations.load(Ordering::Relaxed)
    }

    /// Total decisions executed by the fallback controller.
    pub fn degraded_ticks(&self) -> u64 {
        self.0.degraded_ticks.load(Ordering::Relaxed)
    }

    /// How many degradation episodes ended in a recovery.
    pub fn recoveries(&self) -> u64 {
        self.0.recoveries.load(Ordering::Relaxed)
    }

    /// Summed length, in ticks, of every *completed* degradation
    /// episode (divide by [`recoveries`](WatchdogStats::recoveries) for
    /// the mean time-to-recover).
    pub fn recovery_ticks_total(&self) -> u64 {
        self.0.recovery_ticks_total.load(Ordering::Relaxed)
    }

    /// Whether the intersection is currently running its fallback.
    pub fn is_degraded(&self) -> bool {
        self.0.degraded_now.load(Ordering::Relaxed)
    }
}

/// Wraps an adaptive controller `C` with a fixed-time-style fallback
/// `F` behind a sensor-plausibility watchdog (see the module docs for
/// the monitor rules).
///
/// # Examples
///
/// ```
/// use utilbp_baselines::{Degrading, FixedTime, WatchdogConfig};
/// use utilbp_core::{standard, IntersectionView, QueueObservation, SignalController, Tick, Ticks, UtilBp};
///
/// let mut ctrl = Degrading::new(
///     UtilBp::paper(),
///     FixedTime::new(Ticks::new(12), Ticks::new(2)),
///     WatchdogConfig::default(),
/// );
/// let layout = standard::four_way(120, 1.0);
/// let obs = QueueObservation::zeros(&layout);
/// let view = IntersectionView::new(&layout, &obs).unwrap();
/// let _ = ctrl.decide(&view, Tick::ZERO);
/// assert!(!ctrl.stats().is_degraded());
/// ```
#[derive(Debug, Clone)]
pub struct Degrading<C, F> {
    inner: C,
    fallback: F,
    config: WatchdogConfig,
    stats: WatchdogStats,
    /// Movement readings seen at the previous decision, in layout
    /// order; empty before the first decision.
    prev: Vec<u32>,
    /// Consecutive decisions with a frozen, non-empty snapshot.
    same_streak: u64,
    /// Consecutive plausible decisions while degraded.
    plausible_streak: u64,
    /// Ticks spent in the current degradation episode.
    episode_ticks: u64,
    degraded: bool,
}

impl<C: SignalController, F: SignalController> Degrading<C, F> {
    /// Wraps `inner` with `fallback` behind the given watchdog.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`WatchdogConfig::validate`].
    pub fn new(inner: C, fallback: F, config: WatchdogConfig) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid watchdog config: {msg}");
        }
        Degrading {
            inner,
            fallback,
            config,
            stats: WatchdogStats::default(),
            prev: Vec::new(),
            same_streak: 0,
            plausible_streak: 0,
            episode_ticks: 0,
            degraded: false,
        }
    }

    /// The wrapped adaptive controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The monitor thresholds.
    pub fn config(&self) -> &WatchdogConfig {
        &self.config
    }

    /// A clonable handle onto this wrapper's counters.
    pub fn stats(&self) -> WatchdogStats {
        self.stats.clone()
    }

    /// Folds the current movement snapshot into the monitor and returns
    /// whether the stream currently looks implausible.
    fn observe(&mut self, view: &IntersectionView<'_>) -> bool {
        let layout = view.layout();
        let mut implausible_delta = false;
        let mut all_same = true;
        let mut total: u64 = 0;
        let comparable = self.prev.len() == layout.link_ids().count();
        for (slot, link) in layout.link_ids().enumerate() {
            let reading = view.movement_queue(link);
            total += u64::from(reading);
            if comparable {
                let before = self.prev[slot];
                all_same &= reading == before;
                implausible_delta |= reading.abs_diff(before) > self.config.max_delta;
                self.prev[slot] = reading;
            } else {
                self.prev.push(reading);
            }
        }
        if comparable && all_same && total > 0 {
            self.same_streak += 1;
        } else {
            self.same_streak = 0;
        }
        implausible_delta || self.same_streak >= self.config.freeze_ticks
    }
}

impl<C: SignalController, F: SignalController> SignalController for Degrading<C, F> {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        let implausible = self.observe(view);
        if !self.degraded {
            if implausible {
                self.degraded = true;
                self.plausible_streak = 0;
                self.episode_ticks = 0;
                self.stats.0.activations.fetch_add(1, Ordering::Relaxed);
                self.stats.0.degraded_now.store(true, Ordering::Relaxed);
            }
        } else if implausible {
            self.plausible_streak = 0;
        } else {
            self.plausible_streak += 1;
            if self.plausible_streak >= self.config.recovery_ticks {
                self.degraded = false;
                self.stats.0.recoveries.fetch_add(1, Ordering::Relaxed);
                self.stats
                    .0
                    .recovery_ticks_total
                    .fetch_add(self.episode_ticks, Ordering::Relaxed);
                self.stats.0.degraded_now.store(false, Ordering::Relaxed);
            }
        }
        // Both controllers run every decision so hand-offs are seamless
        // (a fixed-time fallback reads no queues, so feeding it the
        // possibly-corrupted view is safe by construction).
        let adaptive = self.inner.decide(view, now);
        let safe = self.fallback.decide(view, now);
        if self.degraded {
            self.stats.0.degraded_ticks.fetch_add(1, Ordering::Relaxed);
            self.episode_ticks += 1;
            safe
        } else {
            adaptive
        }
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.fallback.reset();
        self.prev.clear();
        self.same_streak = 0;
        self.plausible_streak = 0;
        self.episode_ticks = 0;
        self.degraded = false;
        // Counters are a per-run measurement surface; a reset starts a
        // fresh run with a fresh handle so old aggregates stay valid.
        self.stats = WatchdogStats::default();
    }

    fn name(&self) -> &'static str {
        "degrading"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push_usize(self.prev.len());
        for &reading in &self.prev {
            writer.push_u32(reading);
        }
        writer.push(self.same_streak);
        writer.push(self.plausible_streak);
        writer.push(self.episode_ticks);
        writer.push_bool(self.degraded);
        // Counters ride along so a restored run's aggregate watchdog
        // telemetry matches the uninterrupted run's.
        writer.push(self.stats.0.activations.load(Ordering::Relaxed));
        writer.push(self.stats.0.degraded_ticks.load(Ordering::Relaxed));
        writer.push(self.stats.0.recoveries.load(Ordering::Relaxed));
        writer.push(self.stats.0.recovery_ticks_total.load(Ordering::Relaxed));
        self.inner.save_state(writer);
        self.fallback.save_state(writer);
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        let len = reader.take_usize()?;
        self.prev.clear();
        for _ in 0..len {
            self.prev.push(reader.take_u32()?);
        }
        self.same_streak = reader.take()?;
        self.plausible_streak = reader.take()?;
        self.episode_ticks = reader.take()?;
        self.degraded = reader.take_bool()?;
        self.stats
            .0
            .activations
            .store(reader.take()?, Ordering::Relaxed);
        self.stats
            .0
            .degraded_ticks
            .store(reader.take()?, Ordering::Relaxed);
        self.stats
            .0
            .recoveries
            .store(reader.take()?, Ordering::Relaxed);
        self.stats
            .0
            .recovery_ticks_total
            .store(reader.take()?, Ordering::Relaxed);
        self.stats
            .0
            .degraded_now
            .store(self.degraded, Ordering::Relaxed);
        self.inner.load_state(reader)?;
        self.fallback.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FixedTime;
    use utilbp_core::standard::{self, Approach, Turn};
    use utilbp_core::{QueueObservation, Ticks, UtilBp};

    fn layout() -> utilbp_core::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    fn watchdog() -> WatchdogConfig {
        WatchdogConfig {
            freeze_ticks: 6,
            max_delta: 10,
            recovery_ticks: 4,
        }
    }

    fn wrapped() -> Degrading<UtilBp, FixedTime> {
        Degrading::new(
            UtilBp::paper(),
            FixedTime::new(Ticks::new(4), Ticks::new(1)),
            watchdog(),
        )
    }

    #[test]
    fn plausible_streams_never_degrade() {
        let layout = layout();
        let link = standard::link_id(Approach::East, Turn::Straight);
        let mut ctrl = wrapped();
        let mut clean = UtilBp::paper();
        let mut obs = QueueObservation::zeros(&layout);
        for k in 0..100u64 {
            // A live queue: small, rate-limited movements.
            obs.set_movement(link, (5 + (k % 3)) as u32);
            let view = IntersectionView::new(&layout, &obs).unwrap();
            let view2 = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(
                ctrl.decide(&view, Tick::new(k)),
                clean.decide(&view2, Tick::new(k)),
                "healthy watchdog must be transparent at k={k}"
            );
        }
        let stats = ctrl.stats();
        assert_eq!(stats.activations(), 0);
        assert_eq!(stats.degraded_ticks(), 0);
        assert!(!stats.is_degraded());
    }

    #[test]
    fn frozen_stream_activates_the_fallback() {
        let layout = layout();
        let link = standard::link_id(Approach::East, Turn::Straight);
        let mut ctrl = wrapped();
        let mut fallback = FixedTime::new(Ticks::new(4), Ticks::new(1));
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(link, 12);
        let cfg = watchdog();
        for k in 0..60u64 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            let view2 = IntersectionView::new(&layout, &obs).unwrap();
            let got = ctrl.decide(&view, Tick::new(k));
            let safe = fallback.decide(&view2, Tick::new(k));
            if k > cfg.freeze_ticks {
                assert_eq!(
                    got, safe,
                    "degraded controller must follow the fallback at k={k}"
                );
            }
        }
        let stats = ctrl.stats();
        assert_eq!(stats.activations(), 1);
        assert!(stats.is_degraded());
        assert!(stats.degraded_ticks() > 0);
        assert_eq!(stats.recoveries(), 0);
    }

    #[test]
    fn impossible_delta_degrades_immediately() {
        let layout = layout();
        let link = standard::link_id(Approach::North, Turn::Straight);
        let mut ctrl = wrapped();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(link, 2);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let _ = ctrl.decide(&view, Tick::ZERO);
        // A 2 → 40 jump exceeds max_delta = 10 by far.
        obs.set_movement(link, 40);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let _ = ctrl.decide(&view, Tick::new(1));
        assert_eq!(ctrl.stats().activations(), 1);
        assert!(ctrl.stats().is_degraded());
    }

    #[test]
    fn recovery_needs_a_full_plausible_streak() {
        let layout = layout();
        let link = standard::link_id(Approach::East, Turn::Straight);
        let cfg = watchdog();
        let mut ctrl = wrapped();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(link, 12);
        // Freeze long enough to degrade.
        let mut k = 0u64;
        while !ctrl.stats().is_degraded() {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            let _ = ctrl.decide(&view, Tick::new(k));
            k += 1;
            assert!(k < 100, "frozen stream must degrade");
        }
        // Thaw: readings move again, but recovery only lands after
        // `recovery_ticks` consecutive plausible decisions.
        let mut plausible = 0u64;
        while ctrl.stats().is_degraded() {
            obs.set_movement(link, (10 + (k % 4)) as u32);
            let view = IntersectionView::new(&layout, &obs).unwrap();
            let _ = ctrl.decide(&view, Tick::new(k));
            k += 1;
            plausible += 1;
            assert!(plausible <= cfg.recovery_ticks + 1, "recovery must land");
        }
        let stats = ctrl.stats();
        assert_eq!(stats.recoveries(), 1);
        assert!(stats.recovery_ticks_total() >= stats.recoveries());
        // Degraded-tick accounting stops growing after recovery.
        let frozen_at = stats.degraded_ticks();
        for _ in 0..20 {
            obs.set_movement(link, (10 + (k % 4)) as u32);
            let view = IntersectionView::new(&layout, &obs).unwrap();
            let _ = ctrl.decide(&view, Tick::new(k));
            k += 1;
        }
        assert_eq!(ctrl.stats().degraded_ticks(), frozen_at);
    }

    #[test]
    #[should_panic(expected = "invalid watchdog config")]
    fn rejects_zero_thresholds() {
        let _ = Degrading::new(
            UtilBp::paper(),
            FixedTime::new(Ticks::new(4), Ticks::new(1)),
            WatchdogConfig {
                freeze_ticks: 0,
                ..WatchdogConfig::default()
            },
        );
    }
}
