//! Fixed-length slot machinery shared by all non-adaptive controllers.
//!
//! The conventional back-pressure controllers ([4], [3]) activate the
//! selected phase for a *pre-determined, fixed-length time slot*; phase
//! changes between slots pass through an amber (transition) period. A
//! [`SlotMachine`] implements exactly that timing skeleton; each baseline
//! plugs in its own phase-selection rule at slot boundaries.

use serde::{Deserialize, Serialize};
use utilbp_core::{PhaseDecision, PhaseId, Tick, Ticks};

/// Fixed-slot phase timing: evaluate a selection rule at every slot
/// boundary, insert an amber of fixed length whenever the selection differs
/// from the running phase.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SlotMachine {
    period: Ticks,
    transition: Ticks,
    /// When set, *every* slot ends with an amber, even if the selection
    /// keeps the same phase — the conventional fixed-length back-pressure
    /// timing described in the paper ("each slot ends with a transition
    /// phase"). This is what produces Fig. 2's period trade-off: short
    /// periods react faster but pay proportionally more amber.
    always_transition: bool,
    current: Option<PhaseId>,
    slot_end: Tick,
    /// Pending phase to activate when the amber expires.
    pending: Option<(Tick, PhaseId)>,
}

impl SlotMachine {
    /// Creates a machine with the given green period and amber duration.
    /// Amber is inserted only when the selected phase *changes*.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero (a zero-length slot would re-select every
    /// tick, which is the adaptive controllers' job, not this one's).
    pub fn new(period: Ticks, transition: Ticks) -> Self {
        assert!(!period.is_zero(), "slot period must be positive");
        SlotMachine {
            period,
            transition,
            always_transition: false,
            current: None,
            slot_end: Tick::ZERO,
            pending: None,
        }
    }

    /// Creates a machine where **every** slot ends with an amber,
    /// matching the conventional fixed-length back-pressure controllers
    /// as modeled in the paper.
    ///
    /// # Panics
    ///
    /// Panics if `period` is zero.
    pub fn with_always_transition(period: Ticks, transition: Ticks) -> Self {
        let mut machine = SlotMachine::new(period, transition);
        machine.always_transition = true;
        machine
    }

    /// The green period.
    pub fn period(&self) -> Ticks {
        self.period
    }

    /// The amber duration.
    pub fn transition(&self) -> Ticks {
        self.transition
    }

    /// The running phase, if any.
    pub fn current(&self) -> Option<PhaseId> {
        self.current
    }

    /// Advances to `now` and returns the decision, invoking `select` only
    /// at slot boundaries. `select` receives the running phase (or `None`
    /// before the first slot) and returns the phase for the next slot.
    pub fn decide(
        &mut self,
        now: Tick,
        select: impl FnOnce(Option<PhaseId>) -> PhaseId,
    ) -> PhaseDecision {
        // Amber in progress?
        if let Some((until, next)) = self.pending {
            if now < until {
                return PhaseDecision::Transition;
            }
            self.pending = None;
            self.current = Some(next);
            self.slot_end = now + self.period;
            return PhaseDecision::Control(next);
        }

        match self.current {
            Some(current) if now < self.slot_end => PhaseDecision::Control(current),
            current_opt => {
                let next = select(current_opt);
                let needs_amber = current_opt.is_some()
                    && !self.transition.is_zero()
                    && (self.always_transition || current_opt != Some(next));
                if needs_amber {
                    self.pending = Some((now + self.transition, next));
                    PhaseDecision::Transition
                } else {
                    self.current = Some(next);
                    self.slot_end = now + self.period;
                    PhaseDecision::Control(next)
                }
            }
        }
    }

    /// Returns the machine to its initial state.
    pub fn reset(&mut self) {
        self.current = None;
        self.slot_end = Tick::ZERO;
        self.pending = None;
    }

    /// Appends the machine's timing state (running phase, slot end,
    /// pending amber) to a checkpoint stream. Configuration (period,
    /// amber length, always-transition) is not written — a restored
    /// machine is rebuilt from the same constructor arguments.
    pub fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push(
            self.current
                .map(PhaseDecision::Control)
                .unwrap_or(PhaseDecision::Transition)
                .state_word(),
        );
        writer.push(self.slot_end.index());
        match self.pending {
            Some((until, next)) => {
                writer.push_bool(true);
                writer.push(until.index());
                writer.push(PhaseDecision::Control(next).state_word());
            }
            None => writer.push_bool(false),
        }
    }

    /// Restores the timing state written by
    /// [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`StateError`](utilbp_core::state::StateError) when the stream
    /// is truncated or malformed.
    pub fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        self.current = PhaseDecision::from_state_word(reader.take()?)?.phase();
        self.slot_end = Tick::new(reader.take()?);
        self.pending = if reader.take_bool()? {
            let until = Tick::new(reader.take()?);
            let next = PhaseDecision::from_state_word(reader.take()?)?
                .phase()
                .ok_or(utilbp_core::state::StateError::Invalid {
                    what: "pending phase",
                    word: 0,
                })?;
            Some((until, next))
        } else {
            None
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn machine() -> SlotMachine {
        SlotMachine::new(Ticks::new(5), Ticks::new(2))
    }

    #[test]
    fn first_slot_starts_without_amber() {
        let mut m = machine();
        let d = m.decide(Tick::ZERO, |prev| {
            assert_eq!(prev, None);
            PhaseId::new(1)
        });
        assert_eq!(d, PhaseDecision::Control(PhaseId::new(1)));
        assert_eq!(m.current(), Some(PhaseId::new(1)));
    }

    #[test]
    fn holds_phase_for_the_full_slot() {
        let mut m = machine();
        let _ = m.decide(Tick::ZERO, |_| PhaseId::new(0));
        for k in 1..5 {
            let d = m.decide(Tick::new(k), |_| panic!("no selection mid-slot"));
            assert_eq!(d, PhaseDecision::Control(PhaseId::new(0)));
        }
    }

    #[test]
    fn same_selection_extends_without_amber() {
        let mut m = machine();
        let _ = m.decide(Tick::ZERO, |_| PhaseId::new(0));
        let d = m.decide(Tick::new(5), |prev| prev.unwrap());
        assert_eq!(d, PhaseDecision::Control(PhaseId::new(0)));
        // And the slot is renewed: no re-selection before k=10.
        let d = m.decide(Tick::new(9), |_| panic!("mid-slot"));
        assert_eq!(d, PhaseDecision::Control(PhaseId::new(0)));
    }

    #[test]
    fn different_selection_passes_through_amber() {
        let mut m = machine();
        let _ = m.decide(Tick::ZERO, |_| PhaseId::new(0));
        // Boundary at k=5 selects a different phase: amber for 2 ticks.
        assert_eq!(
            m.decide(Tick::new(5), |_| PhaseId::new(2)),
            PhaseDecision::Transition
        );
        assert_eq!(
            m.decide(Tick::new(6), |_| panic!("amber")),
            PhaseDecision::Transition
        );
        // Amber expires at k=7: new phase activates, slot runs to k=12.
        assert_eq!(
            m.decide(Tick::new(7), |_| panic!("activation")),
            PhaseDecision::Control(PhaseId::new(2))
        );
        assert_eq!(
            m.decide(Tick::new(11), |_| panic!("mid-slot")),
            PhaseDecision::Control(PhaseId::new(2))
        );
        // Next boundary at k=12.
        assert_eq!(
            m.decide(Tick::new(12), |_| PhaseId::new(2)),
            PhaseDecision::Control(PhaseId::new(2))
        );
    }

    #[test]
    fn zero_transition_switches_instantly() {
        let mut m = SlotMachine::new(Ticks::new(3), Ticks::ZERO);
        let _ = m.decide(Tick::ZERO, |_| PhaseId::new(0));
        assert_eq!(
            m.decide(Tick::new(3), |_| PhaseId::new(1)),
            PhaseDecision::Control(PhaseId::new(1))
        );
    }

    #[test]
    fn reset_clears_state() {
        let mut m = machine();
        let _ = m.decide(Tick::ZERO, |_| PhaseId::new(3));
        m.reset();
        assert_eq!(m.current(), None);
        let d = m.decide(Tick::new(50), |prev| {
            assert_eq!(prev, None);
            PhaseId::new(0)
        });
        assert_eq!(d, PhaseDecision::Control(PhaseId::new(0)));
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn rejects_zero_period() {
        let _ = SlotMachine::new(Ticks::ZERO, Ticks::new(2));
    }

    #[test]
    fn always_transition_inserts_amber_even_on_reselection() {
        let mut m = SlotMachine::with_always_transition(Ticks::new(5), Ticks::new(2));
        assert_eq!(
            m.decide(Tick::ZERO, |_| PhaseId::new(0)),
            PhaseDecision::Control(PhaseId::new(0))
        );
        // Boundary at k=5 re-selects the *same* phase: amber anyway.
        assert_eq!(
            m.decide(Tick::new(5), |_| PhaseId::new(0)),
            PhaseDecision::Transition
        );
        assert_eq!(
            m.decide(Tick::new(6), |_| panic!("amber")),
            PhaseDecision::Transition
        );
        assert_eq!(
            m.decide(Tick::new(7), |_| panic!("activation")),
            PhaseDecision::Control(PhaseId::new(0))
        );
    }

    #[test]
    fn always_transition_duty_cycle_matches_period_fraction() {
        // Over a long horizon, green share must be period/(period+amber).
        let mut m = SlotMachine::with_always_transition(Ticks::new(6), Ticks::new(2));
        let mut green = 0u32;
        let horizon = 800u64;
        for k in 0..horizon {
            if m.decide(Tick::new(k), |_| PhaseId::new(1)) != PhaseDecision::Transition {
                green += 1;
            }
        }
        let share = green as f64 / horizon as f64;
        assert!((share - 6.0 / 8.0).abs() < 0.02, "green share {share}");
    }

    #[test]
    fn accessors() {
        let m = machine();
        assert_eq!(m.period(), Ticks::new(5));
        assert_eq!(m.transition(), Ticks::new(2));
    }
}
