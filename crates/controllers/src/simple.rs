//! Non-back-pressure reference controllers: fixed-time cycling and greedy
//! longest-queue-first.

use serde::{Deserialize, Serialize};
use utilbp_core::{IntersectionView, PhaseDecision, PhaseId, SignalController, Tick, Ticks};

use crate::slot::SlotMachine;

/// A pre-timed signal: cycles through all phases in table order, giving
/// each the same green period, with an amber between consecutive phases.
/// The classic open-loop baseline — it reads no queues at all.
///
/// # Examples
///
/// ```
/// use utilbp_baselines::FixedTime;
/// use utilbp_core::{
///     standard, IntersectionView, QueueObservation, SignalController, Tick,
///     Ticks,
/// };
///
/// let layout = standard::four_way(120, 1.0);
/// let obs = QueueObservation::zeros(&layout);
/// let view = IntersectionView::new(&layout, &obs).unwrap();
/// let mut ctrl = FixedTime::new(Ticks::new(15), Ticks::new(4));
/// assert_eq!(ctrl.decide(&view, Tick::ZERO).phase(), Some(standard::phase_id(1)));
/// ```
#[derive(Debug, Clone)]
pub struct FixedTime {
    slots: SlotMachine,
}

impl FixedTime {
    /// Creates a fixed-time controller with the given green period and
    /// amber duration.
    pub fn new(period: Ticks, transition: Ticks) -> Self {
        FixedTime {
            slots: SlotMachine::new(period, transition),
        }
    }

    /// The green period.
    pub fn period(&self) -> Ticks {
        self.slots.period()
    }
}

impl SignalController for FixedTime {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        let num_phases = view.layout().num_phases();
        self.slots.decide(now, |current| match current {
            Some(c) => PhaseId::new(((c.index() + 1) % num_phases) as u8),
            None => PhaseId::new(0),
        })
    }

    fn reset(&mut self) {
        self.slots.reset();
    }

    fn name(&self) -> &'static str {
        "fixed-time"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        self.slots.save_state(writer);
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        self.slots.load_state(reader)
    }
}

/// Serializable parameters of [`LongestQueueFirst`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct LongestQueueFirstConfig {
    /// The fixed green period.
    pub period: Ticks,
    /// Amber duration between differing slots.
    pub transition: Ticks,
}

/// Greedy controller: at each slot boundary, activate the phase whose
/// links could serve the most vehicles right now
/// (`Σ min(µ, q_movement, residual downstream capacity)`).
///
/// Purely myopic — it maximizes instantaneous junction utilization with no
/// regard for downstream balance, which makes it a useful foil for the
/// back-pressure family in ablation studies.
#[derive(Debug, Clone)]
pub struct LongestQueueFirst {
    config: LongestQueueFirstConfig,
    slots: SlotMachine,
}

impl LongestQueueFirst {
    /// Creates a controller with the paper's 4-tick amber and the given
    /// period.
    pub fn new(period: Ticks) -> Self {
        let config = LongestQueueFirstConfig {
            period,
            transition: Ticks::new(4),
        };
        LongestQueueFirst {
            config,
            slots: SlotMachine::new(config.period, config.transition),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &LongestQueueFirstConfig {
        &self.config
    }
}

impl SignalController for LongestQueueFirst {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        self.slots.decide(now, |current| {
            let layout = view.layout();
            let mut best: Option<(PhaseId, u32)> = None;
            for phase in layout.phase_ids() {
                let servable: u32 = layout
                    .phase(phase)
                    .links()
                    .iter()
                    .map(|&l| view.link_service_bound(l))
                    .sum();
                let replace = match best {
                    None => true,
                    Some((p, s)) => {
                        servable > s || (servable == s && current == Some(phase) && p != phase)
                    }
                };
                if replace {
                    best = Some((phase, servable));
                }
            }
            best.expect("layouts always have at least one phase").0
        })
    }

    fn reset(&mut self) {
        self.slots.reset();
    }

    fn name(&self) -> &'static str {
        "longest-queue-first"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        self.slots.save_state(writer);
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        self.slots.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::standard::{self, Approach, Turn};
    use utilbp_core::QueueObservation;

    fn layout() -> utilbp_core::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    #[test]
    fn fixed_time_cycles_all_phases_with_amber() {
        let layout = layout();
        let obs = QueueObservation::zeros(&layout);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let mut ctrl = FixedTime::new(Ticks::new(3), Ticks::new(2));
        let mut seen = Vec::new();
        for k in 0..24 {
            let d = ctrl.decide(&view, Tick::new(k));
            if let Some(p) = d.phase() {
                if seen.last() != Some(&p) {
                    seen.push(p);
                }
            }
        }
        // 3 green + 2 amber = 5 ticks per phase: 24 ticks visit c1..c4, c1.
        assert_eq!(
            seen,
            vec![
                standard::phase_id(1),
                standard::phase_id(2),
                standard::phase_id(3),
                standard::phase_id(4),
                standard::phase_id(1),
            ]
        );
        assert_eq!(ctrl.period(), Ticks::new(3));
        assert_eq!(ctrl.name(), "fixed-time");
    }

    #[test]
    fn fixed_time_ignores_queues() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 99);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let mut ctrl = FixedTime::new(Ticks::new(5), Ticks::new(2));
        // Still starts at c1 regardless of the east queue.
        assert_eq!(
            ctrl.decide(&view, Tick::ZERO).phase(),
            Some(standard::phase_id(1))
        );
    }

    #[test]
    fn greedy_tracks_servable_vehicles_not_raw_queues() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        // Huge north queue but its exit is full → servable 0 through c1's
        // straight link; c4 can serve two right-turners (one per link).
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 80);
        obs.set_outgoing(layout.link(ns).to(), 120);
        obs.set_movement(standard::link_id(Approach::East, Turn::Right), 4);
        obs.set_movement(standard::link_id(Approach::West, Turn::Right), 4);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let mut ctrl = LongestQueueFirst::new(Ticks::new(10));
        assert_eq!(
            ctrl.decide(&view, Tick::ZERO).phase(),
            Some(standard::phase_id(4))
        );
        assert_eq!(ctrl.name(), "longest-queue-first");
        assert_eq!(ctrl.config().period, Ticks::new(10));
    }

    #[test]
    fn greedy_resets() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::North, Turn::Straight), 5);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let mut ctrl = LongestQueueFirst::new(Ticks::new(10));
        let first = ctrl.decide(&view, Tick::ZERO);
        ctrl.reset();
        assert_eq!(ctrl.decide(&view, Tick::new(77)), first);
    }
}
