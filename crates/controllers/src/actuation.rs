//! Actuator/comms fault injection: a controller decorator that corrupts
//! the *command path* between a controller and the signal heads.
//!
//! Where [`FaultySensors`](crate::FaultySensors) corrupts what the
//! controller *sees*, this decorator corrupts what the plant *executes*.
//! The wrapped controller always runs and always computes its desired
//! phase — the faults live strictly downstream of it, in the actuator
//! and the comms channel that carries commands to it:
//!
//! - **stuck phase**: the actuator jams and holds its current phase for
//!   a configured number of ticks, ignoring every command issued
//!   meanwhile (a relay welded shut);
//! - **dropped command**: a command is lost in transit and the actuator
//!   holds its last applied phase for that mini-slot (lossy comms);
//! - **delayed command**: a command arrives a configured number of
//!   ticks late; the actuator holds its last applied phase until the
//!   late command lands (congested or retrying comms). Commands queued
//!   behind a delay are delivered in order, latest wins.
//!
//! Faults are sampled per decision from a seeded RNG, each mode's draw
//! gated on its probability being positive, so a config with a mode
//! disabled produces the exact RNG stream of a config without it —
//! scenario goldens never shift when a new mode ships. Like the sensor
//! decorator, injection is gated by a shared [`FaultSwitch`], so
//! scenario fault *windows* can turn the model on and off mid-run;
//! while inactive the wrapper is fully transparent (commands pass
//! through verbatim, no draws, and all transient actuator state —
//! jams, in-flight commands — is discarded, modeling a serviced
//! actuator).

use std::collections::VecDeque;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use utilbp_core::{IntersectionView, PhaseDecision, SignalController, Tick};

use crate::FaultSwitch;

/// Actuator/comms fault model parameters. Probabilities are per
/// decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActuationFaultConfig {
    /// Probability the actuator jams after executing this mini-slot,
    /// holding its phase and ignoring commands for [`stuck_ticks`]
    /// ticks.
    ///
    /// [`stuck_ticks`]: ActuationFaultConfig::stuck_ticks
    pub stuck: f64,
    /// How long a jam lasts, in ticks. Must be ≥ 1 when `stuck > 0`.
    pub stuck_ticks: u64,
    /// Probability a command is dropped in transit (the actuator holds
    /// its last applied phase for this mini-slot).
    pub drop: f64,
    /// Probability a command is delayed by [`delay_ticks`] ticks
    /// instead of landing now.
    ///
    /// [`delay_ticks`]: ActuationFaultConfig::delay_ticks
    pub delay: f64,
    /// How late a delayed command lands, in ticks. Must be ≥ 1 when
    /// `delay > 0`.
    pub delay_ticks: u64,
}

impl ActuationFaultConfig {
    /// No faults (the wrapped controller's commands execute verbatim).
    pub const NONE: ActuationFaultConfig = ActuationFaultConfig {
        stuck: 0.0,
        stuck_ticks: 0,
        drop: 0.0,
        delay: 0.0,
        delay_ticks: 0,
    };

    /// Validates probabilities and duration fields.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("stuck", self.stuck),
            ("drop", self.drop),
            ("delay", self.delay),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        if self.stuck > 0.0 && self.stuck_ticks == 0 {
            return Err("stuck > 0 requires stuck-ticks ≥ 1".to_string());
        }
        if self.delay > 0.0 && self.delay_ticks == 0 {
            return Err("delay > 0 requires delay-ticks ≥ 1".to_string());
        }
        Ok(())
    }
}

/// Wraps a controller with a faulty actuator/comms path: the inner
/// controller always computes its desired phase, but what the plant
/// executes is what survives the command channel.
///
/// # Examples
///
/// ```
/// use utilbp_baselines::{ActuationFaultConfig, FaultyActuation};
/// use utilbp_core::{standard, IntersectionView, QueueObservation, SignalController, Tick, UtilBp};
///
/// let mut ctrl = FaultyActuation::new(
///     UtilBp::paper(),
///     ActuationFaultConfig { drop: 0.2, ..ActuationFaultConfig::NONE },
///     42,
/// );
/// let layout = standard::four_way(120, 1.0);
/// let obs = QueueObservation::zeros(&layout);
/// let view = IntersectionView::new(&layout, &obs).unwrap();
/// let _ = ctrl.decide(&view, Tick::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct FaultyActuation<C> {
    inner: C,
    config: ActuationFaultConfig,
    rng: SmallRng,
    /// The phase the actuator is currently executing (what the plant
    /// sees), which lags the controller's desire under faults. `None`
    /// until the first command lands — an actuator powers up into its
    /// first command, so the first delivery always succeeds.
    applied: Option<PhaseDecision>,
    /// First tick index at which a jammed actuator accepts commands
    /// again (0 = not jammed).
    stuck_until: u64,
    /// Delayed commands in flight: `(deliver_at, decision)`, in send
    /// order (delays are constant, so this stays sorted).
    pending: VecDeque<(u64, PhaseDecision)>,
    /// Scenario-driven gate: faults apply only while the switch is
    /// active. [`FaultyActuation::new`] installs an always-on switch.
    switch: FaultSwitch,
}

impl<C: SignalController> FaultyActuation<C> {
    /// Wraps `inner` with the given fault model and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ActuationFaultConfig::validate`].
    pub fn new(inner: C, config: ActuationFaultConfig, seed: u64) -> Self {
        FaultyActuation::gated(inner, config, seed, FaultSwitch::new(true))
    }

    /// Wraps `inner` with a fault model gated by `switch`: faults apply
    /// only while the switch is active, which is how scenario
    /// actuation-fault windows turn the model on and off mid-run
    /// without rebuilding controllers.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`ActuationFaultConfig::validate`].
    pub fn gated(inner: C, config: ActuationFaultConfig, seed: u64, switch: FaultSwitch) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid actuation fault config: {msg}");
        }
        FaultyActuation {
            inner,
            config,
            rng: SmallRng::seed_from_u64(seed),
            applied: None,
            stuck_until: 0,
            pending: VecDeque::new(),
            switch,
        }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The fault model.
    pub fn config(&self) -> &ActuationFaultConfig {
        &self.config
    }
}

impl<C: SignalController> SignalController for FaultyActuation<C> {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        // The controller always runs: actuator faults do not stop the
        // control computation, only its execution.
        let desired = self.inner.decide(view, now);
        if !self.switch.is_active() {
            // Window closed: the actuator was serviced — jams release,
            // in-flight commands are flushed, and commands execute
            // verbatim. No random draws, so the fault RNG stream
            // depends only on the ticks the window covers.
            self.stuck_until = 0;
            self.pending.clear();
            self.applied = Some(desired);
            return desired;
        }
        let cfg = self.config;
        let t = now.index();
        if t < self.stuck_until {
            // Jammed: the actuator holds its phase and ignores the
            // channel entirely (commands stay queued in the comms
            // buffer and land once the jam releases).
            return *self.applied.get_or_insert(desired);
        }
        // Deliver every in-flight command now due; latest wins.
        while let Some(&(at, decision)) = self.pending.front() {
            if at > t {
                break;
            }
            self.pending.pop_front();
            self.applied = Some(decision);
        }
        // This mini-slot's command runs the comms gauntlet.
        if cfg.delay > 0.0 && self.rng.gen::<f64>() < cfg.delay {
            self.pending.push_back((t + cfg.delay_ticks, desired));
        } else if cfg.drop > 0.0 && self.rng.gen::<f64>() < cfg.drop {
            // Lost in transit: hold the last applied phase.
        } else {
            self.applied = Some(desired);
        }
        // Finally the actuator may jam on whatever it now executes.
        if cfg.stuck > 0.0 && self.rng.gen::<f64>() < cfg.stuck {
            self.stuck_until = t + cfg.stuck_ticks;
        }
        *self.applied.get_or_insert(desired)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.applied = None;
        self.stuck_until = 0;
        self.pending.clear();
    }

    fn name(&self) -> &'static str {
        "faulty-actuation"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        // The switch is engine-owned state (a scenario fault window) and
        // is restored by the engine, not here.
        for word in self.rng.state() {
            writer.push(word);
        }
        match self.applied {
            None => writer.push_bool(false),
            Some(decision) => {
                writer.push_bool(true);
                writer.push(decision.state_word());
            }
        }
        writer.push(self.stuck_until);
        writer.push_usize(self.pending.len());
        for &(at, decision) in &self.pending {
            writer.push(at);
            writer.push(decision.state_word());
        }
        self.inner.save_state(writer);
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = reader.take()?;
        }
        self.rng = SmallRng::from_state(rng_state);
        self.applied = if reader.take_bool()? {
            Some(PhaseDecision::from_state_word(reader.take()?)?)
        } else {
            None
        };
        self.stuck_until = reader.take()?;
        let len = reader.take_usize()?;
        self.pending.clear();
        for _ in 0..len {
            let at = reader.take()?;
            let decision = PhaseDecision::from_state_word(reader.take()?)?;
            self.pending.push_back((at, decision));
        }
        self.inner.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::FixedTime;
    use utilbp_core::{standard, QueueObservation, Ticks, UtilBp};

    fn layout() -> utilbp_core::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    fn fixed() -> FixedTime {
        FixedTime::new(Ticks::new(4), Ticks::new(1))
    }

    fn run<C: SignalController>(ctrl: &mut C, n: u64) -> Vec<PhaseDecision> {
        let layout = layout();
        let obs = QueueObservation::zeros(&layout);
        (0..n)
            .map(|k| {
                let view = IntersectionView::new(&layout, &obs).unwrap();
                ctrl.decide(&view, Tick::new(k))
            })
            .collect()
    }

    #[test]
    fn no_faults_is_transparent() {
        let mut clean = fixed();
        let mut wrapped = FaultyActuation::new(fixed(), ActuationFaultConfig::NONE, 1);
        assert_eq!(run(&mut clean, 60), run(&mut wrapped, 60));
    }

    #[test]
    fn full_drop_pins_the_first_command() {
        // drop = 1.0: the actuator boots into the first command, then
        // every subsequent command is lost — the phase never changes
        // even though the inner fixed-time plan cycles.
        let mut wrapped = FaultyActuation::new(
            fixed(),
            ActuationFaultConfig {
                drop: 1.0,
                ..ActuationFaultConfig::NONE
            },
            1,
        );
        let out = run(&mut wrapped, 40);
        assert!(
            out.iter().all(|&d| d == out[0]),
            "dropped commands must hold the phase"
        );
        let clean = run(&mut fixed(), 40);
        assert_ne!(out, clean, "the inner plan does cycle");
    }

    #[test]
    fn full_delay_shifts_the_command_stream() {
        // delay = 1.0 with delay_ticks = 3: every command lands three
        // ticks late, so the executed stream is the clean stream
        // shifted right by three.
        let delay_ticks = 3usize;
        let mut wrapped = FaultyActuation::new(
            fixed(),
            ActuationFaultConfig {
                delay: 1.0,
                delay_ticks: delay_ticks as u64,
                ..ActuationFaultConfig::NONE
            },
            1,
        );
        let out = run(&mut wrapped, 40);
        let clean = run(&mut fixed(), 40);
        for k in delay_ticks..40 {
            assert_eq!(out[k], clean[k - delay_ticks], "k={k}");
        }
        // Before the first delayed command lands, the actuator executes
        // its boot command.
        for (k, &executed) in out.iter().enumerate().take(delay_ticks) {
            assert_eq!(executed, clean[0], "k={k}");
        }
    }

    #[test]
    fn stuck_actuator_ignores_commands_for_the_jam_window() {
        // stuck = 1.0 with a jam longer than the run: the actuator
        // executes the first command, jams, and never moves again.
        let mut wrapped = FaultyActuation::new(
            fixed(),
            ActuationFaultConfig {
                stuck: 1.0,
                stuck_ticks: 1000,
                ..ActuationFaultConfig::NONE
            },
            1,
        );
        let out = run(&mut wrapped, 40);
        assert!(
            out.iter().all(|&d| d == out[0]),
            "a jammed actuator must hold its phase"
        );
    }

    #[test]
    fn faults_are_seed_deterministic() {
        let cfg = ActuationFaultConfig {
            stuck: 0.1,
            stuck_ticks: 4,
            drop: 0.2,
            delay: 0.2,
            delay_ticks: 2,
        };
        let once = |seed: u64| {
            let mut c = FaultyActuation::new(UtilBp::paper(), cfg, seed);
            run(&mut c, 80)
        };
        assert_eq!(once(9), once(9));
    }

    #[test]
    fn gated_faults_are_transparent_while_inactive() {
        let switch = FaultSwitch::new(false);
        let mut clean = fixed();
        let mut gated = FaultyActuation::gated(
            fixed(),
            ActuationFaultConfig {
                drop: 1.0,
                ..ActuationFaultConfig::NONE
            },
            1,
            switch.clone(),
        );
        let layout = layout();
        let obs = QueueObservation::zeros(&layout);
        let decide = |c: &mut dyn SignalController, k: u64| {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            c.decide(&view, Tick::new(k))
        };
        for k in 0..20 {
            assert_eq!(decide(&mut clean, k), decide(&mut gated, k), "k={k}");
        }
        // Activate: commands stop landing and the phase pins.
        switch.set_active(true);
        let pinned = decide(&mut gated, 20);
        let _ = decide(&mut clean, 20);
        for k in 21..40 {
            let c = decide(&mut clean, k);
            let g = decide(&mut gated, k);
            assert_eq!(g, pinned, "k={k}");
            let _ = c;
        }
        // Deactivate: the serviced actuator tracks the plan again.
        switch.set_active(false);
        for k in 40..60 {
            assert_eq!(decide(&mut clean, k), decide(&mut gated, k), "k={k}");
        }
    }

    #[test]
    fn reset_clears_actuator_state() {
        let mut wrapped = FaultyActuation::new(
            fixed(),
            ActuationFaultConfig {
                stuck: 1.0,
                stuck_ticks: 1000,
                ..ActuationFaultConfig::NONE
            },
            1,
        );
        let _ = run(&mut wrapped, 10);
        wrapped.reset();
        assert_eq!(wrapped.name(), "faulty-actuation");
        assert_eq!(wrapped.config().stuck_ticks, 1000);
        // After reset the jam is gone: the wrapper tracks the plan
        // until the (deterministic) jam re-latches on the first active
        // decide — i.e. the first post-reset decision is executed.
        let out = run(&mut wrapped, 5);
        let clean = run(&mut fixed(), 5);
        assert_eq!(out[0], clean[0]);
    }

    #[test]
    #[should_panic(expected = "invalid actuation fault config")]
    fn rejects_bad_durations() {
        let _ = FaultyActuation::new(
            fixed(),
            ActuationFaultConfig {
                stuck: 0.5,
                stuck_ticks: 0,
                ..ActuationFaultConfig::NONE
            },
            0,
        );
    }
}
