//! # utilbp-baselines
//!
//! Baseline and ablation controllers for comparison against the paper's
//! [`UtilBp`](utilbp_core::UtilBp):
//!
//! - [`CapBp`] — the fixed-length **capacity-aware** back-pressure
//!   controller of Gregoire et al. (TCNS 2015), the paper's main baseline
//!   (Fig. 2, Table III);
//! - [`OriginalBp`] — Varaiya's original back-pressure policy: fixed slots,
//!   infinite-capacity assumption, not work-conserving;
//! - [`FixedTime`] — open-loop pre-timed cycling;
//! - [`Actuated`] — industry-standard gap-out/max-out vehicle actuation;
//! - [`LongestQueueFirst`] — myopic greedy utilization;
//! - [`FixedLengthUtilBp`] — UTIL-BP's Eq. 8 selection on fixed slots
//!   (ablation separating the gain function from adaptivity);
//! - [`SlotMachine`] — the fixed-slot timing skeleton they share.
//!
//! All of them implement [`SignalController`](utilbp_core::SignalController)
//! and can drive either simulation substrate.
//!
//! ## Fault model
//!
//! The paper's CPS decomposition — sensors, controller, actuator — is
//! mirrored by three composable decorators, each deterministic under a
//! seeded RNG and gated by a shared [`FaultSwitch`] so scenario fault
//! *windows* can flip them mid-run:
//!
//! - [`FaultySensors`] corrupts the *observation path*: dropout, noise,
//!   stale repeats (`freeze`), and the persistent stuck-at /
//!   frozen-counter latch modes ([`SensorFaultConfig`]);
//! - [`FaultyActuation`] corrupts the *command path*: stuck-phase
//!   actuators, dropped commands (hold last phase), and delayed
//!   delivery ([`ActuationFaultConfig`]);
//! - [`Degrading`] closes the loop: a per-intersection watchdog that
//!   detects implausible sensor streams (frozen counters, impossible
//!   deltas) and swaps in a fixed-time fallback until readings become
//!   plausible again, with hysteresis ([`WatchdogConfig`],
//!   [`WatchdogStats`]).
//!
//! Composition order matters: wrap the watchdog *inside* the sensor
//! decorator (so it monitors what the controller actually sees) and
//! the actuation decorator *outside* everything (faulty execution of
//! whatever the control stack decided):
//! `FaultyActuation(FaultySensors(Degrading(inner, fallback)))`.
//! Every fault mode's random draw is gated on its probability being
//! positive, so configurations that do not use a mode reproduce the
//! exact decision streams they produced before that mode existed.
//!
//! ```
//! use utilbp_baselines::CapBp;
//! use utilbp_core::{standard, QueueObservation, IntersectionView, SignalController, Tick, Ticks};
//!
//! let layout = standard::four_way(120, 1.0);
//! let obs = QueueObservation::zeros(&layout);
//! let view = IntersectionView::new(&layout, &obs).unwrap();
//! let mut cap_bp = CapBp::new(Ticks::new(16));
//! let _decision = cap_bp.decide(&view, Tick::ZERO);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod actuated;
mod actuation;
mod capbp;
mod faults;
mod fixed_util;
mod original;
mod simple;
mod slot;
mod watchdog;

pub use actuated::{Actuated, ActuatedConfig};
pub use actuation::{ActuationFaultConfig, FaultyActuation};
pub use capbp::{CapBp, CapBpConfig, CapBpPressure};
pub use faults::{FaultSwitch, FaultySensors, SensorFaultConfig};
pub use fixed_util::{FixedLengthUtilBp, FixedLengthUtilBpConfig};
pub use original::{OriginalBp, OriginalBpConfig};
pub use simple::{FixedTime, LongestQueueFirst, LongestQueueFirstConfig};
pub use slot::SlotMachine;
pub use watchdog::{Degrading, WatchdogConfig, WatchdogStats};
