//! CAP-BP: the fixed-length, capacity-aware back-pressure controller of
//! Gregoire et al. (IEEE TCNS 2015) — the paper's primary baseline.
//!
//! Behavioral ingredients, following [4] and the DATE paper's framing:
//!
//! - **Fixed-length control phases**: the phase is selected at the start of
//!   each slot from the queue state at that instant and held for the whole
//!   slot; *every* slot ends with an amber period (the conventional
//!   fixed-length timing the DATE paper describes), which is what creates
//!   Fig. 2's period trade-off.
//! - **Per-movement, capacity-normalized pressure** (the capacity-aware
//!   core of [4]): a link's weight compares the *occupancy ratios* of its
//!   upstream movement queue and downstream road,
//!   `w = max(0, (q_mov/S − q_out/W_out))·µ`. A full downstream road
//!   (`q_out = W_out`) can never attract green time.
//! - **Relaxed work conservation** ([4]'s modification): the junction
//!   "works" if at least one vehicle is served during the slot — when the
//!   weight-maximizing phase cannot serve anything but another phase can,
//!   a serving phase is chosen instead.
//!
//! What CAP-BP still lacks — and what UTIL-BP adds — is any reaction
//! *within* a slot, the empty-approach/full-exit gain discrimination
//! (`α`/`β`), and flow on negative pressure differences.

use serde::{Deserialize, Serialize};
use utilbp_core::{IntersectionView, PhaseDecision, PhaseId, SignalController, Tick, Ticks};

use crate::slot::SlotMachine;

/// Which upstream pressure CAP-BP's link weight uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CapBpPressure {
    /// The per-movement queue `b_i^{i'}`, as in Gregoire et al.'s own
    /// formulation (their model queues vehicles per movement). This is
    /// the default: it gives the functional baseline whose best-period
    /// results the paper's Table III reports.
    #[default]
    PerMovement,
    /// The whole-road queue `b_i` of Eq. 1/5 — how the DATE paper
    /// characterizes the *original* back-pressure policy (UTIL-BP's
    /// change (i) is replacing exactly this with the per-movement queue).
    /// A long queue on one movement inflates the gains of its *sibling*
    /// links, misdirecting green time; kept as an ablation. On this
    /// workspace's networks it starves right-turn phases badly.
    PerRoad,
}

/// Configuration of [`CapBp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct CapBpConfig {
    /// The fixed green period (the paper sweeps 10–80 s; its per-pattern
    /// optima are 16–22 s).
    pub period: Ticks,
    /// Amber duration appended to every slot (4 s in the paper).
    pub transition: Ticks,
    /// Storage capacity assumed for one movement queue (used to normalize
    /// upstream occupancy). The paper's network has 3 dedicated lanes per
    /// 300 m road at 7.5 m jam spacing → 40 vehicles per movement.
    pub upstream_storage: u32,
    /// Upstream pressure definition.
    pub pressure: CapBpPressure,
}

impl CapBpConfig {
    /// A config with the paper's 4-tick amber, 40-vehicle movement
    /// storage, per-movement pressure, and the given period.
    pub fn with_period(period: Ticks) -> Self {
        CapBpConfig {
            period,
            transition: Ticks::new(4),
            upstream_storage: 40,
            pressure: CapBpPressure::PerMovement,
        }
    }
}

/// The capacity-aware fixed-length back-pressure controller.
///
/// # Examples
///
/// ```
/// use utilbp_baselines::CapBp;
/// use utilbp_core::{
///     standard, IntersectionView, QueueObservation, SignalController, Tick,
///     Ticks,
/// };
///
/// let layout = standard::four_way(120, 1.0);
/// let mut obs = QueueObservation::zeros(&layout);
/// obs.set_movement(
///     standard::link_id(standard::Approach::North, standard::Turn::Straight),
///     5,
/// );
/// let mut ctrl = CapBp::new(Ticks::new(16));
/// let view = IntersectionView::new(&layout, &obs).unwrap();
/// let decision = ctrl.decide(&view, Tick::ZERO);
/// assert_eq!(decision.phase(), Some(standard::phase_id(1)));
/// ```
#[derive(Debug, Clone)]
pub struct CapBp {
    config: CapBpConfig,
    slots: SlotMachine,
}

impl CapBp {
    /// Creates a controller with the paper's amber and the given period.
    pub fn new(period: Ticks) -> Self {
        CapBp::with_config(CapBpConfig::with_period(period))
    }

    /// Creates a controller from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `upstream_storage` is zero.
    pub fn with_config(config: CapBpConfig) -> Self {
        assert!(
            config.upstream_storage > 0,
            "upstream_storage must be positive"
        );
        CapBp {
            config,
            slots: SlotMachine::with_always_transition(config.period, config.transition),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &CapBpConfig {
        &self.config
    }
}

/// The capacity-aware weight of one link:
/// `max(0, (b_up/S_up − q_out/W_out))·µ`, with `b_up` per-road or
/// per-movement depending on the configured [`CapBpPressure`].
fn link_weight(
    config: &CapBpConfig,
    view: &IntersectionView<'_>,
    link: utilbp_core::LinkId,
) -> f64 {
    let layout = view.layout();
    let l = layout.link(link);
    let (up_queue, up_storage) = match config.pressure {
        CapBpPressure::PerRoad => {
            // The whole road's queue, normalized by the whole road's
            // storage (one movement's share × the number of movements).
            let movements = layout.links_from(l.from()).len() as u32;
            (
                view.incoming_total(l.from()),
                config.upstream_storage * movements.max(1),
            )
        }
        CapBpPressure::PerMovement => (view.movement_queue(link), config.upstream_storage),
    };
    let up = up_queue as f64 / up_storage as f64;
    let down = view.outgoing_occupancy(l.to()) as f64 / layout.capacity(l.to()) as f64;
    ((up - down) * l.service_rate()).max(0.0)
}

/// Phase selection at a slot boundary.
fn select_with(
    config: &CapBpConfig,
    view: &IntersectionView<'_>,
    current: Option<PhaseId>,
) -> PhaseId {
    let layout = view.layout();
    let mut best: Option<(PhaseId, f64, u32)> = None;
    let mut best_serving: Option<(PhaseId, f64, u32)> = None;

    for phase in layout.phase_ids() {
        let mut score = 0.0;
        let mut servable = 0u32;
        for &l in layout.phase(phase).links() {
            score += link_weight(config, view, l);
            servable += view.link_service_bound(l);
        }
        let better = |incumbent: &Option<(PhaseId, f64, u32)>| -> bool {
            match *incumbent {
                None => true,
                Some((p, s, v)) => {
                    score > s
                        || (score == s && servable > v)
                        || (score == s && servable == v && current == Some(phase) && p != phase)
                }
            }
        };
        if better(&best) {
            best = Some((phase, score, servable));
        }
        if servable > 0 && better(&best_serving) {
            best_serving = Some((phase, score, servable));
        }
    }

    // Relaxed work conservation: if the weight-maximizing phase serves
    // nothing but some phase can serve, take the best serving phase.
    match (best, best_serving) {
        (Some((_, _, 0)), Some((p, _, _))) => p,
        (Some((p, _, _)), _) => p,
        _ => unreachable!("layouts always have at least one phase"),
    }
}

impl SignalController for CapBp {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        let config = self.config;
        self.slots
            .decide(now, |current| select_with(&config, view, current))
    }

    fn reset(&mut self) {
        self.slots.reset();
    }

    fn name(&self) -> &'static str {
        "cap-bp"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        self.slots.save_state(writer);
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        self.slots.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::standard::{self, Approach, Turn};
    use utilbp_core::QueueObservation;

    fn layout() -> utilbp_core::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    fn decide(
        ctrl: &mut CapBp,
        layout: &utilbp_core::IntersectionLayout,
        obs: &QueueObservation,
        k: u64,
    ) -> PhaseDecision {
        let view = IntersectionView::new(layout, obs).unwrap();
        ctrl.decide(&view, Tick::new(k))
    }

    #[test]
    fn holds_phase_for_the_whole_slot_despite_state_changes() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 10);
        let mut ctrl = CapBp::new(Ticks::new(8));
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 0).phase(),
            Some(standard::phase_id(1))
        );
        // Queue drains to zero mid-slot and the east side loads up; the
        // fixed-length controller cannot react.
        obs.set_movement(ns, 0);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 50);
        for k in 1..8 {
            assert_eq!(
                decide(&mut ctrl, &layout, &obs, k).phase(),
                Some(standard::phase_id(1)),
                "slot must persist at k={k}"
            );
        }
        // Boundary at k=8: amber, then the east phase.
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 8),
            PhaseDecision::Transition
        );
    }

    #[test]
    fn every_slot_ends_with_an_amber() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::North, Turn::Straight), 10);
        let mut ctrl = CapBp::new(Ticks::new(6));
        let mut ambers = 0u32;
        for k in 0..100 {
            if decide(&mut ctrl, &layout, &obs, k).is_transition() {
                ambers += 1;
            }
        }
        // 6 green + 4 amber per cycle over 100 ticks → 40 amber ticks.
        assert_eq!(ambers, 40);
    }

    #[test]
    fn full_outgoing_road_attracts_no_weight() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        // North-straight has a huge queue but its exit is full; the east
        // approach has a modest queue with room downstream.
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 40);
        obs.set_outgoing(layout.link(ns).to(), 120);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 5);
        let mut ctrl = CapBp::new(Ticks::new(16));
        // The blocked link contributes zero weight; c3's 5 servable
        // vehicles win.
        let d = decide(&mut ctrl, &layout, &obs, 0);
        assert_eq!(d.phase(), Some(standard::phase_id(3)));
    }

    fn per_movement(period: u64) -> CapBp {
        CapBp::with_config(CapBpConfig {
            pressure: CapBpPressure::PerMovement,
            ..CapBpConfig::with_period(Ticks::new(period))
        })
    }

    #[test]
    fn per_movement_pressure_routes_green_to_the_loaded_movement() {
        // Under Gregoire-faithful per-movement pressure, a right-turn
        // queue attracts the right-turn phase directly on score.
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let nr = standard::link_id(Approach::North, Turn::Right);
        obs.set_movement(nr, 40);
        let mut ctrl = per_movement(16);
        let d = decide(&mut ctrl, &layout, &obs, 0);
        assert_eq!(d.phase(), Some(standard::phase_id(2)));
    }

    #[test]
    fn per_road_pressure_inflates_sibling_links() {
        // The DATE paper's change (i): with per-road pressure, the same
        // right-turn queue raises the gains of the straight/left links
        // from the north road too, so c1 out-scores c2 — only the relaxed
        // work-conservation rule redirects green to the servable phase.
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let nr = standard::link_id(Approach::North, Turn::Right);
        obs.set_movement(nr, 40);
        // Give c1 one servable vehicle so work conservation does NOT kick
        // in — now c1 wins on inflated pressure while 40 right-turners
        // wait.
        obs.set_movement(standard::link_id(Approach::North, Turn::Straight), 1);
        let mut ctrl = CapBp::with_config(CapBpConfig {
            pressure: CapBpPressure::PerRoad,
            ..CapBpConfig::with_period(Ticks::new(16))
        });
        let d = decide(&mut ctrl, &layout, &obs, 0);
        assert_eq!(d.phase(), Some(standard::phase_id(1)));
    }

    #[test]
    fn normalization_compares_occupancy_ratios() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        // Per-movement: 10/40 = 0.25 upstream vs 36/120 = 0.3 downstream →
        // no weight; 10/40 = 0.25 vs 24/120 = 0.2 → positive weight.
        let ns = standard::link_id(Approach::North, Turn::Straight);
        let es = standard::link_id(Approach::East, Turn::Straight);
        obs.set_movement(ns, 10);
        obs.set_outgoing(layout.link(ns).to(), 36);
        obs.set_movement(es, 10);
        obs.set_outgoing(layout.link(es).to(), 24);
        let mut ctrl = per_movement(16);
        let d = decide(&mut ctrl, &layout, &obs, 0);
        assert_eq!(d.phase(), Some(standard::phase_id(3)));
    }

    #[test]
    fn work_conservation_picks_a_serving_phase_when_weights_vanish() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        // The only queued movement is exactly balanced with its exit
        // (2/40 < 6/120 → weight 0 everywhere); but it is servable, so the
        // relaxed rule routes green to it.
        let er = standard::link_id(Approach::East, Turn::Right);
        obs.set_movement(er, 2);
        obs.set_outgoing(layout.link(er).to(), 6);
        let mut ctrl = CapBp::new(Ticks::new(16));
        let d = decide(&mut ctrl, &layout, &obs, 0);
        assert_eq!(d.phase(), Some(standard::phase_id(4)));
    }

    #[test]
    fn reset_restarts_slots() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::West, Turn::Left), 3);
        let mut ctrl = CapBp::new(Ticks::new(16));
        let first = decide(&mut ctrl, &layout, &obs, 0);
        ctrl.reset();
        assert_eq!(decide(&mut ctrl, &layout, &obs, 100), first);
        assert_eq!(ctrl.name(), "cap-bp");
        assert_eq!(ctrl.config().period, Ticks::new(16));
        assert_eq!(ctrl.config().upstream_storage, 40);
    }

    #[test]
    #[should_panic(expected = "upstream_storage")]
    fn rejects_zero_storage() {
        let mut config = CapBpConfig::with_period(Ticks::new(16));
        config.upstream_storage = 0;
        let _ = CapBp::with_config(config);
    }
}
