//! A classic vehicle-actuated controller: gap-out / max-out green.
//!
//! Not part of the paper's comparison, but the industry-standard
//! adaptive baseline: each green runs at least `min_green`, extends while
//! its movements still present vehicles (no gap), and is cut at
//! `max_green`. When the green ends, the phase with the most servable
//! vehicles is activated through an amber. Useful context for UTIL-BP's
//! results — actuated control adapts phase *lengths* but has no notion of
//! downstream pressure or capacity.

use serde::{Deserialize, Serialize};
use utilbp_core::{IntersectionView, PhaseDecision, PhaseId, SignalController, Tick, Ticks};

/// Configuration of [`Actuated`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ActuatedConfig {
    /// Minimum green per activation.
    pub min_green: Ticks,
    /// Maximum green per activation (max-out).
    pub max_green: Ticks,
    /// Amber duration on phase changes.
    pub transition: Ticks,
}

impl Default for ActuatedConfig {
    fn default() -> Self {
        ActuatedConfig {
            min_green: Ticks::new(5),
            max_green: Ticks::new(40),
            transition: Ticks::new(4),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    /// No phase yet (cold start).
    Idle,
    /// Green on a phase since the given tick.
    Green(PhaseId, Tick),
    /// Amber until the given tick, then the pending phase.
    Amber(Tick, PhaseId),
}

/// The gap-out / max-out vehicle-actuated controller.
///
/// # Examples
///
/// ```
/// use utilbp_baselines::Actuated;
/// use utilbp_core::{
///     standard, IntersectionView, QueueObservation, SignalController, Tick,
/// };
///
/// let layout = standard::four_way(120, 1.0);
/// let mut obs = QueueObservation::zeros(&layout);
/// obs.set_movement(
///     standard::link_id(standard::Approach::North, standard::Turn::Straight),
///     4,
/// );
/// let mut ctrl = Actuated::new();
/// let view = IntersectionView::new(&layout, &obs).unwrap();
/// assert_eq!(
///     ctrl.decide(&view, Tick::ZERO).phase(),
///     Some(standard::phase_id(1))
/// );
/// ```
#[derive(Debug, Clone)]
pub struct Actuated {
    config: ActuatedConfig,
    state: State,
}

impl Actuated {
    /// Creates a controller with the default timings (5 s min green,
    /// 40 s max green, 4 s amber).
    pub fn new() -> Self {
        Actuated::with_config(ActuatedConfig::default())
    }

    /// Creates a controller from an explicit configuration.
    ///
    /// # Panics
    ///
    /// Panics if `min_green` is zero or exceeds `max_green`.
    pub fn with_config(config: ActuatedConfig) -> Self {
        assert!(!config.min_green.is_zero(), "min_green must be positive");
        assert!(
            config.min_green <= config.max_green,
            "min_green must not exceed max_green"
        );
        Actuated {
            config,
            state: State::Idle,
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &ActuatedConfig {
        &self.config
    }

    /// Whether the running phase still presents demand (no gap).
    fn has_demand(view: &IntersectionView<'_>, phase: PhaseId) -> bool {
        view.layout()
            .phase(phase)
            .links()
            .iter()
            .any(|&l| view.link_servable(l))
    }

    /// The phase with the most servable vehicles (ties → lowest index;
    /// `current` is preferred on exact ties to avoid needless ambers).
    fn most_demanded(view: &IntersectionView<'_>, current: Option<PhaseId>) -> PhaseId {
        let layout = view.layout();
        let mut best: Option<(PhaseId, u32)> = None;
        for phase in layout.phase_ids() {
            let servable: u32 = layout
                .phase(phase)
                .links()
                .iter()
                .map(|&l| view.link_service_bound(l))
                .sum();
            let replace = match best {
                None => true,
                Some((p, s)) => {
                    servable > s || (servable == s && current == Some(phase) && p != phase)
                }
            };
            if replace {
                best = Some((phase, servable));
            }
        }
        best.expect("layouts always have at least one phase").0
    }
}

impl Default for Actuated {
    fn default() -> Self {
        Actuated::new()
    }
}

impl SignalController for Actuated {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        match self.state {
            State::Idle => {
                let phase = Self::most_demanded(view, None);
                self.state = State::Green(phase, now);
                PhaseDecision::Control(phase)
            }
            State::Amber(until, pending) => {
                if now < until {
                    PhaseDecision::Transition
                } else {
                    self.state = State::Green(pending, now);
                    PhaseDecision::Control(pending)
                }
            }
            State::Green(phase, since) => {
                let elapsed = now.saturating_since(since);
                let gap_out = elapsed >= self.config.min_green && !Self::has_demand(view, phase);
                let max_out = elapsed >= self.config.max_green;
                if !(gap_out || max_out) {
                    return PhaseDecision::Control(phase);
                }
                let next = Self::most_demanded(view, Some(phase));
                if next == phase {
                    // Re-anchor the green so max-out measures from now.
                    self.state = State::Green(phase, now);
                    PhaseDecision::Control(phase)
                } else {
                    self.state = State::Amber(now + self.config.transition, next);
                    PhaseDecision::Transition
                }
            }
        }
    }

    fn reset(&mut self) {
        self.state = State::Idle;
    }

    fn name(&self) -> &'static str {
        "actuated"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        match self.state {
            State::Idle => {
                writer.push(0);
            }
            State::Green(phase, since) => {
                writer.push(1);
                writer.push(PhaseDecision::Control(phase).state_word());
                writer.push(since.index());
            }
            State::Amber(until, pending) => {
                writer.push(2);
                writer.push(until.index());
                writer.push(PhaseDecision::Control(pending).state_word());
            }
        }
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        let take_phase = |reader: &mut utilbp_core::state::StateReader<'_>| {
            PhaseDecision::from_state_word(reader.take()?)?
                .phase()
                .ok_or(utilbp_core::state::StateError::Invalid {
                    what: "actuated phase",
                    word: 0,
                })
        };
        self.state = match reader.take()? {
            0 => State::Idle,
            1 => {
                let phase = take_phase(reader)?;
                State::Green(phase, Tick::new(reader.take()?))
            }
            2 => {
                let until = Tick::new(reader.take()?);
                State::Amber(until, take_phase(reader)?)
            }
            word => {
                return Err(utilbp_core::state::StateError::Invalid {
                    what: "actuated state tag",
                    word,
                })
            }
        };
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::standard::{self, Approach, Turn};
    use utilbp_core::QueueObservation;

    fn layout() -> utilbp_core::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    fn decide_at(
        ctrl: &mut Actuated,
        layout: &utilbp_core::IntersectionLayout,
        obs: &QueueObservation,
        k: u64,
    ) -> PhaseDecision {
        let view = IntersectionView::new(layout, obs).unwrap();
        ctrl.decide(&view, Tick::new(k))
    }

    #[test]
    fn extends_green_while_demand_persists() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 20);
        let mut ctrl = Actuated::new();
        for k in 0..30 {
            assert_eq!(
                decide_at(&mut ctrl, &layout, &obs, k).phase(),
                Some(standard::phase_id(1)),
                "demand persists at k={k}"
            );
        }
    }

    #[test]
    fn gaps_out_after_min_green_when_queue_clears() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 20);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 5);
        let mut ctrl = Actuated::new();
        assert_eq!(
            decide_at(&mut ctrl, &layout, &obs, 0).phase(),
            Some(standard::phase_id(1))
        );
        // The north queue clears instantly: gap-out at min_green (5).
        obs.set_movement(ns, 0);
        for k in 1..5 {
            assert_eq!(
                decide_at(&mut ctrl, &layout, &obs, k).phase(),
                Some(standard::phase_id(1)),
                "min green must hold at k={k}"
            );
        }
        assert!(decide_at(&mut ctrl, &layout, &obs, 5).is_transition());
        // Amber 4 ticks, then the east phase.
        for k in 6..9 {
            assert!(decide_at(&mut ctrl, &layout, &obs, k).is_transition());
        }
        assert_eq!(
            decide_at(&mut ctrl, &layout, &obs, 9).phase(),
            Some(standard::phase_id(3))
        );
    }

    #[test]
    fn maxes_out_under_sustained_demand() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::North, Turn::Straight), 90);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 89);
        let mut ctrl = Actuated::with_config(ActuatedConfig {
            min_green: Ticks::new(3),
            max_green: Ticks::new(10),
            transition: Ticks::new(2),
        });
        assert_eq!(
            decide_at(&mut ctrl, &layout, &obs, 0).phase(),
            Some(standard::phase_id(1))
        );
        for k in 1..10 {
            assert!(!decide_at(&mut ctrl, &layout, &obs, k).is_transition());
        }
        // Max-out at k=10: the east phase has (just) less demand but the
        // north is maxed; selection picks the *most demanded* — still the
        // north (90 > 89 per-link bound is both 1 per link… the tie logic
        // counts service bounds, both 2). The point: no infinite green —
        // either it re-anchors (same phase) or goes amber.
        let d = decide_at(&mut ctrl, &layout, &obs, 10);
        assert!(d.is_transition() || d.phase() == Some(standard::phase_id(1)));
    }

    #[test]
    fn empty_junction_does_not_churn() {
        let layout = layout();
        let obs = QueueObservation::zeros(&layout);
        let mut ctrl = Actuated::new();
        let first = decide_at(&mut ctrl, &layout, &obs, 0);
        for k in 1..40 {
            assert_eq!(decide_at(&mut ctrl, &layout, &obs, k), first);
        }
    }

    #[test]
    fn reset_and_accessors() {
        let mut ctrl = Actuated::new();
        assert_eq!(ctrl.name(), "actuated");
        assert_eq!(ctrl.config().min_green, Ticks::new(5));
        ctrl.reset();
    }

    #[test]
    #[should_panic(expected = "min_green")]
    fn rejects_inverted_green_bounds() {
        let _ = Actuated::with_config(ActuatedConfig {
            min_green: Ticks::new(50),
            max_green: Ticks::new(10),
            transition: Ticks::new(4),
        });
    }
}
