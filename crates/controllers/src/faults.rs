//! Sensor fault injection: a controller decorator that corrupts the queue
//! observations before they reach the wrapped controller.
//!
//! The paper's CPS framing makes the sensor path explicit — queue lengths
//! are *measured*, not known. This decorator models the three classic
//! detector failure modes so any controller's sensitivity to imperfect
//! sensing can be quantified (see the `robustness_sensor_faults` bench):
//!
//! - **dropout**: a reading is lost and reported as zero (stuck-off loop
//!   detector);
//! - **noise**: counting error of ±`magnitude` vehicles;
//! - **freeze**: the last reading is repeated (stale communication);
//! - **stuck-at**: a detector latches at a fixed value for the rest of
//!   the fault window (shorted loop);
//! - **frozen counter**: a detector latches at its *current* truth and
//!   stops updating for the rest of the window (hung counter firmware).
//!
//! `freeze` is transient (each reading independently repeats the
//! previous one); `stuck-at`/`frozen` are *persistent* — once a reading
//! latches it stays latched until the fault window deactivates or the
//! controller is reset.
//!
//! Faults are sampled per link/road per decision from a seeded RNG, so
//! faulty runs are exactly reproducible. Every fault mode's random draw
//! is gated on its probability being positive, so enabling a new mode
//! never perturbs the RNG stream of configs that do not use it.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use utilbp_core::{IntersectionView, PhaseDecision, QueueObservation, SignalController, Tick};

/// Fault model parameters. Probabilities are per reading per decision.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SensorFaultConfig {
    /// Probability a reading drops to zero.
    pub dropout: f64,
    /// Probability a reading gains symmetric counting noise.
    pub noise: f64,
    /// Maximum magnitude of counting noise, in vehicles.
    pub noise_magnitude: u32,
    /// Probability a reading freezes at its previous value.
    pub freeze: f64,
    /// Probability a reading *latches* at [`stuck_at_value`]: once
    /// sampled, that detector reports the fixed value for the rest of
    /// the fault window (a shorted loop detector).
    ///
    /// [`stuck_at_value`]: SensorFaultConfig::stuck_at_value
    pub stuck_at: f64,
    /// The value a stuck-at detector reports.
    pub stuck_at_value: u32,
    /// Probability a reading's counter *freezes*: once sampled, that
    /// detector latches at its current truth and stops updating for the
    /// rest of the fault window (hung counter firmware). Unlike
    /// [`freeze`], which independently repeats the previous reading per
    /// decision, a frozen counter persists.
    ///
    /// [`freeze`]: SensorFaultConfig::freeze
    pub frozen: f64,
}

impl SensorFaultConfig {
    /// No faults (the wrapped controller behaves identically).
    pub const NONE: SensorFaultConfig = SensorFaultConfig {
        dropout: 0.0,
        noise: 0.0,
        noise_magnitude: 0,
        freeze: 0.0,
        stuck_at: 0.0,
        stuck_at_value: 0,
        frozen: 0.0,
    };

    /// Validates that all probabilities lie in `[0, 1]`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the offending field.
    pub fn validate(&self) -> Result<(), String> {
        for (name, p) in [
            ("dropout", self.dropout),
            ("noise", self.noise),
            ("freeze", self.freeze),
            ("stuck-at", self.stuck_at),
            ("frozen", self.frozen),
        ] {
            if !(0.0..=1.0).contains(&p) {
                return Err(format!("{name} must be a probability, got {p}"));
            }
        }
        Ok(())
    }
}

/// A shared on/off switch for fault injection: scenario engines hold one
/// handle and flip it at event ticks (a sensor-degradation *window*),
/// while every wrapped controller holds a clone and consults it per
/// decision. While inactive, a [`FaultySensors`] wrapper is fully
/// transparent — no corruption and no random draws, so the fault RNG
/// stream depends only on the ticks the window covers.
///
/// # Examples
///
/// ```
/// use utilbp_baselines::FaultSwitch;
///
/// let switch = FaultSwitch::new(false);
/// let handle = switch.clone();
/// handle.set_active(true);
/// assert!(switch.is_active());
/// ```
#[derive(Debug, Clone, Default)]
pub struct FaultSwitch(Arc<AtomicBool>);

impl FaultSwitch {
    /// Creates a switch in the given initial state.
    pub fn new(active: bool) -> Self {
        FaultSwitch(Arc::new(AtomicBool::new(active)))
    }

    /// Turns fault injection on or off for every controller holding a
    /// clone of this switch.
    pub fn set_active(&self, active: bool) {
        self.0.store(active, Ordering::Relaxed);
    }

    /// Whether fault injection is currently active.
    pub fn is_active(&self) -> bool {
        self.0.load(Ordering::Relaxed)
    }
}

/// Wraps a controller with faulty sensors.
///
/// # Examples
///
/// ```
/// use utilbp_baselines::{FaultySensors, SensorFaultConfig};
/// use utilbp_core::{standard, QueueObservation, IntersectionView, SignalController, Tick, UtilBp};
///
/// let mut ctrl = FaultySensors::new(
///     UtilBp::paper(),
///     SensorFaultConfig { dropout: 0.1, ..SensorFaultConfig::NONE },
///     42,
/// );
/// let layout = standard::four_way(120, 1.0);
/// let obs = QueueObservation::zeros(&layout);
/// let view = IntersectionView::new(&layout, &obs).unwrap();
/// let _ = ctrl.decide(&view, Tick::ZERO);
/// ```
#[derive(Debug, Clone)]
pub struct FaultySensors<C> {
    inner: C,
    config: SensorFaultConfig,
    rng: SmallRng,
    /// Last delivered observation, for the freeze fault.
    last: Option<QueueObservation>,
    /// Per-reading persistent latches for the stuck-at/frozen-counter
    /// faults, indexed by reading position (movements first, then
    /// outgoing roads, in layout order). Empty while the window is
    /// inactive — latches do not survive deactivation.
    latched: Vec<Option<u32>>,
    /// Scenario-driven gate: faults apply only while the switch is
    /// active. [`FaultySensors::new`] installs an always-on switch.
    switch: FaultSwitch,
}

impl<C: SignalController> FaultySensors<C> {
    /// Wraps `inner` with the given fault model and RNG seed.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SensorFaultConfig::validate`].
    pub fn new(inner: C, config: SensorFaultConfig, seed: u64) -> Self {
        FaultySensors::gated(inner, config, seed, FaultSwitch::new(true))
    }

    /// Wraps `inner` with a fault model gated by `switch`: corruption
    /// applies only while the switch is active, which is how scenario
    /// sensor-degradation windows turn the fault model on and off
    /// mid-run without rebuilding controllers.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SensorFaultConfig::validate`].
    pub fn gated(inner: C, config: SensorFaultConfig, seed: u64, switch: FaultSwitch) -> Self {
        if let Err(msg) = config.validate() {
            panic!("invalid sensor fault config: {msg}");
        }
        FaultySensors {
            inner,
            config,
            rng: SmallRng::seed_from_u64(seed),
            last: None,
            latched: Vec::new(),
            switch,
        }
    }

    /// The wrapped controller.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// The fault model.
    pub fn config(&self) -> &SensorFaultConfig {
        &self.config
    }

    fn corrupt(
        cfg: &SensorFaultConfig,
        rng: &mut SmallRng,
        truth: u32,
        previous: Option<u32>,
        latch: &mut Option<u32>,
    ) -> u32 {
        // A persistent latch, once sampled, overrides every transient
        // mode (and draws no further randomness for this reading).
        if let Some(v) = *latch {
            return v;
        }
        if cfg.stuck_at > 0.0 && rng.gen::<f64>() < cfg.stuck_at {
            *latch = Some(cfg.stuck_at_value);
            return cfg.stuck_at_value;
        }
        if cfg.frozen > 0.0 && rng.gen::<f64>() < cfg.frozen {
            *latch = Some(truth);
            return truth;
        }
        if cfg.freeze > 0.0 && rng.gen::<f64>() < cfg.freeze {
            if let Some(prev) = previous {
                return prev;
            }
        }
        if cfg.dropout > 0.0 && rng.gen::<f64>() < cfg.dropout {
            return 0;
        }
        if cfg.noise > 0.0 && cfg.noise_magnitude > 0 && rng.gen::<f64>() < cfg.noise {
            let delta =
                rng.gen_range(0..=2 * cfg.noise_magnitude as i64) - cfg.noise_magnitude as i64;
            return truth.saturating_add_signed(delta as i32);
        }
        truth
    }
}

impl<C: SignalController> SignalController for FaultySensors<C> {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        let layout = view.layout();
        if !self.switch.is_active() {
            // Window closed: pass the truth through. When a freeze fault
            // is configured, keep `last` tracking the healthy readings
            // (reusing the buffer in place) so a freeze right after
            // reactivation repeats the latest truth rather than a stale
            // pre-window value; otherwise `last` is never read and the
            // inactive path stays allocation-free.
            if self.config.freeze > 0.0 {
                let truth = self
                    .last
                    .get_or_insert_with(|| QueueObservation::zeros(layout));
                for link in layout.link_ids() {
                    truth.set_movement(link, view.movement_queue(link));
                }
                for out in layout.outgoing_ids() {
                    truth.set_outgoing(out, view.outgoing_occupancy(out));
                }
            }
            // Persistent latches model in-window hardware state; a
            // window that closed means the detector was serviced.
            self.latched.clear();
            return self.inner.decide(view, now);
        }
        let mut corrupted = QueueObservation::zeros(layout);
        let mut slot = 0usize;
        for link in layout.link_ids() {
            let previous = self.last.as_ref().map(|o| o.movement(link));
            if self.latched.len() <= slot {
                self.latched.push(None);
            }
            let reading = Self::corrupt(
                &self.config,
                &mut self.rng,
                view.movement_queue(link),
                previous,
                &mut self.latched[slot],
            );
            corrupted.set_movement(link, reading);
            slot += 1;
        }
        for out in layout.outgoing_ids() {
            let previous = self.last.as_ref().map(|o| o.outgoing(out));
            if self.latched.len() <= slot {
                self.latched.push(None);
            }
            let reading = Self::corrupt(
                &self.config,
                &mut self.rng,
                view.outgoing_occupancy(out),
                previous,
                &mut self.latched[slot],
            );
            corrupted.set_outgoing(out, reading);
            slot += 1;
        }
        self.last = Some(corrupted.clone());
        let faulty_view = IntersectionView::new(layout, &corrupted)
            .expect("corrupted observation has the layout's shape");
        self.inner.decide(&faulty_view, now)
    }

    fn reset(&mut self) {
        self.inner.reset();
        self.last = None;
        self.latched.clear();
    }

    fn name(&self) -> &'static str {
        "faulty-sensors"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        // The switch is engine-owned state (a scenario fault window) and
        // is restored by the engine, not here.
        for word in self.rng.state() {
            writer.push(word);
        }
        match &self.last {
            None => writer.push_bool(false),
            Some(obs) => {
                writer.push_bool(true);
                obs.save_state(writer);
            }
        }
        writer.push_usize(self.latched.len());
        for latch in &self.latched {
            match latch {
                None => writer.push_bool(false),
                Some(v) => {
                    writer.push_bool(true);
                    writer.push_u32(*v);
                }
            }
        }
        self.inner.save_state(writer);
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        let mut rng_state = [0u64; 4];
        for word in &mut rng_state {
            *word = reader.take()?;
        }
        self.rng = SmallRng::from_state(rng_state);
        self.last = if reader.take_bool()? {
            Some(QueueObservation::load_state(reader)?)
        } else {
            None
        };
        let len = reader.take_usize()?;
        self.latched.clear();
        for _ in 0..len {
            let latch = if reader.take_bool()? {
                Some(reader.take_u32()?)
            } else {
                None
            };
            self.latched.push(latch);
        }
        self.inner.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::standard::{self, Approach, Turn};
    use utilbp_core::UtilBp;

    fn layout() -> utilbp_core::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    #[test]
    fn no_faults_is_transparent() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 9);
        let mut clean = UtilBp::paper();
        let mut wrapped = FaultySensors::new(UtilBp::paper(), SensorFaultConfig::NONE, 1);
        for k in 0..50 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            let view2 = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(
                clean.decide(&view, Tick::new(k)),
                wrapped.decide(&view2, Tick::new(k)),
                "k={k}"
            );
        }
    }

    #[test]
    fn full_dropout_blinds_the_controller() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 30);
        let mut wrapped = FaultySensors::new(
            UtilBp::paper(),
            SensorFaultConfig {
                dropout: 1.0,
                ..SensorFaultConfig::NONE
            },
            1,
        );
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let d = wrapped.decide(&view, Tick::ZERO);
        // Blind controller sees an all-empty junction: it settles on some
        // phase by tie-break, not necessarily the loaded one — and over
        // many ticks it must never see the queue.
        let first = d;
        for k in 1..20 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(wrapped.decide(&view, Tick::new(k)), first);
        }
    }

    #[test]
    fn freeze_repeats_previous_reading() {
        let layout = layout();
        let link = standard::link_id(Approach::North, Turn::Straight);
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(link, 10);
        // freeze = 1.0: after the first reading every subsequent one is a
        // copy, so emptying the physical queue must not change decisions.
        let mut wrapped = FaultySensors::new(
            UtilBp::paper(),
            SensorFaultConfig {
                freeze: 1.0,
                ..SensorFaultConfig::NONE
            },
            1,
        );
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let first = wrapped.decide(&view, Tick::ZERO);
        obs.set_movement(link, 0);
        for k in 1..10 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(
                wrapped.decide(&view, Tick::new(k)),
                first,
                "frozen sensors must pin the decision"
            );
        }
    }

    #[test]
    fn corruption_is_seed_deterministic() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        for l in layout.link_ids() {
            obs.set_movement(l, 7);
        }
        let cfg = SensorFaultConfig {
            dropout: 0.3,
            noise: 0.3,
            noise_magnitude: 3,
            freeze: 0.1,
            stuck_at: 0.05,
            stuck_at_value: 99,
            frozen: 0.05,
        };
        let run = |seed: u64| -> Vec<PhaseDecision> {
            let mut c = FaultySensors::new(UtilBp::paper(), cfg, seed);
            (0..30)
                .map(|k| {
                    let view = IntersectionView::new(&layout, &obs).unwrap();
                    c.decide(&view, Tick::new(k))
                })
                .collect()
        };
        assert_eq!(run(9), run(9));
    }

    #[test]
    fn reset_clears_frozen_state() {
        let layout = layout();
        let obs = QueueObservation::zeros(&layout);
        let mut wrapped = FaultySensors::new(
            UtilBp::paper(),
            SensorFaultConfig {
                freeze: 1.0,
                ..SensorFaultConfig::NONE
            },
            1,
        );
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let _ = wrapped.decide(&view, Tick::ZERO);
        wrapped.reset();
        assert!(wrapped.inner().previous_decision().is_transition());
        assert_eq!(wrapped.name(), "faulty-sensors");
        assert_eq!(wrapped.config().freeze, 1.0);
    }

    #[test]
    fn gated_faults_are_transparent_while_inactive() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 30);
        let switch = FaultSwitch::new(false);
        let mut clean = UtilBp::paper();
        let mut gated = FaultySensors::gated(
            UtilBp::paper(),
            SensorFaultConfig {
                dropout: 1.0,
                ..SensorFaultConfig::NONE
            },
            1,
            switch.clone(),
        );
        for k in 0..20 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            let view2 = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(
                clean.decide(&view, Tick::new(k)),
                gated.decide(&view2, Tick::new(k)),
                "inactive switch must be transparent at k={k}"
            );
        }
        // Activate mid-run: total dropout blinds the controller, so its
        // decision stops tracking the loaded junction.
        switch.set_active(true);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let blind_first = gated.decide(&view, Tick::new(20));
        for k in 21..40 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(gated.decide(&view, Tick::new(k)), blind_first);
        }
        // Deactivate again: the controller sees the loaded movement and
        // must eventually settle on the east–west phase (c3) that serves
        // it — which total dropout prevented.
        switch.set_active(false);
        let c3 = PhaseDecision::Control(standard::phase_id(3));
        let mut settled = false;
        for k in 40..120 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            settled |= gated.decide(&view, Tick::new(k)) == c3;
        }
        assert!(settled, "healthy sensors must reveal the loaded movement");
    }

    #[test]
    fn stuck_at_latches_every_reading_at_the_fixed_value() {
        let layout = layout();
        let link = standard::link_id(Approach::North, Turn::Straight);
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(link, 25);
        // stuck_at = 1.0 with value 0: every detector latches dark on
        // its first in-window reading, so the controller is blind and
        // pinned regardless of how the physical queues evolve.
        let mut wrapped = FaultySensors::new(
            UtilBp::paper(),
            SensorFaultConfig {
                stuck_at: 1.0,
                stuck_at_value: 0,
                ..SensorFaultConfig::NONE
            },
            1,
        );
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let first = wrapped.decide(&view, Tick::ZERO);
        obs.set_movement(link, 60);
        for k in 1..20 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(
                wrapped.decide(&view, Tick::new(k)),
                first,
                "stuck-at detectors must pin the decision at k={k}"
            );
        }
    }

    #[test]
    fn frozen_counter_persists_after_truth_changes() {
        let layout = layout();
        let link = standard::link_id(Approach::East, Turn::Straight);
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(link, 30);
        // frozen = 1.0: every counter latches at its tick-0 truth; the
        // loaded east approach keeps reporting 30 even once emptied, so
        // the controller keeps serving it exactly as if nothing changed.
        let run = |frozen: bool, empty_after_first: bool| -> Vec<PhaseDecision> {
            let cfg = if frozen {
                SensorFaultConfig {
                    frozen: 1.0,
                    ..SensorFaultConfig::NONE
                }
            } else {
                SensorFaultConfig::NONE
            };
            let mut obs = QueueObservation::zeros(&layout);
            obs.set_movement(link, 30);
            let mut c = FaultySensors::new(UtilBp::paper(), cfg, 7);
            (0..40)
                .map(|k| {
                    if k == 1 && empty_after_first {
                        obs.set_movement(link, 0);
                    }
                    let view = IntersectionView::new(&layout, &obs).unwrap();
                    c.decide(&view, Tick::new(k))
                })
                .collect()
        };
        // Frozen counters make the emptied junction look permanently
        // loaded: decisions match the run where the queue really stayed.
        assert_eq!(run(true, true), run(false, false));
    }

    #[test]
    fn latches_clear_when_the_window_deactivates() {
        let layout = layout();
        let link = standard::link_id(Approach::East, Turn::Straight);
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(link, 30);
        let switch = FaultSwitch::new(true);
        let mut gated = FaultySensors::gated(
            UtilBp::paper(),
            SensorFaultConfig {
                stuck_at: 1.0,
                stuck_at_value: 0,
                ..SensorFaultConfig::NONE
            },
            1,
            switch.clone(),
        );
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let blind = gated.decide(&view, Tick::ZERO);
        for k in 1..20 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            assert_eq!(gated.decide(&view, Tick::new(k)), blind);
        }
        // Deactivate: detectors are serviced, latches clear, and the
        // controller must rediscover the loaded east–west movement.
        switch.set_active(false);
        let c3 = PhaseDecision::Control(standard::phase_id(3));
        let mut settled = false;
        for k in 20..120 {
            let view = IntersectionView::new(&layout, &obs).unwrap();
            settled |= gated.decide(&view, Tick::new(k)) == c3;
        }
        assert!(settled, "cleared latches must reveal the loaded movement");
    }

    #[test]
    #[should_panic(expected = "invalid sensor fault config")]
    fn rejects_bad_probabilities() {
        let _ = FaultySensors::new(
            UtilBp::paper(),
            SensorFaultConfig {
                dropout: 1.5,
                ..SensorFaultConfig::NONE
            },
            0,
        );
    }
}
