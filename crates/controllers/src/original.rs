//! The original back-pressure signal controller (Varaiya 2009, reference
//! [3] of the paper): fixed-length slots, per-road pressures, no capacity
//! awareness, no work-conservation fix.

use serde::{Deserialize, Serialize};
use utilbp_core::{
    pressure, IntersectionView, PhaseDecision, PhaseId, SignalController, Tick, Ticks,
};

use crate::slot::SlotMachine;

/// Configuration of [`OriginalBp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OriginalBpConfig {
    /// The fixed green period.
    pub period: Ticks,
    /// Amber duration between differing slots.
    pub transition: Ticks,
}

/// The original back-pressure controller.
///
/// At each slot boundary it activates the phase maximizing
/// `Σ max(0, (b_i − b_{i'})·µ)` (Eq. 5). When every gain is zero it keeps
/// the running phase — which is exactly why it is **not** work-conserving:
/// balanced queues (`b_i = b_{i'} > 0`) exert no pressure even though
/// vehicles are waiting, and full downstream roads still attract green time
/// because capacities are ignored (assumed infinite).
#[derive(Debug, Clone)]
pub struct OriginalBp {
    config: OriginalBpConfig,
    slots: SlotMachine,
}

impl OriginalBp {
    /// Creates a controller with the paper's 4-tick amber and the given
    /// period.
    pub fn new(period: Ticks) -> Self {
        OriginalBp::with_config(OriginalBpConfig {
            period,
            transition: Ticks::new(4),
        })
    }

    /// Creates a controller from an explicit configuration.
    pub fn with_config(config: OriginalBpConfig) -> Self {
        OriginalBp {
            config,
            // Conventional fixed-length timing: every slot ends with an
            // amber (see the paper's Section III-A description).
            slots: SlotMachine::with_always_transition(config.period, config.transition),
        }
    }

    /// The active configuration.
    pub fn config(&self) -> &OriginalBpConfig {
        &self.config
    }

    fn select(view: &IntersectionView<'_>, current: Option<PhaseId>) -> PhaseId {
        let layout = view.layout();
        let mut best: Option<(PhaseId, f64)> = None;
        for phase in layout.phase_ids() {
            let score: f64 = layout
                .phase(phase)
                .links()
                .iter()
                .map(|&lid| {
                    let l = layout.link(lid);
                    pressure::original_link_gain(
                        view.incoming_total(l.from()),
                        view.outgoing_occupancy(l.to()),
                        l.service_rate(),
                    )
                })
                .sum();
            let replace = match best {
                None => true,
                Some((p, s)) => score > s || (score == s && current == Some(phase) && p != phase),
            };
            if replace {
                best = Some((phase, score));
            }
        }
        let (phase, score) = best.expect("layouts always have at least one phase");
        if score <= 0.0 {
            // All gains zero: "no phase is activated" in the original
            // formulation — keep whatever is running to avoid churn.
            current.unwrap_or(phase)
        } else {
            phase
        }
    }
}

impl SignalController for OriginalBp {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        self.slots
            .decide(now, |current| Self::select(view, current))
    }

    fn reset(&mut self) {
        self.slots.reset();
    }

    fn name(&self) -> &'static str {
        "original-bp"
    }

    fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        self.slots.save_state(writer);
    }

    fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        self.slots.load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::standard::{self, Approach, Turn};
    use utilbp_core::QueueObservation;

    fn layout() -> utilbp_core::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    fn decide_at(
        ctrl: &mut OriginalBp,
        layout: &utilbp_core::IntersectionLayout,
        obs: &QueueObservation,
        k: u64,
    ) -> PhaseDecision {
        let view = IntersectionView::new(layout, obs).unwrap();
        ctrl.decide(&view, Tick::new(k))
    }

    #[test]
    fn selects_highest_pressure_phase() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 9);
        obs.set_movement(standard::link_id(Approach::North, Turn::Straight), 4);
        let mut ctrl = OriginalBp::new(Ticks::new(10));
        assert_eq!(
            decide_at(&mut ctrl, &layout, &obs, 0).phase(),
            Some(standard::phase_id(3))
        );
    }

    #[test]
    fn balanced_queues_stall_the_controller() {
        // The non-work-conserving pathology: q_in == q_out > 0 gives zero
        // gain everywhere, so the controller never moves green to the
        // waiting vehicles.
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ew = standard::link_id(Approach::East, Turn::Straight);
        obs.set_movement(ew, 7);
        // Every exit carries the same 7-vehicle occupancy: each east link
        // sees b_i − b_{i'} = 7 − 7 = 0, all other approaches are empty, so
        // every gain is exactly zero even though 7 vehicles wait with ample
        // room downstream (W = 120).
        for o in layout.outgoing_ids() {
            obs.set_outgoing(o, 7);
        }
        let mut ctrl = OriginalBp::new(Ticks::new(10));
        let d = decide_at(&mut ctrl, &layout, &obs, 0);
        // First selection with all-zero gains falls back to the argmax
        // phase (c1); the 7 east vehicles get nothing.
        assert_eq!(d.phase(), Some(standard::phase_id(1)));
        // …the slot ends with the conventional amber, and the next slot
        // still does not move green to the waiting vehicles.
        assert!(decide_at(&mut ctrl, &layout, &obs, 10).is_transition());
        let d = decide_at(&mut ctrl, &layout, &obs, 14);
        assert_eq!(d.phase(), Some(standard::phase_id(1)));
    }

    #[test]
    fn ignores_full_downstream_roads() {
        // Capacity-obliviousness: green goes to a link whose exit is full.
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 100);
        obs.set_outgoing(layout.link(ns).to(), 120);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 5);
        let mut ctrl = OriginalBp::new(Ticks::new(10));
        let d = decide_at(&mut ctrl, &layout, &obs, 0);
        // (100 − 120) clamps to 0 for the straight link, but the north road
        // pressure also feeds the left link (exit empty): gain 100. c1 wins
        // even though its straight exit is saturated.
        assert_eq!(d.phase(), Some(standard::phase_id(1)));
    }

    #[test]
    fn name_and_reset() {
        let mut ctrl = OriginalBp::new(Ticks::new(10));
        assert_eq!(ctrl.name(), "original-bp");
        assert_eq!(ctrl.config().period, Ticks::new(10));
        ctrl.reset();
    }
}
