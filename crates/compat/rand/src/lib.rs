//! Offline shim for `rand`, exposing the surface this workspace uses:
//! [`rngs::SmallRng`], [`Rng`] (`gen`, `gen_range`), and [`SeedableRng`]
//! (`seed_from_u64`).
//!
//! `SmallRng` is xoshiro256++ (the algorithm the real `rand 0.8` uses on
//! 64-bit targets) seeded through SplitMix64, so streams are high quality
//! and fully deterministic for a given seed. Sequences are NOT guaranteed
//! to match the real crate's — simulation results are reproducible within
//! this workspace, not across rand versions, which the real crate does
//! not promise either.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Types a generator can produce via [`Rng::gen`] (the `Standard`
/// distribution of the real crate).
pub trait Standard: Sized {
    /// Samples one value.
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    #[inline]
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits → uniform in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for u64 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for bool {
    fn sample<R: Rng + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    /// The sampled value type.
    type Output;
    /// Samples uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> Self::Output;
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange for Range<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
        impl SampleRange for RangeInclusive<$t> {
            type Output = $t;
            fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample from empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                (start as i128 + (rng.next_u64() as u128 % span) as i128) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange for Range<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from empty range");
        let u = f64::sample(rng);
        self.start + u * (self.end - self.start)
    }
}

impl SampleRange for RangeInclusive<f64> {
    type Output = f64;
    fn sample_from<R: Rng + ?Sized>(self, rng: &mut R) -> f64 {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        let u = f64::sample(rng);
        start + u * (end - start)
    }
}

/// Random-value generation, mirroring `rand::Rng`.
pub trait Rng {
    /// The next raw 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// Samples a value of type `T`.
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Samples uniformly from `range`.
    fn gen_range<S: SampleRange>(&mut self, range: S) -> S::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        self.gen::<f64>() < p
    }
}

/// Seedable generators, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Small fast generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// xoshiro256++ — the small fast RNG of `rand 0.8` on 64-bit targets.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl SmallRng {
        /// The generator's raw 256-bit state — the exact stream position.
        /// Feeding it back through [`SmallRng::from_state`] resumes the
        /// sequence where it left off, which is what checkpoint/restore
        /// needs for bit-identical continuation.
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuilds a generator at an exact stream position previously
        /// captured with [`SmallRng::state`].
        pub fn from_state(s: [u64; 4]) -> Self {
            SmallRng { s }
        }

        fn from_splitmix(seed: u64) -> Self {
            let mut x = seed;
            let mut next = move || {
                x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            SmallRng {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl Rng for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            SmallRng::from_splitmix(seed)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_a_seed() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn unit_float_is_in_range() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(2);
        for _ in 0..1000 {
            let v = rng.gen_range(3usize..10);
            assert!((3..10).contains(&v));
            let w = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&w));
            let f = rng.gen_range(f64::EPSILON..1.0);
            assert!(f > 0.0 && f < 1.0);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }
}
