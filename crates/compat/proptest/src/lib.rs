//! Offline shim for `proptest`.
//!
//! Supports the subset this workspace's property tests use: the
//! [`proptest!`] macro (with `#![proptest_config(...)]`), [`Strategy`]
//! over numeric ranges / tuples / [`strategy::Just`] /
//! [`collection::vec()`],
//! `prop_oneof!`, and the `prop_assert*` macros. Cases are sampled from a
//! fixed-seed deterministic RNG; there is **no shrinking** — a failing
//! case prints its inputs via the assertion message instead.

#![forbid(unsafe_code)]

use rand::rngs::SmallRng;
use rand::SeedableRng;

pub mod test_runner {
    //! Test-runner configuration and errors.

    /// Number of random cases to run per property (the real crate's
    /// default is 256; this shim trades a little coverage for CI speed).
    pub const DEFAULT_CASES: u32 = 64;

    /// Configuration accepted by `#![proptest_config(...)]`.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig {
                cases: DEFAULT_CASES,
            }
        }
    }

    impl ProptestConfig {
        /// A config running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    /// Why a test case failed.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// The property did not hold.
        Fail(String),
        /// The case was rejected (not counted as a failure).
        Reject(String),
    }

    impl TestCaseError {
        /// A failure with the given reason.
        pub fn fail(reason: impl Into<String>) -> Self {
            TestCaseError::Fail(reason.into())
        }

        /// A rejection with the given reason.
        pub fn reject(reason: impl Into<String>) -> Self {
            TestCaseError::Reject(reason.into())
        }
    }

    impl std::fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            match self {
                TestCaseError::Fail(r) => write!(f, "{r}"),
                TestCaseError::Reject(r) => write!(f, "rejected: {r}"),
            }
        }
    }
}

/// The RNG handed to strategies.
pub type TestRng = SmallRng;

/// A generator of random values (no shrinking in this shim).
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Samples one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn sample(&self, rng: &mut TestRng) -> Self::Value {
        (**self).sample(rng)
    }
}

pub mod strategy {
    //! Strategy combinators.

    use super::{Strategy, TestRng};
    use rand::Rng;

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice among boxed strategies (`prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        /// A union over `options`; must be non-empty.
        ///
        /// # Panics
        ///
        /// Panics if `options` is empty.
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            self.options[i].sample(rng)
        }
    }

    macro_rules! range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f64);

    macro_rules! tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        )*};
    }

    tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

pub mod collection {
    //! Collection strategies.

    use super::{Strategy, TestRng};
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// A vector-length specification: a fixed size or a range of sizes.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        /// Inclusive lower bound.
        pub min: usize,
        /// Inclusive upper bound.
        pub max: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n }
        }
    }

    impl From<i32> for SizeRange {
        fn from(n: i32) -> Self {
            let n = usize::try_from(n).expect("vector size must be non-negative");
            SizeRange { min: n, max: n }
        }
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange {
                min: r.start,
                max: r.end - 1,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                min: *r.start(),
                max: *r.end(),
            }
        }
    }

    /// A strategy for `Vec`s of `element` values with a length drawn from
    /// `lengths` (a fixed `usize` or a range).
    pub fn vec<S: Strategy>(element: S, lengths: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            lengths: lengths.into(),
        }
    }

    /// See [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        lengths: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = rng.gen_range(self.lengths.min..=self.lengths.max);
            (0..len).map(|_| self.element.sample(rng)).collect()
        }
    }
}

/// Builds the deterministic RNG the `proptest!` expansion uses.
pub fn deterministic_rng() -> TestRng {
    SmallRng::seed_from_u64(0x5EED_CAFE_F00D_D00D)
}

pub mod prelude {
    //! The usual imports: `use proptest::prelude::*;`.

    pub use crate::strategy::Just;
    pub use crate::test_runner::{ProptestConfig, TestCaseError};
    pub use crate::Strategy;
    pub use crate::{
        prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, prop_oneof, proptest,
    };

    /// Alias so `prop::collection::vec(...)` works.
    pub mod prop {
        pub use crate::collection;
        pub use crate::strategy;
    }
}

/// Asserts a condition inside a `proptest!` body, returning a
/// [`test_runner::TestCaseError`] instead of panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Rejects the current case (not counted as a failure) when the
/// precondition does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
}

/// Uniform choice among strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(::std::boxed::Box::new($strategy) as ::std::boxed::Box<dyn $crate::Strategy<Value = _>>),+
        ])
    };
}

/// Defines property tests. Each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running the body over random samples.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr) $(
        $(#[$meta:meta])*
        fn $name:ident($($pat:pat in $strategy:expr),+ $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $config;
            let mut rng = $crate::deterministic_rng();
            let strategy = ($($strategy,)+);
            for case in 0..config.cases {
                let ($($pat,)+) = $crate::Strategy::sample(&strategy, &mut rng);
                #[allow(unused_mut)]
                let mut runner = ||
                    -> ::std::result::Result<(), $crate::test_runner::TestCaseError> {
                    $body
                    #[allow(unreachable_code)]
                    ::std::result::Result::Ok(())
                };
                match runner() {
                    ::std::result::Result::Ok(()) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Reject(_),
                    ) => {}
                    ::std::result::Result::Err(
                        $crate::test_runner::TestCaseError::Fail(reason),
                    ) => {
                        panic!(
                            "proptest case {case}/{} failed: {reason}",
                            config.cases
                        );
                    }
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0f64..=1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!((0.0..=1.0).contains(&y));
        }

        #[test]
        fn tuple_patterns_destructure((a, b) in (0u8..=4, 1usize..5)) {
            prop_assert!(a <= 4);
            prop_assert!((1..5).contains(&b));
        }

        #[test]
        fn vec_lengths_respect_range(v in crate::collection::vec(0u8..=1, 2..6)) {
            prop_assert!(v.len() >= 2 && v.len() < 6);
            prop_assert!(v.iter().all(|&b| b <= 1));
        }

        #[test]
        fn oneof_picks_only_arms(v in prop_oneof![Just(1u8), Just(3u8)]) {
            prop_assert!(v == 1u8 || v == 3u8);
        }
    }

    #[test]
    fn failing_property_panics_with_reason() {
        let result = std::panic::catch_unwind(|| {
            proptest! {
                fn always_fails(x in 0u8..=255) {
                    prop_assert!(u32::from(x) > 300, "x was {x}");
                }
            }
            always_fails();
        });
        assert!(result.is_err());
    }
}
