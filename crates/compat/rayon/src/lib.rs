//! Offline shim for `rayon`'s fork-join core, backed by a **persistent
//! worker pool**.
//!
//! Exposes [`join`], [`scope`], and [`current_num_threads`] with rayon's
//! semantics. Unlike the earlier `std::thread::scope`-based shim, the
//! workers are long-lived: the first fork-join call spawns one OS thread
//! per core (override with `RAYON_NUM_THREADS`), and every subsequent
//! `scope` hands its tasks to those threads over per-worker channels and
//! waits on a completion latch. Per-tick callers therefore pay a channel
//! send + latch wait per step instead of a `thread::spawn`/`join` pair
//! per task — which is what lets small-grid simulations win from
//! `Parallelism::Rayon` at all.
//!
//! Callers spawn **one task per worker**, not one per item — which is
//! also the right granularity for real rayon. The one API deviation:
//! [`Scope::spawn`] takes a zero-argument closure (`s.spawn(|| ...)`)
//! rather than rayon's `s.spawn(|scope| ...)`; migrating to the real
//! crate is a mechanical `||` → `|_|` edit.
//!
//! ## Determinism contract
//!
//! The pool adds **no scheduling nondeterminism observable through data**:
//!
//! - `scope` returns only after every spawned task has finished (the
//!   completion latch), so all writes made by tasks are visible — and
//!   complete — when it returns, exactly as with scoped threads.
//! - Tasks are dispatched round-robin (task *k* of a scope always runs on
//!   worker `k mod N`), so a fixed spawn order maps to a fixed
//!   worker assignment; but correctness must never depend on that —
//!   callers own disjoint data per task, which is what the simulators'
//!   shard splits guarantee and their Serial-vs-Rayon bit-identity tests
//!   verify.
//! - A panicking task is caught on the worker (the worker survives for
//!   the next scope) and the panic payload is rethrown on the caller's
//!   thread after all tasks of the scope have completed.
//!
//! ## Safety
//!
//! Handing a borrowing closure (`'scope`) to a `'static` worker thread
//! requires erasing its lifetime — the one `unsafe` block in this crate.
//! Soundness rests on the completion latch: the scope guard waits for
//! every task (even when the scope body panics) *before* the borrowed
//! frame can be left, so no task can observe its borrows dangling. This
//! is the same argument `std::thread::scope` makes, with the latch in
//! place of thread joins.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};
use std::thread;

/// The number of threads fork-join work is split across: the
/// `RAYON_NUM_THREADS` environment variable if set to a positive number
/// (the real crate honors it too), else the available hardware
/// parallelism. Cached: callers sit on per-tick hot paths.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| {
        if let Some(n) = std::env::var("RAYON_NUM_THREADS")
            .ok()
            .and_then(|v| v.parse::<usize>().ok())
            .filter(|&n| n > 0)
        {
            return n;
        }
        thread::available_parallelism().map_or(1, |n| n.get())
    })
}

/// A lifetime-erased task plus the latch it must release.
struct Job {
    task: Box<dyn FnOnce() + Send>,
    latch: Arc<Latch>,
}

/// Counts outstanding tasks of one scope; the scope blocks until zero.
/// Also carries the first panic payload captured by a worker.
struct Latch {
    outstanding: Mutex<usize>,
    done: Condvar,
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

impl Latch {
    fn new() -> Self {
        Latch {
            outstanding: Mutex::new(0),
            done: Condvar::new(),
            panic: Mutex::new(None),
        }
    }

    fn add_task(&self) {
        *self.outstanding.lock().expect("latch poisoned") += 1;
    }

    fn finish_task(&self) {
        let mut outstanding = self.outstanding.lock().expect("latch poisoned");
        *outstanding -= 1;
        if *outstanding == 0 {
            self.done.notify_all();
        }
    }

    fn wait(&self) {
        let mut outstanding = self.outstanding.lock().expect("latch poisoned");
        while *outstanding > 0 {
            outstanding = self.done.wait(outstanding).expect("latch poisoned");
        }
    }
}

thread_local! {
    /// Set on pool workers so nested fork-join (a deadlock: the inner
    /// scope's tasks would queue behind the outer task waiting on them)
    /// fails fast instead of hanging.
    static IS_POOL_WORKER: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// The process-wide worker pool: one long-lived thread per
/// [`current_num_threads`], each draining its own channel.
struct Pool {
    workers: Vec<Sender<Job>>,
    /// Round-robin dispatch cursor across scopes, so consecutive scopes
    /// with fewer tasks than workers still spread over the whole pool.
    next: AtomicUsize,
}

impl Pool {
    fn global() -> &'static Pool {
        static POOL: OnceLock<Pool> = OnceLock::new();
        POOL.get_or_init(|| {
            let workers = (0..current_num_threads())
                .map(|i| {
                    let (tx, rx) = channel::<Job>();
                    thread::Builder::new()
                        .name(format!("rayon-shim-{i}"))
                        .spawn(move || {
                            IS_POOL_WORKER.set(true);
                            for job in rx {
                                let result = catch_unwind(AssertUnwindSafe(job.task));
                                if let Err(payload) = result {
                                    let mut slot = job.latch.panic.lock().expect("latch poisoned");
                                    slot.get_or_insert(payload);
                                }
                                job.latch.finish_task();
                            }
                        })
                        .expect("spawn pool worker");
                    tx
                })
                .collect();
            Pool {
                workers,
                next: AtomicUsize::new(0),
            }
        })
    }

    fn dispatch(&self, job: Job) {
        let w = self.next.fetch_add(1, Ordering::Relaxed) % self.workers.len();
        self.workers[w]
            .send(job)
            .expect("pool workers live for the process lifetime");
    }
}

/// A scope in which borrowed-data tasks can be spawned onto the
/// persistent pool.
pub struct Scope<'scope, 'env: 'scope> {
    pool: &'static Pool,
    latch: Arc<Latch>,
    _marker: std::marker::PhantomData<&'scope mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `task` to run within the scope; the scope waits for it.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.latch.add_task();
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(task);
        // SAFETY: the task may borrow from `'scope`/`'env` frames, but the
        // scope guard ([`scope`]'s `LatchGuard`) waits on the latch before
        // those frames unwind — on normal return *and* on panic — so the
        // erased borrows strictly outlive every use.
        let erased: Box<dyn FnOnce() + Send + 'static> = unsafe { std::mem::transmute(boxed) };
        self.pool.dispatch(Job {
            task: erased,
            latch: Arc::clone(&self.latch),
        });
    }
}

/// Blocks on the latch when dropped — the soundness anchor: the scope
/// frame cannot be left (even by unwinding) while tasks still run.
struct LatchGuard<'a>(&'a Latch);

impl Drop for LatchGuard<'_> {
    fn drop(&mut self) {
        self.0.wait();
    }
}

/// Creates a fork-join scope on the persistent pool: all tasks spawned on
/// it complete before `scope` returns.
///
/// Must not be called from inside a pool task — the inner scope's tasks
/// would queue behind the outer task waiting on them and deadlock a
/// fully busy pool. This is checked: a nested call panics immediately
/// instead of hanging. (Real rayon supports nesting via work-stealing;
/// the simulators only fork from the main stepping thread. [`join`] has
/// the same restriction, being built on `scope`.)
///
/// # Panics
///
/// Panics if called from inside a pool task, or if a spawned task
/// panicked (the first payload is rethrown after all tasks of the scope
/// have completed).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    assert!(
        !IS_POOL_WORKER.get(),
        "rayon shim: nested fork-join on the persistent pool would deadlock \
         (scope/join called from inside a pool task)"
    );
    let latch = Arc::new(Latch::new());
    let result = {
        let guard = LatchGuard(&latch);
        let scope = Scope {
            pool: Pool::global(),
            latch: Arc::clone(&latch),
            _marker: std::marker::PhantomData,
        };
        let result = f(&scope);
        drop(guard); // waits for every task
        result
    };
    let payload = latch.panic.lock().expect("latch poisoned").take();
    if let Some(payload) = payload {
        std::panic::resume_unwind(payload);
    }
    result
}

/// Runs both closures, potentially in parallel (the second on the pool),
/// and returns both results.
///
/// # Panics
///
/// Panics if called from inside a pool task (see [`scope`], which this
/// is built on) or if either closure panics.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    let mut rb = None;
    let ra = scope(|s| {
        s.spawn(|| rb = Some(b()));
        a()
    });
    (ra, rb.expect("joined task completed by scope"))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_completes_all_tasks_over_borrowed_data() {
        let mut data = vec![0u64; 64];
        let workers = 4;
        let chunk = data.len().div_ceil(workers);
        scope(|s| {
            for (w, slice) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    for (i, x) in slice.iter_mut().enumerate() {
                        *x = (w * chunk + i) as u64;
                    }
                });
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn pool_threads_persist_across_scopes() {
        // Collect the worker thread ids over many scopes: they must come
        // from one small, stable set (long-lived threads), not grow with
        // the number of scopes as per-call spawning would.
        let ids = Mutex::new(HashSet::new());
        for _ in 0..50 {
            scope(|s| {
                for _ in 0..4 {
                    s.spawn(|| {
                        ids.lock().unwrap().insert(thread::current().id());
                    });
                }
            });
        }
        let distinct = ids.lock().unwrap().len();
        assert!(
            distinct <= current_num_threads(),
            "50 scopes × 4 tasks ran on {distinct} threads — workers are not persistent"
        );
    }

    #[test]
    fn oversubscribed_scopes_run_every_task() {
        // More tasks than workers: they queue per worker and all complete
        // before the scope returns.
        let counter = AtomicU64::new(0);
        scope(|s| {
            for _ in 0..current_num_threads() * 8 + 3 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(
            counter.load(Ordering::Relaxed),
            (current_num_threads() * 8 + 3) as u64
        );
    }

    #[test]
    fn task_panic_propagates_and_pool_survives() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| panic!("task boom"));
            });
        });
        assert!(result.is_err(), "scope must rethrow the task panic");
        // The worker that caught the panic still serves later scopes.
        let mut x = 0u64;
        scope(|s| s.spawn(|| x = 7));
        assert_eq!(x, 7);
    }

    #[test]
    fn nested_fork_join_fails_fast_instead_of_deadlocking() {
        let result = std::panic::catch_unwind(|| {
            scope(|s| {
                s.spawn(|| {
                    // A nested scope from inside a pool task must panic
                    // (caught, rethrown by the outer scope) — not hang.
                    scope(|inner| inner.spawn(|| {}));
                });
            });
        });
        assert!(result.is_err(), "nested scope must be rejected");
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
