//! Offline shim for `rayon`'s fork-join core.
//!
//! Exposes [`join`], [`scope`], and [`current_num_threads`] with rayon's
//! semantics, implemented over [`std::thread::scope`] (one OS thread per
//! spawned task instead of a work-stealing pool). Callers therefore spawn
//! **one task per worker**, not one per item — which is also the right
//! granularity for real rayon. The one API deviation: [`Scope::spawn`]
//! takes a zero-argument closure (`s.spawn(|| ...)`) rather than rayon's
//! `s.spawn(|scope| ...)`; migrating to the real crate is a mechanical
//! `||` → `|_|` edit.

#![forbid(unsafe_code)]

use std::sync::OnceLock;
use std::thread;

/// The number of threads fork-join work is split across. Cached: callers
/// sit on per-tick hot paths, and `available_parallelism` is a syscall.
pub fn current_num_threads() -> usize {
    static THREADS: OnceLock<usize> = OnceLock::new();
    *THREADS.get_or_init(|| thread::available_parallelism().map_or(1, |n| n.get()))
}

/// Runs both closures, potentially in parallel, and returns both results.
pub fn join<A, B, RA, RB>(a: A, b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    thread::scope(|s| {
        let hb = s.spawn(b);
        let ra = a();
        let rb = hb.join().expect("rayon shim: joined task panicked");
        (ra, rb)
    })
}

/// A scope in which borrowed-data tasks can be spawned.
pub struct Scope<'scope, 'env: 'scope> {
    inner: &'scope thread::Scope<'scope, 'env>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Spawns `task` to run within the scope; the scope waits for it.
    pub fn spawn<F>(&self, task: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        self.inner.spawn(task);
    }
}

/// Creates a fork-join scope: all tasks spawned on it complete before
/// `scope` returns.
///
/// # Panics
///
/// Panics if a spawned task panicked (the panic is propagated by
/// `std::thread::scope`).
pub fn scope<'env, F, R>(f: F) -> R
where
    F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
{
    thread::scope(|s| f(&Scope { inner: s }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn join_returns_both_results() {
        let (a, b) = join(|| 2 + 2, || "ok");
        assert_eq!(a, 4);
        assert_eq!(b, "ok");
    }

    #[test]
    fn scope_completes_all_tasks_over_borrowed_data() {
        let mut data = vec![0u64; 64];
        let workers = 4;
        let chunk = data.len().div_ceil(workers);
        scope(|s| {
            for (w, slice) in data.chunks_mut(chunk).enumerate() {
                s.spawn(move || {
                    for (i, x) in slice.iter_mut().enumerate() {
                        *x = (w * chunk + i) as u64;
                    }
                });
            }
        });
        for (i, &x) in data.iter().enumerate() {
            assert_eq!(x, i as u64);
        }
    }

    #[test]
    fn num_threads_is_positive() {
        assert!(current_num_threads() >= 1);
    }
}
