//! Offline shim for `criterion`.
//!
//! Provides the API shape the workspace's micro-benchmarks use —
//! [`Criterion`], benchmark groups, [`Bencher::iter`], [`black_box`],
//! [`criterion_group!`]/[`criterion_main!`] — backed by a simple
//! wall-clock harness: each benchmark is warmed up once, then timed for a
//! handful of samples whose mean/min are printed to stdout. No HTML
//! reports, no statistics beyond that; swap in the real crate when a
//! registry is reachable.

#![forbid(unsafe_code)]

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

/// Opaque-to-the-optimizer identity function.
pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

/// Work-rate annotation for a benchmark group.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
}

impl BenchmarkId {
    /// An id labeled `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl fmt::Display) -> Self {
        BenchmarkId {
            name: format!("{}/{}", name.into(), parameter),
        }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name)
    }
}

/// Times one benchmark body.
pub struct Bencher {
    samples: u32,
}

impl Bencher {
    /// Runs `body` once for warm-up, then `samples` timed runs, printing
    /// mean and minimum wall-clock time.
    pub fn iter<R>(&mut self, mut body: impl FnMut() -> R) {
        black_box(body());
        let mut total = Duration::ZERO;
        let mut best = Duration::MAX;
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(body());
            let elapsed = start.elapsed();
            total += elapsed;
            best = best.min(elapsed);
        }
        let mean = total / self.samples;
        println!(
            "    mean {mean:>12.3?}   min {best:>12.3?}   ({} samples)",
            self.samples
        );
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    samples: u32,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.samples = (n as u32).clamp(1, 1000);
        self
    }

    /// Accepted for API compatibility; the shim warms up with one run.
    pub fn warm_up_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Accepted for API compatibility; the shim times a fixed sample
    /// count instead of a wall-clock budget.
    pub fn measurement_time(&mut self, _d: Duration) -> &mut Self {
        self
    }

    /// Records the group's work rate (printed for context).
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        println!("  [throughput {throughput:?}]");
        self
    }

    /// Benchmarks `body` with a borrowed input.
    pub fn bench_with_input<I: ?Sized>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        body: impl FnMut(&mut Bencher, &I),
    ) -> &mut Self {
        let mut body = body;
        println!("  {}/{id}", self.name);
        let mut bencher = Bencher {
            samples: self.samples,
        };
        body(&mut bencher, input);
        self
    }

    /// Benchmarks `body`.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut body = body;
        println!("  {}/{id}", self.name);
        let mut bencher = Bencher {
            samples: self.samples,
        };
        body(&mut bencher);
        self
    }

    /// Ends the group.
    pub fn finish(&mut self) {}
}

/// The benchmark harness entry point.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name,
            samples: 10,
            _criterion: self,
        }
    }

    /// Benchmarks a single function outside a group.
    pub fn bench_function(
        &mut self,
        id: impl fmt::Display,
        body: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let mut body = body;
        println!("benchmark: {id}");
        let mut bencher = Bencher { samples: 10 };
        body(&mut bencher);
        self
    }
}

/// Declares a group of benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the benchmark `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
