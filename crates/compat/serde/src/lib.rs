//! Offline shim for `serde`.
//!
//! The container building this workspace has no route to a crates
//! registry, so this crate supplies exactly the surface the workspace
//! uses: the two trait names and their derives. The traits are blanket
//! markers — no code here serializes anything — which keeps every
//! `#[derive(Serialize, Deserialize)]` in the tree compiling unchanged,
//! ready for the real `serde` to be dropped in later.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}
