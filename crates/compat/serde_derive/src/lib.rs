//! Offline shim for the `serde_derive` proc-macro crate.
//!
//! The workspace derives `Serialize`/`Deserialize` on its public types so
//! downstream users can persist them, but nothing inside the workspace
//! performs serialization. The companion `serde` shim provides blanket
//! marker impls, so these derives only need to exist and emit nothing.
//! Replace both shims with the real crates when a registry is available.

use proc_macro::TokenStream;

/// No-op stand-in for `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op stand-in for `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
