//! Property-based tests of the core model and Algorithm 1.

use proptest::prelude::*;
use utilbp_core::{
    pressure, standard, GainPenalties, IntersectionView, PhaseDecision, QueueObservation,
    SignalController, Tick, Ticks, UtilBp, UtilBpConfig,
};

const W: u32 = 120;

/// A random observation for the standard four-way layout.
fn observation_strategy() -> impl Strategy<Value = (Vec<u32>, Vec<u32>)> {
    (
        proptest::collection::vec(0u32..=40, 12),
        proptest::collection::vec(0u32..=W, 4),
    )
}

fn build_view(
    layout: &utilbp_core::IntersectionLayout,
    movements: &[u32],
    outgoing: &[u32],
) -> QueueObservation {
    let mut obs = QueueObservation::zeros(layout);
    for (i, &q) in movements.iter().enumerate() {
        obs.set_movement(utilbp_core::LinkId::new(i as u16), q);
    }
    for (i, &q) in outgoing.iter().enumerate() {
        obs.set_outgoing(utilbp_core::OutgoingId::new(i as u8), q);
    }
    obs
}

proptest! {
    /// Eq. 8's three cases are mutually exclusive and exhaustive, and the
    /// ordinary case is always strictly better than both penalties.
    #[test]
    fn util_gain_case_analysis((q_in, q_out) in (0u32..=200, 0u32..=200)) {
        let p = GainPenalties::PAPER;
        let g = pressure::util_link_gain(q_in, q_out.min(W), W, W, 1.0, p);
        if q_out.min(W) >= W {
            prop_assert_eq!(g, p.beta());
        } else if q_in == 0 {
            prop_assert_eq!(g, p.alpha());
        } else {
            prop_assert!(g > 0.0, "ordinary gain must be positive, got {}", g);
            prop_assert!(g > p.alpha());
            prop_assert!(g > p.beta());
        }
    }

    /// The ordinary gain is monotone: more upstream queue never lowers it,
    /// more downstream occupancy never raises it.
    #[test]
    fn util_gain_monotonicity(q_in in 1u32..=40, q_out in 0u32..W - 1, bump in 1u32..=10) {
        let p = GainPenalties::PAPER;
        let base = pressure::util_link_gain(q_in, q_out, W, W, 1.0, p);
        let more_up = pressure::util_link_gain(q_in + bump, q_out, W, W, 1.0, p);
        prop_assert!(more_up >= base);
        let more_down =
            pressure::util_link_gain(q_in, (q_out + bump).min(W - 1), W, W, 1.0, p);
        prop_assert!(more_down <= base);
    }

    /// The original gain (Eq. 5) is never negative and is zero whenever
    /// downstream dominates upstream.
    #[test]
    fn original_gain_sign(q_in in 0u32..=200, q_out in 0u32..=200, mu in 0.1f64..4.0) {
        let g = pressure::original_link_gain(q_in, q_out, mu);
        prop_assert!(g >= 0.0);
        if q_out >= q_in {
            prop_assert_eq!(g, 0.0);
        } else {
            prop_assert!((g - (q_in - q_out) as f64 * mu).abs() < 1e-9);
        }
    }

    /// Whatever the observation, the controller returns either a valid
    /// phase of the layout or a transition — never junk, never a panic.
    #[test]
    fn decide_is_total((movements, outgoing) in observation_strategy()) {
        let layout = standard::four_way(W, 1.0);
        let obs = build_view(&layout, &movements, &outgoing);
        let mut ctrl = UtilBp::paper();
        let view = IntersectionView::new(&layout, &obs).unwrap();
        match ctrl.decide(&view, Tick::ZERO) {
            PhaseDecision::Control(p) => prop_assert!(p.index() < layout.num_phases()),
            PhaseDecision::Transition => {}
        }
    }

    /// Single-instant work conservation: if any link is servable, the
    /// phase UTIL-BP picks from a cold start has at least one servable
    /// link.
    #[test]
    fn first_decision_is_work_conserving((movements, outgoing) in observation_strategy()) {
        let layout = standard::four_way(W, 1.0);
        let obs = build_view(&layout, &movements, &outgoing);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let any_servable = layout.link_ids().any(|l| view.link_servable(l));
        let mut ctrl = UtilBp::paper();
        let decision = ctrl.decide(&view, Tick::ZERO);
        if any_servable {
            let PhaseDecision::Control(p) = decision else {
                return Err(TestCaseError::fail("cold start must not transition"));
            };
            let serves = layout.phase(p).links().iter().any(|&l| view.link_servable(l));
            prop_assert!(serves, "picked {p} which serves nothing");
        }
    }

    /// Every amber the controller starts lasts exactly `∆k` ticks, and is
    /// followed by a control phase.
    #[test]
    fn transitions_last_exactly_delta_k(
        seq in proptest::collection::vec(observation_strategy(), 3..20),
        delta in 1u64..=6,
    ) {
        let layout = standard::four_way(W, 1.0);
        let mut ctrl = UtilBp::new(UtilBpConfig {
            transition: Ticks::new(delta),
            ..UtilBpConfig::default()
        });
        let mut k = 0u64;
        let mut amber_run = 0u64;
        for (movements, outgoing) in seq {
            // Hold each observation for enough ticks to cross an amber.
            let obs = build_view(&layout, &movements, &outgoing);
            for _ in 0..=delta {
                let view = IntersectionView::new(&layout, &obs).unwrap();
                match ctrl.decide(&view, Tick::new(k)) {
                    PhaseDecision::Transition => amber_run += 1,
                    PhaseDecision::Control(_) => {
                        if amber_run > 0 {
                            prop_assert_eq!(
                                amber_run, delta,
                                "amber must last exactly ∆k"
                            );
                        }
                        amber_run = 0;
                    }
                }
                k += 1;
            }
        }
    }

    /// The controller is a pure function of its state and inputs: two
    /// instances fed the same sequence agree tick by tick.
    #[test]
    fn controller_is_deterministic(
        seq in proptest::collection::vec(observation_strategy(), 1..30),
    ) {
        let layout = standard::four_way(W, 1.0);
        let mut a = UtilBp::paper();
        let mut b = UtilBp::paper();
        for (k, (movements, outgoing)) in seq.into_iter().enumerate() {
            let obs = build_view(&layout, &movements, &outgoing);
            let view = IntersectionView::new(&layout, &obs).unwrap();
            let view2 = IntersectionView::new(&layout, &obs).unwrap();
            prop_assert_eq!(
                a.decide(&view, Tick::new(k as u64)),
                b.decide(&view2, Tick::new(k as u64))
            );
        }
    }

    /// Incoming totals (Eq. 1) always equal the sum of the movement
    /// queues, for any observation.
    #[test]
    fn eq1_total_is_movement_sum((movements, outgoing) in observation_strategy()) {
        let layout = standard::four_way(W, 1.0);
        let obs = build_view(&layout, &movements, &outgoing);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        for arm in layout.incoming_ids() {
            let expected: u32 = layout
                .links_from(arm)
                .iter()
                .map(|&l| obs.movement(l))
                .sum();
            prop_assert_eq!(view.incoming_total(arm), expected);
        }
    }

    /// Phase scores (Eq. 10/11) are consistent: the max never exceeds the
    /// total minus the other links' minimum contributions, and the argmax
    /// link is a member of the phase.
    #[test]
    fn phase_scores_are_consistent((movements, outgoing) in observation_strategy()) {
        let layout = standard::four_way(W, 1.0);
        let obs = build_view(&layout, &movements, &outgoing);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let ctrl = UtilBp::paper();
        for score in ctrl.phase_scores(&view) {
            let links = layout.phase(score.phase).links();
            prop_assert!(links.contains(&score.argmax));
            let manual_total: f64 = links
                .iter()
                .map(|&l| pressure::link_gain(&view, l, GainPenalties::PAPER))
                .sum();
            prop_assert!((score.total - manual_total).abs() < 1e-9);
            let manual_max = links
                .iter()
                .map(|&l| pressure::link_gain(&view, l, GainPenalties::PAPER))
                .fold(f64::NEG_INFINITY, f64::max);
            prop_assert!((score.max - manual_max).abs() < 1e-9);
        }
    }
}
