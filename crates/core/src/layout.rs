//! Static structure of a signalized intersection (Section II-A of the paper).
//!
//! An [`IntersectionLayout`] is the directed-graph model of one junction:
//! incoming roads, outgoing roads with finite capacities `W_{i'}`, feasible
//! links `L_i^{i'}` with maximum service rates `µ_i^{i'}`, and the set of
//! control phases `C = {c_j}` (each a compatible subset of links). The layout
//! is immutable once built; per-instant queue state lives in
//! [`QueueObservation`](crate::QueueObservation).

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{IncomingId, LinkId, OutgoingId, PhaseId};

/// One feasible link `L_i^{i'}`: a turning movement from an incoming road to
/// an outgoing road, with its maximum service rate `µ_i^{i'}` in vehicles per
/// mini-slot.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Link {
    from: IncomingId,
    to: OutgoingId,
    service_rate: f64,
}

impl Link {
    /// The incoming road `N_i` the link serves.
    pub const fn from(&self) -> IncomingId {
        self.from
    }

    /// The outgoing road `N_{i'}` the link feeds.
    pub const fn to(&self) -> OutgoingId {
        self.to
    }

    /// Maximum service rate `µ_i^{i'}` (vehicles per mini-slot).
    pub const fn service_rate(&self) -> f64 {
        self.service_rate
    }
}

impl fmt::Display for Link {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L({}->{})", self.from, self.to)
    }
}

/// One control phase `c_j`: the compatible set of links it activates.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Phase {
    links: Vec<LinkId>,
}

impl Phase {
    /// The links activated by this phase.
    pub fn links(&self) -> &[LinkId] {
        &self.links
    }

    /// Returns `true` if the phase activates `link`.
    pub fn activates(&self, link: LinkId) -> bool {
        self.links.contains(&link)
    }
}

/// Errors produced while building or validating an [`IntersectionLayout`].
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LayoutError {
    /// The layout declares no incoming roads.
    NoIncomingRoads,
    /// The layout declares no outgoing roads.
    NoOutgoingRoads,
    /// The layout declares no control phases (the controller would have
    /// nothing to select).
    NoPhases,
    /// A link references an incoming road outside the declared range.
    UnknownIncoming(IncomingId),
    /// A link references an outgoing road outside the declared range.
    UnknownOutgoing(OutgoingId),
    /// Two links share the same (incoming, outgoing) pair.
    DuplicateLink(IncomingId, OutgoingId),
    /// A link's maximum service rate is not strictly positive and finite.
    InvalidServiceRate(f64),
    /// An outgoing road's capacity is zero.
    ZeroCapacity(OutgoingId),
    /// A phase references a link outside the link table.
    UnknownLink(LinkId),
    /// A phase activates no links (the transition phase `c0` is modeled
    /// separately and must not be listed in `C`).
    EmptyPhase(usize),
    /// A phase lists the same link twice.
    DuplicateLinkInPhase(usize, LinkId),
}

impl fmt::Display for LayoutError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LayoutError::NoIncomingRoads => write!(f, "layout has no incoming roads"),
            LayoutError::NoOutgoingRoads => write!(f, "layout has no outgoing roads"),
            LayoutError::NoPhases => write!(f, "layout has no control phases"),
            LayoutError::UnknownIncoming(id) => {
                write!(f, "link references unknown incoming road {id}")
            }
            LayoutError::UnknownOutgoing(id) => {
                write!(f, "link references unknown outgoing road {id}")
            }
            LayoutError::DuplicateLink(i, o) => {
                write!(f, "duplicate link from {i} to {o}")
            }
            LayoutError::InvalidServiceRate(mu) => {
                write!(f, "service rate {mu} is not strictly positive and finite")
            }
            LayoutError::ZeroCapacity(id) => {
                write!(f, "outgoing road {id} has zero capacity")
            }
            LayoutError::UnknownLink(id) => write!(f, "phase references unknown link {id}"),
            LayoutError::EmptyPhase(j) => write!(f, "phase {j} activates no links"),
            LayoutError::DuplicateLinkInPhase(j, id) => {
                write!(f, "phase {j} lists link {id} more than once")
            }
        }
    }
}

impl Error for LayoutError {}

/// Immutable structure of one signalized intersection.
///
/// Build a layout with [`IntersectionLayout::builder`] or use the paper's
/// standard four-approach junction from
/// [`standard::four_way`](crate::standard::four_way).
///
/// # Examples
///
/// A minimal junction with one movement and one phase:
///
/// ```
/// use utilbp_core::{IntersectionLayout, IncomingId, OutgoingId};
///
/// # fn main() -> Result<(), utilbp_core::LayoutError> {
/// let mut b = IntersectionLayout::builder();
/// let i = b.add_incoming();
/// let o = b.add_outgoing(120);
/// let l = b.add_link(i, o, 1.0);
/// b.add_phase(&[l]);
/// let layout = b.build()?;
/// assert_eq!(layout.num_links(), 1);
/// assert_eq!(layout.max_capacity(), 120); // W*
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IntersectionLayout {
    num_incoming: usize,
    /// Capacity `W_{i'}` of each outgoing road, indexed by `OutgoingId`.
    capacities: Vec<u32>,
    links: Vec<Link>,
    phases: Vec<Phase>,
    /// `W* = max_{i'} W_{i'}` (Eq. 7), cached at build time.
    max_capacity: u32,
    /// Links grouped by incoming road, for per-road pressure (Eq. 5).
    links_by_incoming: Vec<Vec<LinkId>>,
}

impl IntersectionLayout {
    /// Starts building a layout.
    pub fn builder() -> IntersectionLayoutBuilder {
        IntersectionLayoutBuilder::default()
    }

    /// Number of incoming roads `|N_I|`.
    pub fn num_incoming(&self) -> usize {
        self.num_incoming
    }

    /// Number of outgoing roads `|N_O|`.
    pub fn num_outgoing(&self) -> usize {
        self.capacities.len()
    }

    /// Number of feasible links `|L|`.
    pub fn num_links(&self) -> usize {
        self.links.len()
    }

    /// Number of control phases `|C|` (excluding the transition phase `c0`).
    pub fn num_phases(&self) -> usize {
        self.phases.len()
    }

    /// The link table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this layout.
    pub fn link(&self, id: LinkId) -> &Link {
        &self.links[id.index()]
    }

    /// The phase table entry for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this layout.
    pub fn phase(&self, id: PhaseId) -> &Phase {
        &self.phases[id.index()]
    }

    /// Capacity `W_{i'}` of an outgoing road.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this layout.
    pub fn capacity(&self, id: OutgoingId) -> u32 {
        self.capacities[id.index()]
    }

    /// `W* = max_{i'} W_{i'}` (Eq. 7 of the paper).
    pub fn max_capacity(&self) -> u32 {
        self.max_capacity
    }

    /// Iterates over all link ids in table order.
    pub fn link_ids(&self) -> impl Iterator<Item = LinkId> + '_ {
        (0..self.links.len()).map(|i| LinkId::new(i as u16))
    }

    /// Iterates over all phase ids in table order.
    pub fn phase_ids(&self) -> impl Iterator<Item = PhaseId> + '_ {
        (0..self.phases.len()).map(|i| PhaseId::new(i as u8))
    }

    /// Iterates over all outgoing road ids in table order.
    pub fn outgoing_ids(&self) -> impl Iterator<Item = OutgoingId> + '_ {
        (0..self.capacities.len()).map(|i| OutgoingId::new(i as u8))
    }

    /// Iterates over all incoming road ids in table order.
    pub fn incoming_ids(&self) -> impl Iterator<Item = IncomingId> + '_ {
        (0..self.num_incoming).map(|i| IncomingId::new(i as u8))
    }

    /// The links departing from incoming road `id` (the movements whose
    /// queues sum to the paper's `q_i`, Eq. 1).
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range for this layout.
    pub fn links_from(&self, id: IncomingId) -> &[LinkId] {
        &self.links_by_incoming[id.index()]
    }

    /// Finds the link from `from` to `to`, if it is feasible.
    pub fn find_link(&self, from: IncomingId, to: OutgoingId) -> Option<LinkId> {
        self.links
            .iter()
            .position(|l| l.from == from && l.to == to)
            .map(|i| LinkId::new(i as u16))
    }
}

/// Incremental builder for [`IntersectionLayout`] (see
/// [`IntersectionLayout::builder`]).
#[derive(Debug, Clone, Default)]
pub struct IntersectionLayoutBuilder {
    num_incoming: usize,
    capacities: Vec<u32>,
    links: Vec<Link>,
    phases: Vec<Phase>,
}

impl IntersectionLayoutBuilder {
    /// Declares a new incoming road and returns its id.
    pub fn add_incoming(&mut self) -> IncomingId {
        let id = IncomingId::new(self.num_incoming as u8);
        self.num_incoming += 1;
        id
    }

    /// Declares a new outgoing road with capacity `W` and returns its id.
    pub fn add_outgoing(&mut self, capacity: u32) -> OutgoingId {
        let id = OutgoingId::new(self.capacities.len() as u8);
        self.capacities.push(capacity);
        id
    }

    /// Declares a feasible link from `from` to `to` with maximum service
    /// rate `service_rate` (vehicles per mini-slot) and returns its id.
    pub fn add_link(&mut self, from: IncomingId, to: OutgoingId, service_rate: f64) -> LinkId {
        let id = LinkId::new(self.links.len() as u16);
        self.links.push(Link {
            from,
            to,
            service_rate,
        });
        id
    }

    /// Declares a control phase activating `links` and returns its id.
    pub fn add_phase(&mut self, links: &[LinkId]) -> PhaseId {
        let id = PhaseId::new(self.phases.len() as u8);
        self.phases.push(Phase {
            links: links.to_vec(),
        });
        id
    }

    /// Validates the accumulated structure and produces the layout.
    ///
    /// # Errors
    ///
    /// Returns a [`LayoutError`] if any road, link, or phase reference is
    /// inconsistent; see the error variants for the individual conditions.
    pub fn build(&self) -> Result<IntersectionLayout, LayoutError> {
        if self.num_incoming == 0 {
            return Err(LayoutError::NoIncomingRoads);
        }
        if self.capacities.is_empty() {
            return Err(LayoutError::NoOutgoingRoads);
        }
        if self.phases.is_empty() {
            return Err(LayoutError::NoPhases);
        }
        for (idx, &w) in self.capacities.iter().enumerate() {
            if w == 0 {
                return Err(LayoutError::ZeroCapacity(OutgoingId::new(idx as u8)));
            }
        }
        for (idx, link) in self.links.iter().enumerate() {
            if link.from.index() >= self.num_incoming {
                return Err(LayoutError::UnknownIncoming(link.from));
            }
            if link.to.index() >= self.capacities.len() {
                return Err(LayoutError::UnknownOutgoing(link.to));
            }
            if !(link.service_rate.is_finite() && link.service_rate > 0.0) {
                return Err(LayoutError::InvalidServiceRate(link.service_rate));
            }
            if self.links[..idx]
                .iter()
                .any(|other| other.from == link.from && other.to == link.to)
            {
                return Err(LayoutError::DuplicateLink(link.from, link.to));
            }
        }
        for (j, phase) in self.phases.iter().enumerate() {
            if phase.links.is_empty() {
                return Err(LayoutError::EmptyPhase(j));
            }
            for (pos, &lid) in phase.links.iter().enumerate() {
                if lid.index() >= self.links.len() {
                    return Err(LayoutError::UnknownLink(lid));
                }
                if phase.links[..pos].contains(&lid) {
                    return Err(LayoutError::DuplicateLinkInPhase(j, lid));
                }
            }
        }

        let mut links_by_incoming = vec![Vec::new(); self.num_incoming];
        for (idx, link) in self.links.iter().enumerate() {
            links_by_incoming[link.from.index()].push(LinkId::new(idx as u16));
        }
        let max_capacity = self.capacities.iter().copied().max().unwrap_or(0);

        Ok(IntersectionLayout {
            num_incoming: self.num_incoming,
            capacities: self.capacities.clone(),
            links: self.links.clone(),
            phases: self.phases.clone(),
            max_capacity,
            links_by_incoming,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn two_by_two() -> IntersectionLayoutBuilder {
        let mut b = IntersectionLayout::builder();
        let i0 = b.add_incoming();
        let i1 = b.add_incoming();
        let o0 = b.add_outgoing(100);
        let o1 = b.add_outgoing(120);
        let l0 = b.add_link(i0, o0, 1.0);
        let l1 = b.add_link(i0, o1, 1.0);
        let l2 = b.add_link(i1, o0, 0.5);
        b.add_phase(&[l0, l1]);
        b.add_phase(&[l2]);
        b
    }

    #[test]
    fn builds_valid_layout() {
        let layout = two_by_two().build().expect("layout is valid");
        assert_eq!(layout.num_incoming(), 2);
        assert_eq!(layout.num_outgoing(), 2);
        assert_eq!(layout.num_links(), 3);
        assert_eq!(layout.num_phases(), 2);
        assert_eq!(layout.max_capacity(), 120);
        assert_eq!(layout.capacity(OutgoingId::new(0)), 100);
        assert_eq!(layout.links_from(IncomingId::new(0)).len(), 2);
        assert_eq!(layout.links_from(IncomingId::new(1)).len(), 1);
    }

    #[test]
    fn find_link_locates_feasible_movements() {
        let layout = two_by_two().build().unwrap();
        let found = layout.find_link(IncomingId::new(1), OutgoingId::new(0));
        assert_eq!(found, Some(LinkId::new(2)));
        assert_eq!(
            layout.find_link(IncomingId::new(1), OutgoingId::new(1)),
            None
        );
    }

    #[test]
    fn rejects_empty_structures() {
        assert_eq!(
            IntersectionLayout::builder().build().unwrap_err(),
            LayoutError::NoIncomingRoads
        );

        let mut b = IntersectionLayout::builder();
        b.add_incoming();
        assert_eq!(b.build().unwrap_err(), LayoutError::NoOutgoingRoads);

        let mut b = IntersectionLayout::builder();
        b.add_incoming();
        b.add_outgoing(10);
        assert_eq!(b.build().unwrap_err(), LayoutError::NoPhases);
    }

    #[test]
    fn rejects_dangling_references() {
        let mut b = IntersectionLayout::builder();
        let _ = b.add_incoming();
        let o = b.add_outgoing(10);
        b.add_link(IncomingId::new(9), o, 1.0);
        b.add_phase(&[LinkId::new(0)]);
        assert_eq!(
            b.build().unwrap_err(),
            LayoutError::UnknownIncoming(IncomingId::new(9))
        );

        let mut b = IntersectionLayout::builder();
        let i = b.add_incoming();
        b.add_outgoing(10);
        b.add_link(i, OutgoingId::new(7), 1.0);
        b.add_phase(&[LinkId::new(0)]);
        assert_eq!(
            b.build().unwrap_err(),
            LayoutError::UnknownOutgoing(OutgoingId::new(7))
        );

        let mut b = IntersectionLayout::builder();
        let i = b.add_incoming();
        let o = b.add_outgoing(10);
        b.add_link(i, o, 1.0);
        b.add_phase(&[LinkId::new(5)]);
        assert_eq!(
            b.build().unwrap_err(),
            LayoutError::UnknownLink(LinkId::new(5))
        );
        let _ = i;
    }

    #[test]
    fn rejects_bad_rates_capacities_and_duplicates() {
        let mut b = IntersectionLayout::builder();
        let i = b.add_incoming();
        let o = b.add_outgoing(10);
        b.add_link(i, o, 0.0);
        b.add_phase(&[LinkId::new(0)]);
        assert_eq!(b.build().unwrap_err(), LayoutError::InvalidServiceRate(0.0));

        let mut b = IntersectionLayout::builder();
        let i = b.add_incoming();
        let o = b.add_outgoing(0);
        b.add_link(i, o, 1.0);
        b.add_phase(&[LinkId::new(0)]);
        assert_eq!(
            b.build().unwrap_err(),
            LayoutError::ZeroCapacity(OutgoingId::new(0))
        );

        let mut b = IntersectionLayout::builder();
        let i = b.add_incoming();
        let o = b.add_outgoing(10);
        let l0 = b.add_link(i, o, 1.0);
        b.add_link(i, o, 1.0);
        b.add_phase(&[l0]);
        assert_eq!(b.build().unwrap_err(), LayoutError::DuplicateLink(i, o));
    }

    #[test]
    fn rejects_degenerate_phases() {
        let mut b = IntersectionLayout::builder();
        let i = b.add_incoming();
        let o = b.add_outgoing(10);
        b.add_link(i, o, 1.0);
        b.add_phase(&[]);
        assert_eq!(b.build().unwrap_err(), LayoutError::EmptyPhase(0));

        let mut b = IntersectionLayout::builder();
        let i = b.add_incoming();
        let o = b.add_outgoing(10);
        let l = b.add_link(i, o, 1.0);
        b.add_phase(&[l, l]);
        assert_eq!(
            b.build().unwrap_err(),
            LayoutError::DuplicateLinkInPhase(0, l)
        );
    }

    #[test]
    fn error_display_is_informative() {
        let err = LayoutError::DuplicateLink(IncomingId::new(1), OutgoingId::new(2));
        assert!(err.to_string().contains("duplicate link"));
        let err = LayoutError::InvalidServiceRate(-1.0);
        assert!(err.to_string().contains("-1"));
    }

    #[test]
    fn phase_activation_queries() {
        let layout = two_by_two().build().unwrap();
        let p0 = layout.phase(PhaseId::new(0));
        assert!(p0.activates(LinkId::new(0)));
        assert!(p0.activates(LinkId::new(1)));
        assert!(!p0.activates(LinkId::new(2)));
        assert_eq!(p0.links().len(), 2);
    }
}
