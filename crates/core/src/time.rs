//! Discrete time: instants ([`Tick`]) and durations ([`Ticks`]).
//!
//! The paper models the intersection as a discrete-time system monitored at
//! instants `k` (its "mini-slots"). One tick corresponds to one mini-slot of
//! wall-clock length `Δt` (1 s in all the paper's experiments); the mapping
//! from ticks to seconds is owned by the simulator, not by this crate.

use std::fmt;
use std::ops::{Add, AddAssign, Mul, Sub};

use serde::{Deserialize, Serialize};

/// A discrete time instant `k` (the paper's mini-slot index).
///
/// # Examples
///
/// ```
/// use utilbp_core::{Tick, Ticks};
///
/// let start = Tick::ZERO;
/// let amber_end = start + Ticks::new(4);
/// assert!(start < amber_end);
/// assert_eq!(amber_end - start, Ticks::new(4));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Tick(u64);

impl Tick {
    /// The first instant of a simulation.
    pub const ZERO: Tick = Tick(0);

    /// Creates an instant from a raw mini-slot index.
    pub const fn new(index: u64) -> Self {
        Tick(index)
    }

    /// Returns the raw mini-slot index.
    pub const fn index(self) -> u64 {
        self.0
    }

    /// Returns the next instant (`k + 1`).
    #[must_use]
    pub const fn next(self) -> Tick {
        Tick(self.0 + 1)
    }

    /// Duration elapsed since `earlier`, saturating at zero if `earlier`
    /// is in the future.
    #[must_use]
    pub const fn saturating_since(self, earlier: Tick) -> Ticks {
        Ticks(self.0.saturating_sub(earlier.0))
    }
}

impl fmt::Display for Tick {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "k={}", self.0)
    }
}

/// A duration expressed in mini-slots.
///
/// # Examples
///
/// ```
/// use utilbp_core::Ticks;
///
/// let amber = Ticks::new(4);
/// assert_eq!(amber.count(), 4);
/// assert_eq!(amber * 2, Ticks::new(8));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Ticks(u64);

impl Ticks {
    /// The empty duration.
    pub const ZERO: Ticks = Ticks(0);

    /// A single mini-slot.
    pub const ONE: Ticks = Ticks(1);

    /// Creates a duration of `count` mini-slots.
    pub const fn new(count: u64) -> Self {
        Ticks(count)
    }

    /// Returns the number of mini-slots in this duration.
    pub const fn count(self) -> u64 {
        self.0
    }

    /// Returns `true` if the duration is zero.
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }
}

impl fmt::Display for Ticks {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} ticks", self.0)
    }
}

impl Add<Ticks> for Tick {
    type Output = Tick;

    fn add(self, rhs: Ticks) -> Tick {
        Tick(self.0 + rhs.0)
    }
}

impl AddAssign<Ticks> for Tick {
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub<Tick> for Tick {
    type Output = Ticks;

    /// # Panics
    ///
    /// Panics in debug builds if `rhs` is later than `self`; use
    /// [`Tick::saturating_since`] when the ordering is not statically known.
    fn sub(self, rhs: Tick) -> Ticks {
        debug_assert!(rhs.0 <= self.0, "tick subtraction underflow");
        Ticks(self.0 - rhs.0)
    }
}

impl Add for Ticks {
    type Output = Ticks;

    fn add(self, rhs: Ticks) -> Ticks {
        Ticks(self.0 + rhs.0)
    }
}

impl AddAssign for Ticks {
    fn add_assign(&mut self, rhs: Ticks) {
        self.0 += rhs.0;
    }
}

impl Sub for Ticks {
    type Output = Ticks;

    fn sub(self, rhs: Ticks) -> Ticks {
        Ticks(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Ticks {
    type Output = Ticks;

    fn mul(self, rhs: u64) -> Ticks {
        Ticks(self.0 * rhs)
    }
}

impl From<u64> for Ticks {
    fn from(count: u64) -> Self {
        Ticks(count)
    }
}

impl From<u64> for Tick {
    fn from(index: u64) -> Self {
        Tick(index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_arithmetic_round_trips() {
        let t = Tick::new(10);
        assert_eq!((t + Ticks::new(5)).index(), 15);
        assert_eq!(Tick::new(15) - t, Ticks::new(5));
        assert_eq!(t.next(), Tick::new(11));
    }

    #[test]
    fn saturating_since_clamps_to_zero() {
        let early = Tick::new(3);
        let late = Tick::new(9);
        assert_eq!(late.saturating_since(early), Ticks::new(6));
        assert_eq!(early.saturating_since(late), Ticks::ZERO);
    }

    #[test]
    fn ticks_arithmetic() {
        assert_eq!(Ticks::new(3) + Ticks::new(4), Ticks::new(7));
        assert_eq!(Ticks::new(4) - Ticks::new(6), Ticks::ZERO);
        assert_eq!(Ticks::new(4) * 3, Ticks::new(12));
        assert!(Ticks::ZERO.is_zero());
        assert!(!Ticks::ONE.is_zero());
    }

    #[test]
    fn ordering_matches_index_order() {
        assert!(Tick::new(1) < Tick::new(2));
        assert!(Ticks::new(1) < Ticks::new(2));
    }

    #[test]
    fn display_is_nonempty() {
        assert_eq!(Tick::new(7).to_string(), "k=7");
        assert_eq!(Ticks::new(7).to_string(), "7 ticks");
    }

    #[test]
    fn conversions_from_u64() {
        assert_eq!(Tick::from(4u64), Tick::new(4));
        assert_eq!(Ticks::from(4u64), Ticks::new(4));
    }
}
