//! The controller abstraction: a state-feedback law `c(k) = φ(Q(k))`.
//!
//! Every signal controller in this workspace — the paper's UTIL-BP and all
//! the baselines — implements [`SignalController`]: a stateful,
//! intersection-local decision function invoked once per mini-slot with the
//! current queue observation. Decentralization is structural: the only
//! inputs are the local [`IntersectionView`] and the global clock.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::PhaseId;
use crate::observation::IntersectionView;
use crate::state::{StateError, StateReader, StateWriter};
use crate::time::Tick;

/// The controller's output at instant `k`: either a control phase `c_j` or
/// the transition (amber) phase `c0`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum PhaseDecision {
    /// Apply control phase `c_j`: its links are activated, vehicles may be
    /// served.
    Control(PhaseId),
    /// Apply the transition phase `c0 = ∅`: the amber light is on, no links
    /// are activated, vehicles already inside the junction clear.
    Transition,
}

impl PhaseDecision {
    /// Returns the control phase, or `None` during transition.
    pub const fn phase(self) -> Option<PhaseId> {
        match self {
            PhaseDecision::Control(p) => Some(p),
            PhaseDecision::Transition => None,
        }
    }

    /// Returns `true` during the transition (amber) phase.
    pub const fn is_transition(self) -> bool {
        matches!(self, PhaseDecision::Transition)
    }

    /// The paper's plotting convention for phase traces (Figs. 3–4):
    /// transition is 0, control phases are `1..=|C|`.
    pub const fn trace_value(self) -> u8 {
        match self {
            PhaseDecision::Transition => 0,
            PhaseDecision::Control(p) => p.index() as u8 + 1,
        }
    }

    /// Encodes the decision as one state word (the same 0 / `j+1`
    /// numbering as [`trace_value`](Self::trace_value), widened) for
    /// checkpoint streams.
    pub const fn state_word(self) -> u64 {
        self.trace_value() as u64
    }

    /// Decodes a word written by [`state_word`](Self::state_word).
    ///
    /// # Errors
    ///
    /// [`StateError::Invalid`] when the word is not a valid encoding.
    pub fn from_state_word(word: u64) -> Result<Self, StateError> {
        match word {
            0 => Ok(PhaseDecision::Transition),
            v if v <= u8::MAX as u64 => Ok(PhaseDecision::Control(PhaseId::new(v as u8 - 1))),
            _ => Err(StateError::Invalid {
                what: "phase decision",
                word,
            }),
        }
    }
}

impl fmt::Display for PhaseDecision {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PhaseDecision::Control(p) => write!(f, "{p}"),
            PhaseDecision::Transition => write!(f, "c0"),
        }
    }
}

/// A traffic-signal controller for one intersection.
///
/// Implementations are invoked once per mini-slot (`Δt`), in monotonically
/// non-decreasing `now` order, and return the phase to apply during
/// `[now, now+1)`. They may keep internal state (current phase, slot and
/// transition timers) but must base decisions only on the provided view —
/// that restriction is what makes back-pressure control decentralized.
///
/// # Examples
///
/// A degenerate controller that always applies phase `c1`:
///
/// ```
/// use utilbp_core::{
///     IntersectionView, PhaseDecision, PhaseId, SignalController, Tick,
/// };
///
/// struct AlwaysC1;
///
/// impl SignalController for AlwaysC1 {
///     fn decide(&mut self, _view: &IntersectionView<'_>, _now: Tick) -> PhaseDecision {
///         PhaseDecision::Control(PhaseId::new(0))
///     }
///     fn reset(&mut self) {}
///     fn name(&self) -> &'static str {
///         "always-c1"
///     }
/// }
/// ```
///
/// Controllers must be [`Send`] so the simulators' shard-parallel decide
/// phase (see [`Parallelism`](crate::Parallelism)) can move each
/// controller to a worker thread; they never need `Sync` — each is
/// exclusively owned by its intersection's shard.
pub trait SignalController: Send {
    /// Decides the phase for the mini-slot starting at `now`.
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision;

    /// Clears all internal state, returning the controller to its initial
    /// configuration (as if freshly constructed).
    fn reset(&mut self);

    /// A short, stable identifier used in reports and plots
    /// (e.g. `"util-bp"`, `"cap-bp"`).
    fn name(&self) -> &'static str;

    /// Appends the controller's dynamic state to a checkpoint stream.
    ///
    /// The default writes nothing — correct for stateless controllers.
    /// Stateful controllers (and every decorator, which must forward to
    /// its inner controller after writing its own state) override both
    /// this and [`load_state`](Self::load_state) as a pair, under the
    /// [`state`](crate::state) module's determinism contract.
    fn save_state(&self, _writer: &mut StateWriter) {}

    /// Restores the state written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`StateError`] when the stream is truncated or malformed; the
    /// controller may be left partially restored and must be discarded.
    fn load_state(&mut self, _reader: &mut StateReader<'_>) -> Result<(), StateError> {
        Ok(())
    }
}

impl<T: SignalController + ?Sized> SignalController for Box<T> {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        (**self).decide(view, now)
    }

    fn reset(&mut self) {
        (**self).reset();
    }

    fn name(&self) -> &'static str {
        (**self).name()
    }

    fn save_state(&self, writer: &mut StateWriter) {
        (**self).save_state(writer);
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        (**self).load_state(reader)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::QueueObservation;
    use crate::standard;

    #[test]
    fn decision_accessors() {
        let c = PhaseDecision::Control(PhaseId::new(2));
        assert_eq!(c.phase(), Some(PhaseId::new(2)));
        assert!(!c.is_transition());
        assert_eq!(c.trace_value(), 3);

        let t = PhaseDecision::Transition;
        assert_eq!(t.phase(), None);
        assert!(t.is_transition());
        assert_eq!(t.trace_value(), 0);
    }

    #[test]
    fn decision_display_uses_paper_numbering() {
        assert_eq!(PhaseDecision::Control(PhaseId::new(0)).to_string(), "c1");
        assert_eq!(PhaseDecision::Transition.to_string(), "c0");
    }

    struct Alternating(bool);

    impl SignalController for Alternating {
        fn decide(&mut self, _view: &IntersectionView<'_>, _now: Tick) -> PhaseDecision {
            self.0 = !self.0;
            if self.0 {
                PhaseDecision::Control(PhaseId::new(0))
            } else {
                PhaseDecision::Transition
            }
        }
        fn reset(&mut self) {
            self.0 = false;
        }
        fn name(&self) -> &'static str {
            "alternating"
        }
    }

    #[test]
    fn boxed_controllers_delegate() {
        let layout = standard::four_way(120, 1.0);
        let obs = QueueObservation::zeros(&layout);
        let view = IntersectionView::new(&layout, &obs).unwrap();

        let mut boxed: Box<dyn SignalController> = Box::new(Alternating(false));
        assert_eq!(boxed.name(), "alternating");
        let first = boxed.decide(&view, Tick::ZERO);
        let second = boxed.decide(&view, Tick::new(1));
        assert_ne!(first, second);
        boxed.reset();
        assert_eq!(boxed.decide(&view, Tick::new(2)), first);
    }
}
