//! Pressures and link gains (Section III-A of the paper).
//!
//! Back-pressure control maps queue lengths to pressures through `b = f(q)`
//! (Eq. 4, with `f` the identity in the paper) and ranks links by a *gain*:
//!
//! - [`original_link_gain`] — Eq. 5, the classic gain
//!   `g_o = max(0, (b_i − b_{i'})·µ)` with the *whole-road* incoming
//!   pressure `b_i`;
//! - [`modified_link_gain`] — Eq. 6, the paper's per-movement gain
//!   `g = (b_i^{i'} − b_{i'} + W*)·µ`, always positive in the ordinary
//!   case so negative pressure differences still permit flow;
//! - [`util_link_gain`] — Eq. 8, Eq. 6 refined with the two special
//!   scenarios: gain `β` when the outgoing road is full and `α` when the
//!   movement queue is empty (with `β < α < 0` by default, Eq. 9).
//!
//! Phase-level aggregates `g(c_j,k)` (Eq. 10) and `g_max(c_j,k)` (Eq. 11)
//! are provided by [`phase_gain`] and [`phase_gain_max`].

use serde::{Deserialize, Serialize};

use crate::ids::{LinkId, PhaseId};
use crate::observation::IntersectionView;

/// The pressure mapping `b = f(q)` (Eq. 4). The paper takes `f` to be the
/// identity; the indirection is kept so alternative mappings stay one edit
/// away.
#[inline]
pub fn pressure(queue: u32) -> f64 {
    queue as f64
}

/// The `α`/`β` penalties of the utilization-aware gain (Eq. 8) and their
/// validity rule (Eq. 9).
///
/// `β` is the gain of a link whose outgoing road is full; `α` the gain of a
/// link whose movement queue is empty (with room downstream). Both must be
/// negative so they rank below any link that guarantees flow. The paper
/// defaults to `β < α` but notes the order may be reversed by a traffic
/// authority's preference, so only negativity is enforced.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GainPenalties {
    alpha: f64,
    beta: f64,
}

impl GainPenalties {
    /// The paper's experimental values: `α = −1`, `β = −2`.
    pub const PAPER: GainPenalties = GainPenalties {
        alpha: -1.0,
        beta: -2.0,
    };

    /// Creates penalties, validating Eq. 9's negativity requirement.
    ///
    /// # Errors
    ///
    /// Returns [`PenaltyError`] if either value is not strictly negative and
    /// finite.
    pub fn new(alpha: f64, beta: f64) -> Result<Self, PenaltyError> {
        if !(alpha.is_finite() && alpha < 0.0) {
            return Err(PenaltyError {
                name: "alpha",
                value: alpha,
            });
        }
        if !(beta.is_finite() && beta < 0.0) {
            return Err(PenaltyError {
                name: "beta",
                value: beta,
            });
        }
        Ok(GainPenalties { alpha, beta })
    }

    /// The empty-incoming penalty `α`.
    pub const fn alpha(self) -> f64 {
        self.alpha
    }

    /// The full-outgoing penalty `β`.
    pub const fn beta(self) -> f64 {
        self.beta
    }
}

impl Default for GainPenalties {
    fn default() -> Self {
        GainPenalties::PAPER
    }
}

/// Error returned by [`GainPenalties::new`] for non-negative penalties.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PenaltyError {
    name: &'static str,
    value: f64,
}

impl std::fmt::Display for PenaltyError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "penalty {} = {} must be strictly negative and finite (Eq. 9)",
            self.name, self.value
        )
    }
}

impl std::error::Error for PenaltyError {}

/// Eq. 5 — the original back-pressure link gain
/// `g_o(L_i^{i'}, k) = max(0, (b_i(k) − b_{i'}(k))·µ_i^{i'})`.
///
/// `q_in_road` is the *total* queue at the incoming road (Eq. 1), not the
/// per-movement queue; obliviousness to the split across movements is one of
/// the shortcomings the paper's modified gain addresses.
#[inline]
pub fn original_link_gain(q_in_road: u32, q_out: u32, mu: f64) -> f64 {
    ((pressure(q_in_road) - pressure(q_out)) * mu).max(0.0)
}

/// Eq. 6 — the paper's modified link gain
/// `g(L_i^{i'}, k) = (b_i^{i'}(k) − b_{i'}(k) + W*)·µ_i^{i'}`.
///
/// Differences from Eq. 5: the incoming pressure counts only the movement
/// queue that would actually use the link, and the additive `W*` keeps the
/// parenthesized term positive so links with negative pressure difference
/// can still be ranked (and served).
#[inline]
pub fn modified_link_gain(q_in_movement: u32, q_out: u32, w_star: u32, mu: f64) -> f64 {
    (pressure(q_in_movement) - pressure(q_out) + w_star as f64) * mu
}

/// Eq. 8 — the utilization-aware link gain.
///
/// Returns `β` if the outgoing road is full (`q_out = W_out`), `α` if the
/// outgoing road has room but the movement queue is empty, and the modified
/// gain of Eq. 6 otherwise.
#[inline]
pub fn util_link_gain(
    q_in_movement: u32,
    q_out: u32,
    w_out: u32,
    w_star: u32,
    mu: f64,
    penalties: GainPenalties,
) -> f64 {
    if q_out >= w_out {
        penalties.beta
    } else if q_in_movement == 0 {
        penalties.alpha
    } else {
        modified_link_gain(q_in_movement, q_out, w_star, mu)
    }
}

/// The utilization-aware gain (Eq. 8) of one link in a live intersection
/// view.
pub fn link_gain(view: &IntersectionView<'_>, link: LinkId, penalties: GainPenalties) -> f64 {
    let layout = view.layout();
    let l = layout.link(link);
    util_link_gain(
        view.movement_queue(link),
        view.outgoing_occupancy(l.to()),
        layout.capacity(l.to()),
        layout.max_capacity(),
        l.service_rate(),
        penalties,
    )
}

/// Eq. 10 — the phase gain `g(c_j,k) = Σ_{L ∈ c_j} g(L,k)` under the
/// utilization-aware link gain.
pub fn phase_gain(view: &IntersectionView<'_>, phase: PhaseId, penalties: GainPenalties) -> f64 {
    view.layout()
        .phase(phase)
        .links()
        .iter()
        .map(|&l| link_gain(view, l, penalties))
        .sum()
}

/// Eq. 11 — the maximum link gain within a phase,
/// `g_max(c_j,k) = max_{L ∈ c_j} g(L,k)`, together with the link attaining
/// it (the paper's `L_max(c_j,k)`, needed by the `g*` threshold of Eq. 12).
///
/// Ties resolve to the first link in the phase's declaration order.
///
/// # Panics
///
/// Never panics for layouts built through
/// [`IntersectionLayout::builder`](crate::IntersectionLayout::builder),
/// which rejects empty phases.
pub fn phase_gain_max(
    view: &IntersectionView<'_>,
    phase: PhaseId,
    penalties: GainPenalties,
) -> (f64, LinkId) {
    let links = view.layout().phase(phase).links();
    let mut best = (f64::NEG_INFINITY, links[0]);
    for &l in links {
        let g = link_gain(view, l, penalties);
        if g > best.0 {
            best = (g, l);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::QueueObservation;
    use crate::standard::{self, Approach, Turn};

    fn view_with<'a>(
        layout: &'a crate::IntersectionLayout,
        obs: &'a QueueObservation,
    ) -> IntersectionView<'a> {
        IntersectionView::new(layout, obs).unwrap()
    }

    #[test]
    fn penalties_enforce_negativity() {
        assert!(GainPenalties::new(-1.0, -2.0).is_ok());
        assert!(GainPenalties::new(0.0, -2.0).is_err());
        assert!(GainPenalties::new(-1.0, 0.5).is_err());
        assert!(GainPenalties::new(f64::NAN, -1.0).is_err());
        let err = GainPenalties::new(0.0, -1.0).unwrap_err();
        assert!(err.to_string().contains("alpha"));
    }

    #[test]
    fn paper_penalties_match_section_v() {
        let p = GainPenalties::PAPER;
        assert_eq!(p.alpha(), -1.0);
        assert_eq!(p.beta(), -2.0);
        assert_eq!(GainPenalties::default(), p);
    }

    #[test]
    fn original_gain_clamps_at_zero() {
        assert_eq!(original_link_gain(10, 4, 1.0), 6.0);
        assert_eq!(original_link_gain(4, 10, 1.0), 0.0, "negative difference");
        assert_eq!(original_link_gain(5, 5, 2.0), 0.0, "balanced queues");
        assert_eq!(original_link_gain(10, 0, 0.5), 5.0, "scaled by µ");
    }

    #[test]
    fn modified_gain_allows_negative_pressure_difference() {
        // q_in=2, q_out=10, W*=120: difference is −8 but the gain stays
        // positive, so the link can still be ranked for service.
        let g = modified_link_gain(2, 10, 120, 1.0);
        assert_eq!(g, (2.0 - 10.0 + 120.0));
        assert!(g > 0.0);
    }

    #[test]
    fn modified_gain_orders_by_pressure_difference_and_rate() {
        let base = modified_link_gain(5, 5, 120, 1.0);
        assert!(
            modified_link_gain(9, 5, 120, 1.0) > base,
            "longer queue wins"
        );
        assert!(
            modified_link_gain(5, 9, 120, 1.0) < base,
            "fuller exit loses"
        );
        assert!(
            modified_link_gain(5, 5, 120, 2.0) > base,
            "faster link wins"
        );
    }

    #[test]
    fn util_gain_special_cases_match_eq8() {
        let p = GainPenalties::PAPER;
        // Full outgoing road → β, regardless of the incoming queue.
        assert_eq!(util_link_gain(50, 120, 120, 120, 1.0, p), -2.0);
        assert_eq!(util_link_gain(0, 120, 120, 120, 1.0, p), -2.0);
        // Empty movement queue with room downstream → α.
        assert_eq!(util_link_gain(0, 3, 120, 120, 1.0, p), -1.0);
        // Ordinary case → Eq. 6.
        assert_eq!(
            util_link_gain(7, 3, 120, 120, 1.0, p),
            modified_link_gain(7, 3, 120, 1.0)
        );
    }

    #[test]
    fn util_gain_full_beats_empty_in_badness() {
        // β < α: a full exit ranks below an empty approach by default.
        let p = GainPenalties::PAPER;
        let full = util_link_gain(10, 120, 120, 120, 1.0, p);
        let empty = util_link_gain(0, 10, 120, 120, 1.0, p);
        assert!(full < empty);
        assert!(empty < 0.0);
    }

    #[test]
    fn ordinary_gain_always_exceeds_penalties() {
        // With W* ≥ W_out and q_out < W_out, Eq. 6 gives
        // (q_in − q_out + W*)µ ≥ (1 − (W_out − 1) + W*)µ ≥ 2µ > 0 > α > β.
        let p = GainPenalties::PAPER;
        for q_in in 1..=120u32 {
            for q_out in 0..120u32 {
                let g = util_link_gain(q_in, q_out, 120, 120, 1.0, p);
                assert!(g > 0.0, "q_in={q_in} q_out={q_out} gave {g}");
            }
        }
    }

    #[test]
    fn phase_aggregates_sum_and_max() {
        let layout = standard::four_way(120, 1.0);
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::phase_id(1);
        let n_straight = standard::link_id(Approach::North, Turn::Straight);
        let n_left = standard::link_id(Approach::North, Turn::Left);
        obs.set_movement(n_straight, 10);
        obs.set_movement(n_left, 4);
        let view = view_with(&layout, &obs);

        let p = GainPenalties::PAPER;
        let expected_straight = modified_link_gain(10, 0, 120, 1.0);
        let expected_left = modified_link_gain(4, 0, 120, 1.0);
        // The other two c1 links (south straight/left) are empty → α each.
        let expected_sum = expected_straight + expected_left + 2.0 * p.alpha();
        assert!((phase_gain(&view, ns, p) - expected_sum).abs() < 1e-12);

        let (gmax, lmax) = phase_gain_max(&view, ns, p);
        assert_eq!(lmax, n_straight);
        assert!((gmax - expected_straight).abs() < 1e-12);
    }

    #[test]
    fn phase_gain_max_breaks_ties_by_declaration_order() {
        let layout = standard::four_way(120, 1.0);
        let obs = QueueObservation::zeros(&layout);
        let view = view_with(&layout, &obs);
        // All links at α: the first declared link of c1 wins.
        let (_, lmax) = phase_gain_max(&view, standard::phase_id(1), GainPenalties::PAPER);
        assert_eq!(lmax, standard::link_id(Approach::North, Turn::Left));
    }

    #[test]
    fn pressure_is_identity_per_eq4() {
        for q in [0u32, 1, 7, 120] {
            assert_eq!(pressure(q), q as f64);
        }
    }
}
