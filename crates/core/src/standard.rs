//! The paper's standard four-approach intersection (Fig. 1).
//!
//! The example junction has four incoming roads `N1..N4`, four outgoing
//! roads `N5..N8`, twelve feasible links (three turning movements per
//! approach, queued on dedicated lanes), and four control phases:
//!
//! | Phase | Activated links | Meaning (right-hand traffic) |
//! |-------|-----------------|------------------------------|
//! | `c1`  | `L1^6, L1^7, L3^5, L3^8` | north–south straight + left |
//! | `c2`  | `L1^8, L3^6`             | north–south right turns     |
//! | `c3`  | `L2^7, L2^8, L4^5, L4^6` | east–west straight + left   |
//! | `c4`  | `L2^5, L4^7`             | east–west right turns       |
//!
//! Index conventions used throughout the workspace:
//! incoming 0..4 map to approaches North, East, South, West (paper `N1..N4`);
//! outgoing 0..4 map to exits toward North, East, South, West (paper
//! `N5..N8`, with `N5` the northern arm, `N6` eastern, `N7` southern, `N8`
//! western, matching the figure's geometry).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{IncomingId, LinkId, OutgoingId, PhaseId};
use crate::layout::IntersectionLayout;

/// Compass approach of a four-way intersection: the arm a vehicle arrives
/// from, or the arm it leaves toward.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Approach {
    /// The northern arm (paper `N1` incoming / `N5` outgoing).
    North,
    /// The eastern arm (paper `N2` incoming / `N6` outgoing).
    East,
    /// The southern arm (paper `N3` incoming / `N7` outgoing).
    South,
    /// The western arm (paper `N4` incoming / `N8` outgoing).
    West,
}

impl Approach {
    /// All four approaches in index order.
    pub const ALL: [Approach; 4] = [
        Approach::North,
        Approach::East,
        Approach::South,
        Approach::West,
    ];

    /// The incoming-road id for traffic arriving from this arm.
    pub const fn incoming(self) -> IncomingId {
        IncomingId::new(self as u8)
    }

    /// The outgoing-road id for traffic leaving toward this arm.
    pub const fn outgoing(self) -> OutgoingId {
        OutgoingId::new(self as u8)
    }

    /// The opposite arm.
    #[must_use]
    pub const fn opposite(self) -> Approach {
        match self {
            Approach::North => Approach::South,
            Approach::East => Approach::West,
            Approach::South => Approach::North,
            Approach::West => Approach::East,
        }
    }

    /// The heading of a vehicle that entered *from* this arm (e.g. a vehicle
    /// arriving from the north heads south).
    #[must_use]
    pub const fn heading(self) -> Approach {
        self.opposite()
    }

    /// Recovers an approach from an incoming-road index.
    pub const fn from_incoming(id: IncomingId) -> Option<Approach> {
        Self::from_index(id.index())
    }

    /// Recovers an approach from an outgoing-road index.
    pub const fn from_outgoing(id: OutgoingId) -> Option<Approach> {
        Self::from_index(id.index())
    }

    const fn from_index(index: usize) -> Option<Approach> {
        match index {
            0 => Some(Approach::North),
            1 => Some(Approach::East),
            2 => Some(Approach::South),
            3 => Some(Approach::West),
            _ => None,
        }
    }
}

impl fmt::Display for Approach {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Approach::North => "north",
            Approach::East => "east",
            Approach::South => "south",
            Approach::West => "west",
        };
        f.write_str(s)
    }
}

/// A turning movement relative to the vehicle's heading (right-hand
/// traffic).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Turn {
    /// Turn left across opposing traffic.
    Left,
    /// Continue straight through.
    Straight,
    /// Turn right.
    Right,
}

impl Turn {
    /// All three movements in a fixed order.
    pub const ALL: [Turn; 3] = [Turn::Left, Turn::Straight, Turn::Right];

    /// The arm a vehicle leaves toward when it arrives from `from` and makes
    /// this turn (right-hand traffic: from the north heading south, a left
    /// turn exits east).
    #[must_use]
    pub const fn exit_from(self, from: Approach) -> Approach {
        match (from, self) {
            (Approach::North, Turn::Straight) => Approach::South,
            (Approach::North, Turn::Left) => Approach::East,
            (Approach::North, Turn::Right) => Approach::West,
            (Approach::East, Turn::Straight) => Approach::West,
            (Approach::East, Turn::Left) => Approach::South,
            (Approach::East, Turn::Right) => Approach::North,
            (Approach::South, Turn::Straight) => Approach::North,
            (Approach::South, Turn::Left) => Approach::West,
            (Approach::South, Turn::Right) => Approach::East,
            (Approach::West, Turn::Straight) => Approach::East,
            (Approach::West, Turn::Left) => Approach::North,
            (Approach::West, Turn::Right) => Approach::South,
        }
    }
}

impl fmt::Display for Turn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Turn::Left => "left",
            Turn::Straight => "straight",
            Turn::Right => "right",
        };
        f.write_str(s)
    }
}

/// Builds the paper's Fig. 1 intersection: four approaches, twelve links,
/// four phases.
///
/// Every outgoing road gets capacity `capacity` (`W_i = 120` in the paper's
/// experiments) and every link the maximum service rate `service_rate`
/// (`µ = 1` vehicle per mini-slot in the paper).
///
/// # Panics
///
/// Panics if `capacity == 0` or `service_rate` is not strictly positive and
/// finite (the paper's model requires both).
///
/// # Examples
///
/// ```
/// use utilbp_core::standard::{four_way, Approach, Turn};
///
/// let layout = four_way(120, 1.0);
/// assert_eq!(layout.num_links(), 12);
/// assert_eq!(layout.num_phases(), 4);
///
/// // c2 activates exactly the north–south right turns.
/// let c2 = layout.phase(utilbp_core::PhaseId::new(1));
/// assert_eq!(c2.links().len(), 2);
/// ```
pub fn four_way(capacity: u32, service_rate: f64) -> IntersectionLayout {
    four_way_with([capacity; 4], service_rate)
}

/// Builds a Fig. 1 intersection with per-arm outgoing capacities.
///
/// `capacities[i]` is the storage capacity of the outgoing road toward
/// `Approach::ALL[i]` (North, East, South, West). This is what irregular
/// networks (arterials with wide main roads and narrow side streets,
/// asymmetric grids) use; [`four_way`] is the uniform-capacity special
/// case.
///
/// The link and phase tables are identical to [`four_way`], so
/// [`link_id`], [`movement_of`], and [`phase_id`] remain valid.
///
/// # Panics
///
/// Panics if any capacity is zero or `service_rate` is not strictly
/// positive and finite.
pub fn four_way_with(capacities: [u32; 4], service_rate: f64) -> IntersectionLayout {
    let mut b = IntersectionLayout::builder();
    for _ in Approach::ALL {
        b.add_incoming();
    }
    for capacity in capacities {
        b.add_outgoing(capacity);
    }
    // Link table in (approach-major, Turn::ALL-minor) order so that
    // `link_id(from, turn)` is a closed-form index.
    for from in Approach::ALL {
        for turn in Turn::ALL {
            let to = turn.exit_from(from);
            b.add_link(from.incoming(), to.outgoing(), service_rate);
        }
    }
    // Fig. 1 phase table.
    let l = |from: Approach, turn: Turn| link_id(from, turn);
    b.add_phase(&[
        // c1: L1^6, L1^7, L3^5, L3^8 — N/S straight + left.
        l(Approach::North, Turn::Left),
        l(Approach::North, Turn::Straight),
        l(Approach::South, Turn::Straight),
        l(Approach::South, Turn::Left),
    ]);
    b.add_phase(&[
        // c2: L1^8, L3^6 — N/S right.
        l(Approach::North, Turn::Right),
        l(Approach::South, Turn::Right),
    ]);
    b.add_phase(&[
        // c3: L2^7, L2^8, L4^5, L4^6 — E/W straight + left.
        l(Approach::East, Turn::Left),
        l(Approach::East, Turn::Straight),
        l(Approach::West, Turn::Straight),
        l(Approach::West, Turn::Left),
    ]);
    b.add_phase(&[
        // c4: L2^5, L4^7 — E/W right.
        l(Approach::East, Turn::Right),
        l(Approach::West, Turn::Right),
    ]);
    b.build()
        .expect("the standard four-way layout is valid by construction")
}

/// The link id of movement (`from`, `turn`) in a [`four_way`] layout.
///
/// This is a closed-form index into the layout built by [`four_way`]; it is
/// meaningless for other layouts.
pub const fn link_id(from: Approach, turn: Turn) -> LinkId {
    LinkId::new(from as u16 * 3 + turn as u16)
}

/// The paper's phase numbering for [`four_way`] layouts: `c1..c4` map to
/// `PhaseId(0)..PhaseId(3)`.
pub const fn phase_id(paper_number: u8) -> PhaseId {
    PhaseId::new(paper_number - 1)
}

/// Inverts [`link_id`] for a [`four_way`] layout: the `(approach, turn)`
/// movement a link id denotes, or `None` if the id is outside the twelve
/// four-way links. Lets callers holding only a `LinkId` (route hops,
/// observations) recover the turn geometry without grid coordinates.
pub const fn movement_of(link: LinkId) -> Option<(Approach, Turn)> {
    let idx = link.index();
    if idx >= 12 {
        return None;
    }
    let approach = match idx / 3 {
        0 => Approach::North,
        1 => Approach::East,
        2 => Approach::South,
        _ => Approach::West,
    };
    let turn = match idx % 3 {
        0 => Turn::Left,
        1 => Turn::Straight,
        _ => Turn::Right,
    };
    Some((approach, turn))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_way_has_paper_dimensions() {
        let layout = four_way(120, 1.0);
        assert_eq!(layout.num_incoming(), 4);
        assert_eq!(layout.num_outgoing(), 4);
        assert_eq!(layout.num_links(), 12);
        assert_eq!(layout.num_phases(), 4);
        assert_eq!(layout.max_capacity(), 120);
    }

    #[test]
    fn link_id_formula_matches_table_order() {
        let layout = four_way(120, 1.0);
        for from in Approach::ALL {
            for turn in Turn::ALL {
                let id = link_id(from, turn);
                let link = layout.link(id);
                assert_eq!(link.from(), from.incoming());
                assert_eq!(link.to(), turn.exit_from(from).outgoing());
            }
        }
    }

    #[test]
    fn phases_match_fig1_table() {
        let layout = four_way(120, 1.0);
        // c1 = {L1^6, L1^7, L3^5, L3^8}: N straight/left + S straight/left.
        let c1 = layout.phase(phase_id(1));
        assert_eq!(c1.links().len(), 4);
        assert!(c1.activates(link_id(Approach::North, Turn::Straight)));
        assert!(c1.activates(link_id(Approach::North, Turn::Left)));
        assert!(c1.activates(link_id(Approach::South, Turn::Straight)));
        assert!(c1.activates(link_id(Approach::South, Turn::Left)));

        // c2 = {L1^8, L3^6}: N/S right turns.
        let c2 = layout.phase(phase_id(2));
        assert_eq!(c2.links().len(), 2);
        assert!(c2.activates(link_id(Approach::North, Turn::Right)));
        assert!(c2.activates(link_id(Approach::South, Turn::Right)));

        // c3 = {L2^7, L2^8, L4^5, L4^6}: E/W straight + left.
        let c3 = layout.phase(phase_id(3));
        assert_eq!(c3.links().len(), 4);
        assert!(c3.activates(link_id(Approach::East, Turn::Straight)));
        assert!(c3.activates(link_id(Approach::East, Turn::Left)));
        assert!(c3.activates(link_id(Approach::West, Turn::Straight)));
        assert!(c3.activates(link_id(Approach::West, Turn::Left)));

        // c4 = {L2^5, L4^7}: E/W right turns.
        let c4 = layout.phase(phase_id(4));
        assert_eq!(c4.links().len(), 2);
        assert!(c4.activates(link_id(Approach::East, Turn::Right)));
        assert!(c4.activates(link_id(Approach::West, Turn::Right)));
    }

    #[test]
    fn every_link_appears_in_exactly_one_phase() {
        let layout = four_way(120, 1.0);
        for link in layout.link_ids() {
            let count = layout
                .phase_ids()
                .filter(|&p| layout.phase(p).activates(link))
                .count();
            assert_eq!(count, 1, "link {link} must appear in exactly one phase");
        }
    }

    #[test]
    fn exit_mapping_is_right_hand_traffic() {
        // From the north, heading south: left exits east, right exits west.
        assert_eq!(Turn::Left.exit_from(Approach::North), Approach::East);
        assert_eq!(Turn::Right.exit_from(Approach::North), Approach::West);
        assert_eq!(Turn::Straight.exit_from(Approach::North), Approach::South);
        // From the west, heading east: left exits north.
        assert_eq!(Turn::Left.exit_from(Approach::West), Approach::North);
    }

    #[test]
    fn exit_mapping_is_a_bijection_per_approach() {
        for from in Approach::ALL {
            let mut exits: Vec<Approach> = Turn::ALL.iter().map(|t| t.exit_from(from)).collect();
            exits.sort();
            exits.dedup();
            assert_eq!(exits.len(), 3, "three distinct exits from {from}");
            assert!(
                !exits.contains(&from),
                "no U-turns in the Fig. 1 intersection"
            );
        }
    }

    #[test]
    fn approach_round_trips_through_ids() {
        for a in Approach::ALL {
            assert_eq!(Approach::from_incoming(a.incoming()), Some(a));
            assert_eq!(Approach::from_outgoing(a.outgoing()), Some(a));
        }
        assert_eq!(Approach::from_incoming(IncomingId::new(9)), None);
    }

    #[test]
    fn asymmetric_capacities_per_arm() {
        let layout = four_way_with([120, 40, 120, 40], 1.0);
        assert_eq!(layout.capacity(Approach::North.outgoing()), 120);
        assert_eq!(layout.capacity(Approach::East.outgoing()), 40);
        assert_eq!(layout.capacity(Approach::South.outgoing()), 120);
        assert_eq!(layout.capacity(Approach::West.outgoing()), 40);
        assert_eq!(layout.max_capacity(), 120);
        // Same link/phase tables as the uniform layout.
        assert_eq!(layout.num_links(), 12);
        assert_eq!(layout.num_phases(), 4);
    }

    #[test]
    fn movement_of_inverts_link_id() {
        for from in Approach::ALL {
            for turn in Turn::ALL {
                assert_eq!(movement_of(link_id(from, turn)), Some((from, turn)));
            }
        }
        assert_eq!(movement_of(LinkId::new(12)), None);
    }

    #[test]
    fn heading_is_opposite() {
        assert_eq!(Approach::North.heading(), Approach::South);
        assert_eq!(Approach::East.opposite(), Approach::West);
    }
}
