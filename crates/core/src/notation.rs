//! Paper-to-API notation map (documentation only).
//!
//! The reproduction follows the paper's notation closely; this page is
//! the dictionary between the symbols of *Chang et al., DATE 2020* and the
//! items of this workspace.
//!
//! # Section II — system model
//!
//! | Paper | Meaning | API |
//! |---|---|---|
//! | `N_i ∈ N_I` | incoming road | [`IncomingId`](crate::IncomingId) |
//! | `N_{i'} ∈ N_O` | outgoing road | [`OutgoingId`](crate::OutgoingId) |
//! | `L_i^{i'} ∈ L` | feasible link (turning movement) | [`LinkId`](crate::LinkId), [`Link`](crate::Link) |
//! | `c_j ∈ C` | control phase | [`PhaseId`](crate::PhaseId), [`Phase`](crate::Phase) |
//! | `c_0 = ∅` | transition (amber) phase | [`PhaseDecision::Transition`](crate::PhaseDecision::Transition) |
//! | `k` | discrete time instant (mini-slot) | [`Tick`](crate::Tick) |
//! | `∆k` | transition duration | [`UtilBpConfig::transition`](crate::UtilBpConfig) |
//! | `q_i^{i'}(k)` | per-movement queue | [`QueueObservation::movement`](crate::QueueObservation::movement) |
//! | `q_i(k)` (Eq. 1) | total incoming queue | [`IntersectionView::incoming_total`](crate::IntersectionView::incoming_total) |
//! | `q_{i'}(k)` | outgoing road queue | [`QueueObservation::outgoing`](crate::QueueObservation::outgoing) |
//! | `W_i` | road capacity | [`IntersectionLayout::capacity`](crate::IntersectionLayout::capacity) |
//! | `W*` (Eq. 7) | max capacity | [`IntersectionLayout::max_capacity`](crate::IntersectionLayout::max_capacity) |
//! | `µ_i^{i'}` | max service rate | [`Link::service_rate`](crate::Link::service_rate) |
//! | `A_i^{i'}(k, k+1)` | exogenous arrivals | [`DemandGenerator::poll`](https://docs.rs/utilbp-netgen) (netgen crate) |
//! | `S_i^{i'}(k, k+1)` (Eq. 2) | served vehicles | `QueueSim::step` / `MicroSim::step` (simulator crates) |
//!
//! # Section III — controller
//!
//! | Paper | Meaning | API |
//! |---|---|---|
//! | `c(k) = φ(Q(k))` (Eq. 3) | state-feedback law | [`SignalController::decide`](crate::SignalController::decide) |
//! | `b = f(q)` (Eq. 4) | pressure mapping | [`pressure::pressure`](crate::pressure::pressure) |
//! | `g_o(L, k)` (Eq. 5) | original link gain | [`pressure::original_link_gain`](crate::pressure::original_link_gain) |
//! | `g(L, k)` (Eq. 6) | modified link gain | [`pressure::modified_link_gain`](crate::pressure::modified_link_gain) |
//! | `g(L, k)` (Eq. 8) | utilization-aware gain | [`pressure::util_link_gain`](crate::pressure::util_link_gain) |
//! | `α`, `β` (Eq. 9) | empty/full penalties | [`GainPenalties`](crate::GainPenalties) |
//! | `g(c_j, k)` (Eq. 10) | phase gain | [`pressure::phase_gain`](crate::pressure::phase_gain) |
//! | `g_max(c_j, k)` (Eq. 11) | best link gain | [`pressure::phase_gain_max`](crate::pressure::phase_gain_max) |
//! | `g*(k)` (Eq. 12) | keep-phase threshold | [`GStarPolicy`](crate::GStarPolicy) |
//! | Algorithm 1 | UTIL-BP | [`UtilBp`](crate::UtilBp) |
//!
//! # Section V — experiments
//!
//! Table I → `utilbp_netgen::TurningProbabilities::PAPER`; Table II →
//! `utilbp_netgen::Pattern`; the 3×3 network → `utilbp_netgen::GridSpec::paper()`;
//! CAP-BP → `utilbp_baselines::CapBp`; the figures/tables →
//! `utilbp_experiments` (see that crate's docs for the artifact table).
