//! # utilbp-core
//!
//! CPS-oriented modeling of signalized intersections and the
//! **utilization-aware adaptive back-pressure controller (UTIL-BP)** from
//! *Chang et al., "CPS-oriented Modeling and Control of Traffic Signals
//! Using Adaptive Back Pressure", DATE 2020*.
//!
//! The crate provides the paper's Section II model and Section III
//! algorithm:
//!
//! - [`IntersectionLayout`] — the directed-graph junction model: incoming
//!   and outgoing roads, finite capacities `W_{i'}`, feasible links
//!   `L_i^{i'}` with service rates `µ_i^{i'}`, and control phases `c_j`;
//! - [`QueueObservation`] / [`IntersectionView`] — the state `Q(k)` a
//!   controller observes: per-movement queues (dedicated turning lanes) and
//!   outgoing-road occupancies;
//! - [`pressure`] — link gains: the original Eq. 5, the modified Eq. 6, and
//!   the utilization-aware Eq. 8 with its `α`/`β` penalties;
//! - [`UtilBp`] — Algorithm 1: per-mini-slot invocation, varying-length
//!   control phases, the `g*` keep-phase hysteresis (Eq. 12), and amber
//!   transitions of length `∆k`;
//! - [`SignalController`] — the trait all controllers (UTIL-BP and the
//!   baselines in `utilbp-baselines`) implement.
//!
//! ## Quickstart
//!
//! ```
//! use utilbp_core::{
//!     standard, IntersectionView, PhaseDecision, QueueObservation,
//!     SignalController, Tick, UtilBp,
//! };
//!
//! // The paper's Fig. 1 junction: W = 120, µ = 1 vehicle per mini-slot.
//! let layout = standard::four_way(120, 1.0);
//!
//! // Measured state: 6 vehicles queued to turn left from the west.
//! let mut queues = QueueObservation::zeros(&layout);
//! queues.set_movement(
//!     standard::link_id(standard::Approach::West, standard::Turn::Left),
//!     6,
//! );
//!
//! let mut controller = UtilBp::paper();
//! let view = IntersectionView::new(&layout, &queues).unwrap();
//! match controller.decide(&view, Tick::ZERO) {
//!     PhaseDecision::Control(phase) => println!("apply {phase}"),
//!     PhaseDecision::Transition => println!("amber"),
//! }
//! ```
//!
//! Simulation substrates that exercise this controller live in
//! `utilbp-queueing` (the paper's discrete-time queueing network) and
//! `utilbp-microsim` (a microscopic simulator standing in for SUMO).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod controller;
mod ids;
mod layout;
pub mod notation;
mod observation;
pub mod parallel;
pub mod pressure;
pub mod standard;
pub mod state;
mod time;
mod utilbp;

pub use controller::{PhaseDecision, SignalController};
pub use ids::{IncomingId, LinkId, OutgoingId, PhaseId};
pub use layout::{IntersectionLayout, IntersectionLayoutBuilder, LayoutError, Link, Phase};
pub use observation::{
    IntersectionView, ObservationBuffer, ObservationShapeError, QueueObservation,
};
pub use parallel::Parallelism;
pub use pressure::{GainPenalties, PenaltyError};
pub use time::{Tick, Ticks};
pub use utilbp::{GStarPolicy, GainMode, PhaseScore, UtilBp, UtilBpConfig};
