//! Word-level state serialization for checkpoint/restore.
//!
//! Every stateful component in this workspace — controllers and their
//! fault/watchdog decorators, the simulation substrates, the demand
//! generator, the flight recorder — exposes its dynamic state as a flat
//! sequence of `u64` words through a [`StateWriter`], and rebuilds it
//! from a [`StateReader`]. The word stream is the *logical* encoding;
//! the on-disk container (format version, section framing, checksums)
//! lives in `utilbp-snapshot`, which packs word streams into verified
//! byte sections.
//!
//! ## Contract
//!
//! - **Determinism.** `save_state` must emit an identical word sequence
//!   for identical logical state: collections are written in index
//!   order, unordered sets are sorted before writing, and floats are
//!   written bit-exactly via [`f64::to_bits`] (so a restored
//!   accumulator continues *bit-identically*, not approximately).
//! - **Round-trip.** `load_state(save_state(x))` must reproduce `x`'s
//!   observable behavior exactly; `save_state` after a restore must
//!   emit the same words again (canonicalization happens on save, so
//!   save→load→save is a fixed point).
//! - **No panics on bad input.** Readers return [`StateError`]; a
//!   corrupted or truncated stream must surface as an error, never as
//!   an index-out-of-bounds panic. Values are range-checked as they
//!   are read ([`StateReader::take_u32`], [`StateReader::take_bool`]).

use std::error::Error;
use std::fmt;

/// A growable sink of `u64` state words.
///
/// # Examples
///
/// ```
/// use utilbp_core::state::{StateReader, StateWriter};
///
/// let mut w = StateWriter::new();
/// w.push(7);
/// w.push_f64(0.25);
/// w.push_bool(true);
///
/// let mut r = StateReader::new(w.words());
/// assert_eq!(r.take().unwrap(), 7);
/// assert_eq!(r.take_f64().unwrap(), 0.25);
/// assert!(r.take_bool().unwrap());
/// r.finish().unwrap();
/// ```
#[derive(Debug, Default, Clone)]
pub struct StateWriter {
    words: Vec<u64>,
}

impl StateWriter {
    /// An empty writer.
    pub fn new() -> Self {
        StateWriter { words: Vec::new() }
    }

    /// The words written so far.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Consumes the writer, returning its words.
    pub fn into_words(self) -> Vec<u64> {
        self.words
    }

    /// Number of words written so far.
    pub fn len(&self) -> usize {
        self.words.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// Appends one raw word.
    pub fn push(&mut self, word: u64) {
        self.words.push(word);
    }

    /// Appends a `u32`, widened.
    pub fn push_u32(&mut self, value: u32) {
        self.words.push(u64::from(value));
    }

    /// Appends a `usize`, widened.
    pub fn push_usize(&mut self, value: usize) {
        self.words.push(value as u64);
    }

    /// Appends a boolean as 0/1.
    pub fn push_bool(&mut self, value: bool) {
        self.words.push(u64::from(value));
    }

    /// Appends an `f64` bit-exactly.
    pub fn push_f64(&mut self, value: f64) {
        self.words.push(value.to_bits());
    }

    /// Appends a UTF-8 string: its byte length, then its bytes packed
    /// little-endian into words (the final word zero-padded).
    pub fn push_str(&mut self, s: &str) {
        let bytes = s.as_bytes();
        self.push_usize(bytes.len());
        for chunk in bytes.chunks(8) {
            let mut word = [0u8; 8];
            word[..chunk.len()].copy_from_slice(chunk);
            self.words.push(u64::from_le_bytes(word));
        }
    }
}

/// A cursor over a word stream produced by [`StateWriter`].
#[derive(Debug)]
pub struct StateReader<'a> {
    words: &'a [u64],
    pos: usize,
}

impl<'a> StateReader<'a> {
    /// A reader over `words`, positioned at the start.
    pub fn new(words: &'a [u64]) -> Self {
        StateReader { words, pos: 0 }
    }

    /// Words not yet consumed.
    pub fn remaining(&self) -> usize {
        self.words.len() - self.pos
    }

    /// Takes the next raw word.
    ///
    /// # Errors
    ///
    /// [`StateError::Exhausted`] if the stream has run out.
    pub fn take(&mut self) -> Result<u64, StateError> {
        let word = self
            .words
            .get(self.pos)
            .copied()
            .ok_or(StateError::Exhausted { at: self.pos })?;
        self.pos += 1;
        Ok(word)
    }

    /// Takes a word that must fit in `u32`.
    ///
    /// # Errors
    ///
    /// [`StateError::Exhausted`] or [`StateError::Invalid`] when the
    /// word exceeds `u32::MAX`.
    pub fn take_u32(&mut self) -> Result<u32, StateError> {
        let word = self.take()?;
        u32::try_from(word).map_err(|_| StateError::Invalid { what: "u32", word })
    }

    /// Takes a word as a `usize`.
    ///
    /// # Errors
    ///
    /// [`StateError::Exhausted`] or [`StateError::Invalid`] when the
    /// word does not fit (32-bit targets).
    pub fn take_usize(&mut self) -> Result<usize, StateError> {
        let word = self.take()?;
        usize::try_from(word).map_err(|_| StateError::Invalid {
            what: "usize",
            word,
        })
    }

    /// Takes a 0/1 word as a boolean.
    ///
    /// # Errors
    ///
    /// [`StateError::Exhausted`] or [`StateError::Invalid`] on any
    /// other value.
    pub fn take_bool(&mut self) -> Result<bool, StateError> {
        match self.take()? {
            0 => Ok(false),
            1 => Ok(true),
            word => Err(StateError::Invalid { what: "bool", word }),
        }
    }

    /// Takes a bit-exact `f64`.
    ///
    /// # Errors
    ///
    /// [`StateError::Exhausted`] if the stream has run out.
    pub fn take_f64(&mut self) -> Result<f64, StateError> {
        Ok(f64::from_bits(self.take()?))
    }

    /// Takes a string written by [`StateWriter::push_str`].
    ///
    /// # Errors
    ///
    /// [`StateError::Exhausted`] on truncation, [`StateError::Invalid`]
    /// when the bytes are not UTF-8.
    pub fn take_string(&mut self) -> Result<String, StateError> {
        let len = self.take_usize()?;
        let mut bytes = Vec::with_capacity(len);
        let mut left = len;
        while left > 0 {
            let word = self.take()?;
            let n = left.min(8);
            bytes.extend_from_slice(&word.to_le_bytes()[..n]);
            left -= n;
        }
        String::from_utf8(bytes).map_err(|_| StateError::Invalid {
            what: "utf-8 string",
            word: len as u64,
        })
    }

    /// Asserts the stream was fully consumed.
    ///
    /// # Errors
    ///
    /// [`StateError::Trailing`] if words remain.
    pub fn finish(self) -> Result<(), StateError> {
        if self.pos == self.words.len() {
            Ok(())
        } else {
            Err(StateError::Trailing {
                remaining: self.words.len() - self.pos,
            })
        }
    }
}

/// A malformed or truncated state stream.
///
/// Always an error value, never a panic: restore paths surface these to
/// the caller so recovery can fall back to an older checkpoint.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StateError {
    /// The stream ended before the component finished reading.
    Exhausted {
        /// Word index at which the read failed.
        at: usize,
    },
    /// A word failed a range or encoding check.
    Invalid {
        /// What the word was expected to encode.
        what: &'static str,
        /// The offending word.
        word: u64,
    },
    /// The component finished but unread words remain.
    Trailing {
        /// How many words were left over.
        remaining: usize,
    },
}

impl fmt::Display for StateError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StateError::Exhausted { at } => {
                write!(f, "state stream exhausted at word {at}")
            }
            StateError::Invalid { what, word } => {
                write!(f, "state word {word:#x} is not a valid {what}")
            }
            StateError::Trailing { remaining } => {
                write!(f, "state stream has {remaining} unread trailing words")
            }
        }
    }
}

impl Error for StateError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_value_kind() {
        let mut w = StateWriter::new();
        w.push(u64::MAX);
        w.push_u32(42);
        w.push_usize(7);
        w.push_bool(true);
        w.push_bool(false);
        w.push_f64(-0.0);
        w.push_f64(f64::NEG_INFINITY);
        w.push_str("hello, snapshot");
        w.push_str("");

        let mut r = StateReader::new(w.words());
        assert_eq!(r.take().unwrap(), u64::MAX);
        assert_eq!(r.take_u32().unwrap(), 42);
        assert_eq!(r.take_usize().unwrap(), 7);
        assert!(r.take_bool().unwrap());
        assert!(!r.take_bool().unwrap());
        assert_eq!(r.take_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.take_f64().unwrap(), f64::NEG_INFINITY);
        assert_eq!(r.take_string().unwrap(), "hello, snapshot");
        assert_eq!(r.take_string().unwrap(), "");
        r.finish().unwrap();
    }

    #[test]
    fn exhaustion_is_an_error_not_a_panic() {
        let mut r = StateReader::new(&[]);
        assert_eq!(r.take(), Err(StateError::Exhausted { at: 0 }));
        assert!(r.take_f64().is_err());
    }

    #[test]
    fn invalid_words_are_rejected() {
        let words = [2u64, u64::MAX];
        let mut r = StateReader::new(&words);
        assert!(matches!(
            r.take_bool(),
            Err(StateError::Invalid { what: "bool", .. })
        ));
        assert!(matches!(
            r.take_u32(),
            Err(StateError::Invalid { what: "u32", .. })
        ));
    }

    #[test]
    fn trailing_words_are_detected() {
        let words = [1u64, 2];
        let mut r = StateReader::new(&words);
        r.take().unwrap();
        assert_eq!(r.finish(), Err(StateError::Trailing { remaining: 1 }));
    }

    #[test]
    fn truncated_string_is_exhausted() {
        let mut w = StateWriter::new();
        w.push_str("a longer string than one word");
        let words = &w.words()[..2];
        let mut r = StateReader::new(words);
        assert!(matches!(r.take_string(), Err(StateError::Exhausted { .. })));
    }
}
