//! Per-instant queue state of one intersection (the paper's `Q(k)`).
//!
//! The controller is a state-feedback law `c(k) = φ(Q(k))` (Eq. 3). Its
//! state input consists of the per-movement queue lengths `q_i^{i'}(k)` for
//! every feasible link and the total occupancy `q_{i'}(k)` of every outgoing
//! road. A [`QueueObservation`] holds exactly that, and an
//! [`IntersectionView`] pairs it with the static
//! [`IntersectionLayout`](crate::IntersectionLayout) for convenient queries.

use std::error::Error;
use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ids::{IncomingId, LinkId, OutgoingId};
use crate::layout::IntersectionLayout;

/// Error returned when an observation's shape does not match a layout.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ObservationShapeError {
    expected_links: usize,
    got_links: usize,
    expected_outgoing: usize,
    got_outgoing: usize,
}

impl fmt::Display for ObservationShapeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "observation shape mismatch: expected {} movement queues and {} outgoing \
             occupancies, got {} and {}",
            self.expected_links, self.expected_outgoing, self.got_links, self.got_outgoing
        )
    }
}

impl Error for ObservationShapeError {}

/// The measured queue state `Q(k)` of one intersection at one instant.
///
/// # Examples
///
/// ```
/// use utilbp_core::{standard, QueueObservation};
///
/// let layout = standard::four_way(120, 1.0);
/// let mut obs = QueueObservation::zeros(&layout);
/// obs.set_movement(utilbp_core::LinkId::new(0), 7);
/// assert_eq!(obs.movement(utilbp_core::LinkId::new(0)), 7);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueueObservation {
    /// `q_i^{i'}(k)` per feasible link, indexed by `LinkId`.
    movement: Vec<u32>,
    /// `q_{i'}(k)` per outgoing road, indexed by `OutgoingId`.
    outgoing: Vec<u32>,
}

impl QueueObservation {
    /// An all-empty observation shaped for `layout`.
    pub fn zeros(layout: &IntersectionLayout) -> Self {
        QueueObservation {
            movement: vec![0; layout.num_links()],
            outgoing: vec![0; layout.num_outgoing()],
        }
    }

    /// Builds an observation from raw vectors.
    ///
    /// `movement[l]` is `q_i^{i'}(k)` for link `l`; `outgoing[o]` is
    /// `q_{i'}(k)` for outgoing road `o`.
    ///
    /// # Errors
    ///
    /// Returns [`ObservationShapeError`] if the vector lengths do not match
    /// the layout's link and outgoing-road counts.
    pub fn from_vecs(
        layout: &IntersectionLayout,
        movement: Vec<u32>,
        outgoing: Vec<u32>,
    ) -> Result<Self, ObservationShapeError> {
        if movement.len() != layout.num_links() || outgoing.len() != layout.num_outgoing() {
            return Err(ObservationShapeError {
                expected_links: layout.num_links(),
                got_links: movement.len(),
                expected_outgoing: layout.num_outgoing(),
                got_outgoing: outgoing.len(),
            });
        }
        Ok(QueueObservation { movement, outgoing })
    }

    /// The movement queue length `q_i^{i'}(k)` for `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range for the layout this observation was
    /// shaped for.
    pub fn movement(&self, link: LinkId) -> u32 {
        self.movement[link.index()]
    }

    /// Sets the movement queue length for `link`.
    ///
    /// # Panics
    ///
    /// Panics if `link` is out of range.
    pub fn set_movement(&mut self, link: LinkId, value: u32) {
        self.movement[link.index()] = value;
    }

    /// The total occupancy `q_{i'}(k)` of outgoing road `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is out of range.
    pub fn outgoing(&self, out: OutgoingId) -> u32 {
        self.outgoing[out.index()]
    }

    /// Sets the total occupancy of outgoing road `out`.
    ///
    /// # Panics
    ///
    /// Panics if `out` is out of range.
    pub fn set_outgoing(&mut self, out: OutgoingId, value: u32) {
        self.outgoing[out.index()] = value;
    }

    /// Appends the observation's shape and values to a checkpoint
    /// stream (see [`state`](crate::state)).
    pub fn save_state(&self, writer: &mut crate::state::StateWriter) {
        writer.push_usize(self.movement.len());
        for &q in &self.movement {
            writer.push_u32(q);
        }
        writer.push_usize(self.outgoing.len());
        for &q in &self.outgoing {
            writer.push_u32(q);
        }
    }

    /// Reads an observation written by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// [`state::StateError`](crate::state::StateError) when the stream
    /// is truncated or malformed.
    pub fn load_state(
        reader: &mut crate::state::StateReader<'_>,
    ) -> Result<Self, crate::state::StateError> {
        let links = reader.take_usize()?;
        let mut movement = Vec::with_capacity(links);
        for _ in 0..links {
            movement.push(reader.take_u32()?);
        }
        let outgoing_len = reader.take_usize()?;
        let mut outgoing = Vec::with_capacity(outgoing_len);
        for _ in 0..outgoing_len {
            outgoing.push(reader.take_u32()?);
        }
        Ok(QueueObservation { movement, outgoing })
    }

    /// Raw movement-queue slice, indexed by `LinkId`.
    pub fn movements(&self) -> &[u32] {
        &self.movement
    }

    /// Raw outgoing-occupancy slice, indexed by `OutgoingId`.
    pub fn outgoings(&self) -> &[u32] {
        &self.outgoing
    }

    /// Resets every reading to zero, keeping the shape (and allocation).
    pub fn fill_zero(&mut self) {
        self.movement.fill(0);
        self.outgoing.fill(0);
    }

    /// Reshapes this observation for `layout`, zeroing all readings. The
    /// existing allocations are reused when large enough, so reshaping to
    /// the same layout every tick never allocates.
    pub fn reshape_for(&mut self, layout: &IntersectionLayout) {
        self.movement.clear();
        self.movement.resize(layout.num_links(), 0);
        self.outgoing.clear();
        self.outgoing.resize(layout.num_outgoing(), 0);
    }
}

/// A reusable pool of per-intersection observations.
///
/// Simulators shape the buffer once per network and then rewrite the
/// same observations every tick, so the steady-state step path performs
/// no observation-related heap allocation. The buffer also
/// decouples the *sense* phase (write, `&mut self`) from the *decide*
/// phase (read-only views), which is what lets the decide phase shard
/// across threads.
#[derive(Debug, Clone, Default)]
pub struct ObservationBuffer {
    observations: Vec<QueueObservation>,
}

impl ObservationBuffer {
    /// An empty buffer; call [`shape_for`](Self::shape_for) before use.
    pub fn new() -> Self {
        ObservationBuffer::default()
    }

    /// Shapes one observation per layout, reusing allocations. Call once
    /// at construction (or whenever the network changes); calling again
    /// with the same layouts is allocation-free after the first time.
    pub fn shape_for<'a>(&mut self, layouts: impl Iterator<Item = &'a IntersectionLayout>) {
        let mut n = 0;
        for layout in layouts {
            if n == self.observations.len() {
                self.observations.push(QueueObservation::zeros(layout));
            } else {
                self.observations[n].reshape_for(layout);
            }
            n += 1;
        }
        self.observations.truncate(n);
    }

    /// Number of observations in the buffer.
    pub fn len(&self) -> usize {
        self.observations.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.observations.is_empty()
    }

    /// The observation for intersection index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get(&self, i: usize) -> &QueueObservation {
        &self.observations[i]
    }

    /// Mutable observation for intersection index `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn get_mut(&mut self, i: usize) -> &mut QueueObservation {
        &mut self.observations[i]
    }

    /// All observations, indexed by intersection.
    pub fn as_slice(&self) -> &[QueueObservation] {
        &self.observations
    }

    /// All observations, mutably.
    pub fn as_mut_slice(&mut self) -> &mut [QueueObservation] {
        &mut self.observations
    }
}

/// A layout plus one observation: everything a controller may read at `k`.
///
/// All controller implementations in this workspace take an
/// `IntersectionView`, keeping them decentralized by construction — a view
/// exposes only quantities local to one intersection, exactly as the paper
/// requires ("all the inputs are local to the intersection").
#[derive(Debug, Clone, Copy)]
pub struct IntersectionView<'a> {
    layout: &'a IntersectionLayout,
    queues: &'a QueueObservation,
}

impl<'a> IntersectionView<'a> {
    /// Pairs a layout with an observation.
    ///
    /// # Errors
    ///
    /// Returns [`ObservationShapeError`] if the observation was not shaped
    /// for this layout.
    pub fn new(
        layout: &'a IntersectionLayout,
        queues: &'a QueueObservation,
    ) -> Result<Self, ObservationShapeError> {
        if queues.movement.len() != layout.num_links()
            || queues.outgoing.len() != layout.num_outgoing()
        {
            return Err(ObservationShapeError {
                expected_links: layout.num_links(),
                got_links: queues.movement.len(),
                expected_outgoing: layout.num_outgoing(),
                got_outgoing: queues.outgoing.len(),
            });
        }
        Ok(IntersectionView { layout, queues })
    }

    /// The static layout.
    pub fn layout(&self) -> &'a IntersectionLayout {
        self.layout
    }

    /// The raw observation.
    pub fn queues(&self) -> &'a QueueObservation {
        self.queues
    }

    /// `q_i^{i'}(k)` for `link`.
    pub fn movement_queue(&self, link: LinkId) -> u32 {
        self.queues.movement(link)
    }

    /// `q_{i'}(k)` for outgoing road `out`.
    pub fn outgoing_occupancy(&self, out: OutgoingId) -> u32 {
        self.queues.outgoing(out)
    }

    /// Total queue `q_i(k) = Σ_{i'} q_i^{i'}(k)` at incoming road `id`
    /// (Eq. 1).
    pub fn incoming_total(&self, id: IncomingId) -> u32 {
        self.layout
            .links_from(id)
            .iter()
            .map(|&l| self.queues.movement(l))
            .sum()
    }

    /// Whether outgoing road `out` has reached its capacity
    /// (`q_{i'}(k) = W_{i'}`).
    pub fn is_full(&self, out: OutgoingId) -> bool {
        self.queues.outgoing(out) >= self.layout.capacity(out)
    }

    /// Remaining storage on outgoing road `out`
    /// (`W_{i'} − q_{i'}(k)`, saturating at zero).
    pub fn residual_capacity(&self, out: OutgoingId) -> u32 {
        self.layout
            .capacity(out)
            .saturating_sub(self.queues.outgoing(out))
    }

    /// Whether activating `link` would serve at least one vehicle in the
    /// next mini-slot: its movement queue is non-empty and its outgoing road
    /// is not full.
    pub fn link_servable(&self, link: LinkId) -> bool {
        let l = self.layout.link(link);
        self.queues.movement(link) > 0 && !self.is_full(l.to())
    }

    /// Number of vehicles an activated `link` could transfer in one
    /// mini-slot: `min(⌊µ⌋ servable, queue, residual downstream capacity)`.
    pub fn link_service_bound(&self, link: LinkId) -> u32 {
        let l = self.layout.link(link);
        let mu = l.service_rate().floor().max(0.0) as u32;
        mu.min(self.queues.movement(link))
            .min(self.residual_capacity(l.to()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::standard;

    #[test]
    fn zeros_matches_layout_shape() {
        let layout = standard::four_way(120, 1.0);
        let obs = QueueObservation::zeros(&layout);
        assert_eq!(obs.movements().len(), layout.num_links());
        assert_eq!(obs.outgoings().len(), layout.num_outgoing());
    }

    #[test]
    fn from_vecs_validates_shape() {
        let layout = standard::four_way(120, 1.0);
        let err = QueueObservation::from_vecs(&layout, vec![0; 3], vec![0; 4]).unwrap_err();
        assert!(err.to_string().contains("shape mismatch"));
        let ok = QueueObservation::from_vecs(
            &layout,
            vec![1; layout.num_links()],
            vec![2; layout.num_outgoing()],
        );
        assert!(ok.is_ok());
    }

    #[test]
    fn incoming_total_sums_movements_per_eq1() {
        let layout = standard::four_way(120, 1.0);
        let mut obs = QueueObservation::zeros(&layout);
        let from_north = IncomingId::new(0);
        for (n, &l) in layout.links_from(from_north).iter().enumerate() {
            obs.set_movement(l, (n + 1) as u32);
        }
        let view = IntersectionView::new(&layout, &obs).unwrap();
        assert_eq!(view.incoming_total(from_north), 1 + 2 + 3);
        assert_eq!(view.incoming_total(IncomingId::new(1)), 0);
    }

    #[test]
    fn fullness_and_residual_capacity() {
        let layout = standard::four_way(10, 1.0);
        let mut obs = QueueObservation::zeros(&layout);
        let out = OutgoingId::new(2);
        obs.set_outgoing(out, 10);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        assert!(view.is_full(out));
        assert_eq!(view.residual_capacity(out), 0);
        assert!(!view.is_full(OutgoingId::new(0)));
        assert_eq!(view.residual_capacity(OutgoingId::new(0)), 10);
    }

    #[test]
    fn servability_requires_queue_and_space() {
        let layout = standard::four_way(5, 1.0);
        let mut obs = QueueObservation::zeros(&layout);
        let link = LinkId::new(0);
        let out = layout.link(link).to();

        let view = IntersectionView::new(&layout, &obs).unwrap();
        assert!(!view.link_servable(link), "empty movement queue");

        obs.set_movement(link, 3);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        assert!(view.link_servable(link));
        assert_eq!(view.link_service_bound(link), 1, "bounded by µ=1");

        obs.set_outgoing(out, 5);
        let view = IntersectionView::new(&layout, &obs).unwrap();
        assert!(!view.link_servable(link), "full outgoing road");
        assert_eq!(view.link_service_bound(link), 0);
    }

    #[test]
    fn view_rejects_mismatched_observation() {
        let four = standard::four_way(120, 1.0);
        let tiny = {
            let mut b = IntersectionLayout::builder();
            let i = b.add_incoming();
            let o = b.add_outgoing(10);
            let l = b.add_link(i, o, 1.0);
            b.add_phase(&[l]);
            b.build().unwrap()
        };
        let obs = QueueObservation::zeros(&tiny);
        assert!(IntersectionView::new(&four, &obs).is_err());
    }

    use crate::layout::IntersectionLayout;
}
