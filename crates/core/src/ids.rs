//! Intersection-local identifiers.
//!
//! The paper's intersection graph has incoming roads `N_i ∈ N_I`, outgoing
//! roads `N_{i'} ∈ N_O`, feasible links `L_i^{i'}` (turning movements), and
//! control phases `c_j`. These newtypes index into an
//! [`IntersectionLayout`](crate::IntersectionLayout)'s tables and are only
//! meaningful relative to one layout.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of an incoming road (`N_i ∈ N_I`) at one intersection.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct IncomingId(u8);

impl IncomingId {
    /// Creates an incoming-road id from its index in the layout table.
    pub const fn new(index: u8) -> Self {
        IncomingId(index)
    }

    /// Returns the index into the layout's incoming-road table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for IncomingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "in{}", self.0)
    }
}

/// Identifier of an outgoing road (`N_{i'} ∈ N_O`) at one intersection.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct OutgoingId(u8);

impl OutgoingId {
    /// Creates an outgoing-road id from its index in the layout table.
    pub const fn new(index: u8) -> Self {
        OutgoingId(index)
    }

    /// Returns the index into the layout's outgoing-road table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for OutgoingId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "out{}", self.0)
    }
}

/// Identifier of a feasible link `L_i^{i'}` (one turning movement).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct LinkId(u16);

impl LinkId {
    /// Creates a link id from its index in the layout's link table.
    pub const fn new(index: u16) -> Self {
        LinkId(index)
    }

    /// Returns the index into the layout's link table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{}", self.0)
    }
}

/// Identifier of a control phase `c_j ∈ C`.
///
/// The transition (amber) phase `c0` is *not* a `PhaseId`; it is represented
/// by [`PhaseDecision::Transition`](crate::PhaseDecision::Transition) because
/// it activates no links and carries distinct timing semantics.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct PhaseId(u8);

impl PhaseId {
    /// Creates a phase id from its index in the layout's phase table.
    pub const fn new(index: u8) -> Self {
        PhaseId(index)
    }

    /// Returns the index into the layout's phase table.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for PhaseId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Paper numbering: phases are c1..c4, transition is c0.
        write!(f, "c{}", self.0 + 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_round_trip_their_index() {
        assert_eq!(IncomingId::new(3).index(), 3);
        assert_eq!(OutgoingId::new(2).index(), 2);
        assert_eq!(LinkId::new(11).index(), 11);
        assert_eq!(PhaseId::new(1).index(), 1);
    }

    #[test]
    fn phase_display_uses_paper_numbering() {
        assert_eq!(PhaseId::new(0).to_string(), "c1");
        assert_eq!(PhaseId::new(3).to_string(), "c4");
    }

    #[test]
    fn displays_are_nonempty_and_distinct() {
        assert_eq!(IncomingId::new(1).to_string(), "in1");
        assert_eq!(OutgoingId::new(1).to_string(), "out1");
        assert_eq!(LinkId::new(1).to_string(), "L1");
    }

    #[test]
    fn ids_are_ordered_by_index() {
        assert!(LinkId::new(1) < LinkId::new(2));
        assert!(PhaseId::new(0) < PhaseId::new(3));
    }
}
