//! The utilization-aware adaptive back-pressure controller — Algorithm 1 of
//! the paper, the primary contribution being reproduced.
//!
//! [`UtilBp`] is invoked at every mini-slot, which is what enables
//! varying-length control phases. Per invocation it distinguishes three
//! cases:
//!
//! 1. **Ongoing transition** — the amber period `∆k` has not expired: keep
//!    `c0`.
//! 2. **Keep the current phase** — some link of the current phase has gain
//!    above the non-negative threshold `g*(k)` (Eq. 12 by default): junction
//!    utilization is still good, so avoid churning through amber.
//! 3. **Select a new phase** — among phases that guarantee some utilization
//!    (`g_max(c_j,k) > α`), pick the one with the highest total gain
//!    (best effort against instability); if no phase can guarantee flow,
//!    pick the one with the highest single-link gain. A change of phase
//!    (from a control phase) always passes through an amber of length `∆k`.

use serde::{Deserialize, Serialize};

use crate::controller::{PhaseDecision, SignalController};
use crate::ids::PhaseId;
use crate::observation::IntersectionView;
use crate::pressure::{self, GainPenalties};
use crate::time::{Tick, Ticks};

/// Policy for the keep-current-phase threshold `g*(k)` of Algorithm 1,
/// Line 3.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum GStarPolicy {
    /// Eq. 12: if the current phase's best link is `L_i^{i'}`, then
    /// `g*(k) = W*·µ_i^{i'}`. Under the ordinary gain (Eq. 6) this keeps
    /// the phase exactly while that link's pressure difference is positive.
    #[default]
    MaxLinkCapacityRate,
    /// A fixed threshold. Must be non-negative for the work-conservation
    /// property of Section IV to hold.
    Constant(f64),
    /// `g* = +∞`: Case 2 never holds and the phase choice is re-evaluated
    /// every mini-slot. This is the *no-hysteresis* ablation; it maximizes
    /// responsiveness but pays an amber on every change of preference.
    AlwaysReevaluate,
}

/// Which link gain Case 3 ranks phases by. [`GainMode::UtilizationAware`]
/// is the paper's Eq. 8; the others are ablations quantifying its two
/// ingredients.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum GainMode {
    /// Eq. 8: per-movement pressure, `W*` offset, `α`/`β` special cases.
    #[default]
    UtilizationAware,
    /// Eq. 6 only — no empty-incoming/full-outgoing discrimination
    /// (ablation "special cases off").
    PlainModified,
    /// Eq. 6 but with the *whole-road* incoming pressure `b_i` of Eq. 5
    /// instead of the per-movement `b_i^{i'}` (ablation for change (i) of
    /// Section III-A).
    PerRoadPressure,
}

/// Configuration of [`UtilBp`]. The defaults reproduce Section V of the
/// paper: `α = −1`, `β = −2`, `∆k = 4` mini-slots, `g*` per Eq. 12, gain
/// per Eq. 8.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct UtilBpConfig {
    /// The `α`/`β` penalties of Eq. 8.
    pub penalties: GainPenalties,
    /// Duration `∆k` of the transition (amber) phase.
    pub transition: Ticks,
    /// The keep-phase threshold policy (Line 3 / Eq. 12).
    pub g_star: GStarPolicy,
    /// The link-gain definition used for ranking.
    pub gain_mode: GainMode,
}

impl Default for UtilBpConfig {
    fn default() -> Self {
        UtilBpConfig {
            penalties: GainPenalties::PAPER,
            transition: Ticks::new(4),
            g_star: GStarPolicy::MaxLinkCapacityRate,
            gain_mode: GainMode::UtilizationAware,
        }
    }
}

/// Scores of one phase at one instant, as used by Algorithm 1
/// (exposed for tests, ablation studies, and debugging — C-INTERMEDIATE).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseScore {
    /// The phase being scored.
    pub phase: PhaseId,
    /// `g(c_j,k)` — the total gain (Eq. 10).
    pub total: f64,
    /// `g_max(c_j,k)` — the best link gain (Eq. 11).
    pub max: f64,
    /// The link attaining `g_max` (the paper's `L_max(c_j,k)`).
    pub argmax: crate::ids::LinkId,
}

/// The utilization-aware adaptive back-pressure controller (Algorithm 1).
///
/// # Examples
///
/// ```
/// use utilbp_core::{
///     standard, PhaseDecision, QueueObservation, IntersectionView,
///     SignalController, Tick, UtilBp,
/// };
///
/// let layout = standard::four_way(120, 1.0);
/// let mut obs = QueueObservation::zeros(&layout);
/// // Ten vehicles queued to go straight from the north.
/// obs.set_movement(
///     standard::link_id(standard::Approach::North, standard::Turn::Straight),
///     10,
/// );
///
/// let mut ctrl = UtilBp::paper();
/// let view = IntersectionView::new(&layout, &obs).unwrap();
/// let decision = ctrl.decide(&view, Tick::ZERO);
/// // c1 (north–south straight + left) is the only phase with flow.
/// assert_eq!(decision, PhaseDecision::Control(standard::phase_id(1)));
/// ```
#[derive(Debug, Clone)]
pub struct UtilBp {
    config: UtilBpConfig,
    /// `c(k−1)`.
    previous: PhaseDecision,
    /// The transition expiry `t_∆k` (global variable of Algorithm 1).
    transition_until: Tick,
}

impl UtilBp {
    /// Creates a controller with the given configuration.
    pub fn new(config: UtilBpConfig) -> Self {
        UtilBp {
            config,
            previous: PhaseDecision::Transition,
            transition_until: Tick::ZERO,
        }
    }

    /// Creates a controller with the paper's Section V parameters.
    pub fn paper() -> Self {
        UtilBp::new(UtilBpConfig::default())
    }

    /// The active configuration.
    pub fn config(&self) -> &UtilBpConfig {
        &self.config
    }

    /// The previous decision `c(k−1)` (initially `Transition` with an
    /// already-expired timer, so the first invocation selects a phase).
    pub fn previous_decision(&self) -> PhaseDecision {
        self.previous
    }

    /// The link gain under the configured [`GainMode`].
    fn gain(&self, view: &IntersectionView<'_>, link: crate::ids::LinkId) -> f64 {
        let layout = view.layout();
        let l = layout.link(link);
        match self.config.gain_mode {
            GainMode::UtilizationAware => pressure::link_gain(view, link, self.config.penalties),
            GainMode::PlainModified => pressure::modified_link_gain(
                view.movement_queue(link),
                view.outgoing_occupancy(l.to()),
                layout.max_capacity(),
                l.service_rate(),
            ),
            GainMode::PerRoadPressure => pressure::modified_link_gain(
                view.incoming_total(l.from()),
                view.outgoing_occupancy(l.to()),
                layout.max_capacity(),
                l.service_rate(),
            ),
        }
    }

    /// Scores every phase at the current instant (Eqs. 10–11 under the
    /// configured gain mode).
    pub fn phase_scores(&self, view: &IntersectionView<'_>) -> Vec<PhaseScore> {
        view.layout()
            .phase_ids()
            .map(|phase| {
                let links = view.layout().phase(phase).links();
                let mut total = 0.0;
                let mut max = f64::NEG_INFINITY;
                let mut argmax = links[0];
                for &l in links {
                    let g = self.gain(view, l);
                    total += g;
                    if g > max {
                        max = g;
                        argmax = l;
                    }
                }
                PhaseScore {
                    phase,
                    total,
                    max,
                    argmax,
                }
            })
            .collect()
    }

    /// The keep-phase threshold `g*(k)` for the current phase, given the
    /// link attaining its `g_max`.
    fn g_star(&self, view: &IntersectionView<'_>, argmax: crate::ids::LinkId) -> f64 {
        match self.config.g_star {
            GStarPolicy::MaxLinkCapacityRate => {
                // Eq. 12: g* = W*·µ of the current phase's best link.
                view.layout().max_capacity() as f64 * view.layout().link(argmax).service_rate()
            }
            GStarPolicy::Constant(v) => v,
            GStarPolicy::AlwaysReevaluate => f64::INFINITY,
        }
    }

    /// Lines 6–11 of Algorithm 1: select the candidate next phase `c'`,
    /// scoring phases on the fly (no per-decision allocation — this sits
    /// on the simulators' per-tick hot path).
    ///
    /// Exact ties resolve in favor of the current phase (avoiding a
    /// gratuitous amber), then in phase-table order. Equivalent to
    /// ranking the full [`phase_scores`](Self::phase_scores) table: one
    /// tracker ranks utilizable phases (`g_max > α`) by total gain
    /// (Line 8), the other ranks all phases by `g_max` (Line 10); the
    /// first tracker wins whenever it is non-empty.
    fn select_phase(&self, view: &IntersectionView<'_>) -> PhaseId {
        let alpha = self.config.penalties.alpha();
        let current = self.previous.phase();
        // (key, phase) trackers, updated in phase-table order with the
        // same comparison the table-based ranking used.
        let mut best_utilizable: Option<(f64, PhaseId)> = None;
        let mut best_any: Option<(f64, PhaseId)> = None;
        let prefer = |best: &mut Option<(f64, PhaseId)>, key: f64, phase: PhaseId| {
            *best = match *best {
                None => Some((key, phase)),
                Some(b) => {
                    if key > b.0 || (key == b.0 && current == Some(phase)) {
                        Some((key, phase))
                    } else {
                        Some(b)
                    }
                }
            };
        };
        for phase in view.layout().phase_ids() {
            let links = view.layout().phase(phase).links();
            let mut total = 0.0;
            let mut max = f64::NEG_INFINITY;
            for &l in links {
                let g = self.gain(view, l);
                total += g;
                max = max.max(g);
            }
            if max > alpha {
                prefer(&mut best_utilizable, total, phase);
            }
            prefer(&mut best_any, max, phase);
        }
        best_utilizable
            .or(best_any)
            .map(|(_, phase)| phase)
            .expect("layout validation guarantees at least one phase")
    }
}

impl SignalController for UtilBp {
    fn decide(&mut self, view: &IntersectionView<'_>, now: Tick) -> PhaseDecision {
        // Case 1 (Lines 1–2): ongoing transition.
        if self.previous.is_transition() && now < self.transition_until {
            return PhaseDecision::Transition;
        }

        // Case 2 (Lines 3–4): keep the current phase while it still offers
        // reasonable utilization.
        if let PhaseDecision::Control(current) = self.previous {
            let (gmax, argmax) = phase_gain_max_under(self, view, current);
            if gmax > self.g_star(view, argmax) {
                return PhaseDecision::Control(current);
            }
        }

        // Case 3 (Lines 5–18): pick the best next phase.
        let candidate = self.select_phase(view);

        let decision = if self.previous == PhaseDecision::Control(candidate)
            || self.previous.is_transition()
        {
            // Line 12–13: same phase, or transition just expired.
            PhaseDecision::Control(candidate)
        } else {
            // Lines 14–16: different phase — go through amber first.
            self.transition_until = now + self.config.transition;
            PhaseDecision::Transition
        };
        self.previous = decision;
        decision
    }

    fn reset(&mut self) {
        self.previous = PhaseDecision::Transition;
        self.transition_until = Tick::ZERO;
    }

    fn save_state(&self, writer: &mut crate::state::StateWriter) {
        writer.push(self.previous.state_word());
        writer.push(self.transition_until.index());
    }

    fn load_state(
        &mut self,
        reader: &mut crate::state::StateReader<'_>,
    ) -> Result<(), crate::state::StateError> {
        self.previous = PhaseDecision::from_state_word(reader.take()?)?;
        self.transition_until = Tick::new(reader.take()?);
        Ok(())
    }

    fn name(&self) -> &'static str {
        match (self.config.gain_mode, self.config.g_star) {
            (GainMode::UtilizationAware, GStarPolicy::AlwaysReevaluate) => "util-bp/no-hysteresis",
            (GainMode::PlainModified, _) => "util-bp/no-special-cases",
            (GainMode::PerRoadPressure, _) => "util-bp/per-road-pressure",
            _ => "util-bp",
        }
    }
}

/// `g_max` of one phase under the controller's configured gain mode.
fn phase_gain_max_under(
    ctrl: &UtilBp,
    view: &IntersectionView<'_>,
    phase: PhaseId,
) -> (f64, crate::ids::LinkId) {
    let links = view.layout().phase(phase).links();
    let mut best = (f64::NEG_INFINITY, links[0]);
    for &l in links {
        let g = ctrl.gain(view, l);
        if g > best.0 {
            best = (g, l);
        }
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::observation::QueueObservation;
    use crate::standard::{self, Approach, Turn};

    fn layout() -> crate::IntersectionLayout {
        standard::four_way(120, 1.0)
    }

    fn decide(
        ctrl: &mut UtilBp,
        layout: &crate::IntersectionLayout,
        obs: &QueueObservation,
        now: u64,
    ) -> PhaseDecision {
        let view = IntersectionView::new(layout, obs).unwrap();
        ctrl.decide(&view, Tick::new(now))
    }

    #[test]
    fn first_decision_picks_the_loaded_phase() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 8);
        let mut ctrl = UtilBp::paper();
        let d = decide(&mut ctrl, &layout, &obs, 0);
        assert_eq!(d, PhaseDecision::Control(standard::phase_id(3)));
    }

    #[test]
    fn keeps_phase_while_pressure_difference_positive() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 10);
        let mut ctrl = UtilBp::paper();
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 0),
            PhaseDecision::Control(standard::phase_id(1))
        );

        // Outgoing road fills up to just below the incoming queue: pressure
        // difference still positive → keep.
        obs.set_outgoing(layout.link(ns).to(), 9);
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 1),
            PhaseDecision::Control(standard::phase_id(1))
        );

        // Pressure difference hits zero: g = W*µ = g*, no longer *greater*,
        // so Case 2 fails and Case 3 re-selects. With the east approach now
        // loaded, control moves away (through amber).
        obs.set_outgoing(layout.link(ns).to(), 10);
        obs.set_movement(standard::link_id(Approach::East, Turn::Straight), 30);
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 2),
            PhaseDecision::Transition
        );
    }

    #[test]
    fn transition_runs_for_delta_k_then_new_phase_applies() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        let ew = standard::link_id(Approach::East, Turn::Straight);
        obs.set_movement(ns, 5);
        let mut ctrl = UtilBp::paper();
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 0),
            PhaseDecision::Control(standard::phase_id(1))
        );

        // Drain the north queue, load the east: switch through amber.
        obs.set_movement(ns, 0);
        obs.set_movement(ew, 12);
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 1),
            PhaseDecision::Transition
        );
        // ∆k = 4: amber at k = 2, 3, 4 (timer set to expire at k = 5).
        for k in 2..5 {
            assert_eq!(
                decide(&mut ctrl, &layout, &obs, k),
                PhaseDecision::Transition,
                "amber must persist at k={k}"
            );
        }
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 5),
            PhaseDecision::Control(standard::phase_id(3))
        );
    }

    #[test]
    fn empty_intersection_settles_without_thrashing() {
        let layout = layout();
        let obs = QueueObservation::zeros(&layout);
        let mut ctrl = UtilBp::paper();
        let first = decide(&mut ctrl, &layout, &obs, 0);
        // All gains are α; Line 10 picks a deterministic phase.
        let PhaseDecision::Control(p) = first else {
            panic!("expected a control phase, got {first}");
        };
        // And it must stick with it on subsequent ticks (tie prefers the
        // current phase), never inserting ambers while nothing changes.
        for k in 1..50 {
            assert_eq!(
                decide(&mut ctrl, &layout, &obs, k),
                PhaseDecision::Control(p)
            );
        }
    }

    #[test]
    fn full_outgoing_roads_cut_the_phase_short() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        let nl = standard::link_id(Approach::North, Turn::Left);
        obs.set_movement(ns, 20);
        obs.set_movement(nl, 10);
        let mut ctrl = UtilBp::paper();
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 0),
            PhaseDecision::Control(standard::phase_id(1))
        );

        // The two exits used by the loaded north approach fill to capacity
        // (south and east arms); queues remain but every c1 link now gains
        // β or α. c4 (east-west right turns) still has a servable vehicle
        // exiting toward the open north arm.
        obs.set_outgoing(layout.link(ns).to(), 120);
        obs.set_outgoing(layout.link(nl).to(), 120);
        obs.set_movement(standard::link_id(Approach::East, Turn::Right), 3);
        let d = decide(&mut ctrl, &layout, &obs, 1);
        assert_eq!(
            d,
            PhaseDecision::Transition,
            "a blocked phase must be abandoned within one mini-slot"
        );
    }

    #[test]
    fn fully_blocked_junction_keeps_current_phase() {
        // When *every* exit of the junction is full, no phase can guarantee
        // utilization; Line 10 picks the best link gain and the tie rule
        // keeps the current phase — at most one mini-slot is wasted, and no
        // amber is churned while the neighbors drain.
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 20);
        let mut ctrl = UtilBp::paper();
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 0),
            PhaseDecision::Control(standard::phase_id(1))
        );
        for o in layout.outgoing_ids() {
            obs.set_outgoing(o, 120);
        }
        for k in 1..10 {
            assert_eq!(
                decide(&mut ctrl, &layout, &obs, k),
                PhaseDecision::Control(standard::phase_id(1)),
                "no amber churn while fully blocked (k={k})"
            );
        }
    }

    #[test]
    fn case3_prefers_guaranteed_utilization_over_raw_gain() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        // c1's best link is blocked (full outgoing) but c1 has a huge queue;
        // c4 can actually serve one vehicle.
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 100);
        obs.set_outgoing(layout.link(ns).to(), 120);
        let er = standard::link_id(Approach::East, Turn::Right);
        obs.set_movement(er, 1);

        let mut ctrl = UtilBp::paper();
        let d = decide(&mut ctrl, &layout, &obs, 0);
        assert_eq!(
            d,
            PhaseDecision::Control(standard::phase_id(4)),
            "the only phase with g_max > α must win"
        );
    }

    #[test]
    fn all_blocked_falls_back_to_best_link_gain() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        // Every outgoing road full, all movement queues loaded: every link
        // gains β, so Line 10 applies and a control phase is still chosen
        // (no amber churn while blocked).
        for l in layout.link_ids() {
            obs.set_movement(l, 10);
        }
        for o in layout.outgoing_ids() {
            obs.set_outgoing(o, 120);
        }
        let mut ctrl = UtilBp::paper();
        let d = decide(&mut ctrl, &layout, &obs, 0);
        assert!(d.phase().is_some());
        // Stays put afterwards (ties prefer current).
        let d2 = decide(&mut ctrl, &layout, &obs, 1);
        assert_eq!(d, d2);
    }

    #[test]
    fn no_hysteresis_ablation_reevaluates_every_slot() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        let ew = standard::link_id(Approach::East, Turn::Straight);
        obs.set_movement(ns, 10);
        obs.set_movement(ew, 9);

        let mut ctrl = UtilBp::new(UtilBpConfig {
            g_star: GStarPolicy::AlwaysReevaluate,
            ..UtilBpConfig::default()
        });
        assert_eq!(ctrl.name(), "util-bp/no-hysteresis");
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 0),
            PhaseDecision::Control(standard::phase_id(1))
        );
        // The east queue overtakes: with no hysteresis the controller
        // immediately pays an amber to chase it.
        obs.set_movement(ew, 11);
        assert_eq!(
            decide(&mut ctrl, &layout, &obs, 1),
            PhaseDecision::Transition
        );

        // The paper controller would have kept c1 (its pressure difference
        // is still positive).
        let mut paper = UtilBp::paper();
        let mut obs2 = QueueObservation::zeros(&layout);
        obs2.set_movement(ns, 10);
        obs2.set_movement(ew, 9);
        assert_eq!(
            decide(&mut paper, &layout, &obs2, 0),
            PhaseDecision::Control(standard::phase_id(1))
        );
        obs2.set_movement(ew, 11);
        assert_eq!(
            decide(&mut paper, &layout, &obs2, 1),
            PhaseDecision::Control(standard::phase_id(1))
        );
    }

    #[test]
    fn reset_restores_initial_state() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        obs.set_movement(standard::link_id(Approach::North, Turn::Straight), 5);
        let mut ctrl = UtilBp::paper();
        let first = decide(&mut ctrl, &layout, &obs, 0);
        let _ = decide(&mut ctrl, &layout, &obs, 1);
        ctrl.reset();
        assert_eq!(ctrl.previous_decision(), PhaseDecision::Transition);
        assert_eq!(decide(&mut ctrl, &layout, &obs, 100), first);
    }

    #[test]
    fn phase_scores_expose_eq10_eq11() {
        let layout = layout();
        let mut obs = QueueObservation::zeros(&layout);
        let ns = standard::link_id(Approach::North, Turn::Straight);
        obs.set_movement(ns, 10);
        let ctrl = UtilBp::paper();
        let view = IntersectionView::new(&layout, &obs).unwrap();
        let scores = ctrl.phase_scores(&view);
        assert_eq!(scores.len(), 4);
        let c1 = &scores[0];
        assert_eq!(c1.argmax, ns);
        assert_eq!(c1.max, 130.0); // (10 − 0 + 120)·1
                                   // total = 130 + 3·α (three empty links in c1)
        assert_eq!(c1.total, 130.0 - 3.0);
        // c2 has two empty links → total 2α, max α.
        assert_eq!(scores[1].total, -2.0);
        assert_eq!(scores[1].max, -1.0);
    }

    #[test]
    fn default_config_matches_paper_section_v() {
        let config = UtilBpConfig::default();
        assert_eq!(config.penalties.alpha(), -1.0);
        assert_eq!(config.penalties.beta(), -2.0);
        assert_eq!(config.transition, Ticks::new(4));
        assert_eq!(config.g_star, GStarPolicy::MaxLinkCapacityRate);
        assert_eq!(config.gain_mode, GainMode::UtilizationAware);
    }
}
