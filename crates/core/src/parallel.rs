//! Shard-parallel execution of intersection-local work.
//!
//! Back-pressure control is decentralized by construction: each
//! controller reads only its own intersection's observation, so the
//! decide phase of a network step is embarrassingly parallel. This module
//! owns the execution-mode switch ([`Parallelism`]) and a fork-join
//! helper ([`for_each_indexed_mut`]) the simulation substrates use to
//! shard that work (and the per-road car-following phase) across threads
//! via `rayon::scope` — backed by a persistent worker pool, so a
//! per-tick fork-join costs a channel handoff, not thread spawns.
//!
//! Determinism: every parallel unit writes only to its own element, so a
//! run's outputs are identical whatever the thread count — [`Parallelism::Serial`]
//! and [`Parallelism::Rayon`] produce bit-identical step reports, which
//! the cross-mode tests in both substrates assert.

use serde::{Deserialize, Serialize};

use crate::controller::{PhaseDecision, SignalController};
use crate::layout::IntersectionLayout;
use crate::observation::{IntersectionView, ObservationBuffer};
use crate::time::Tick;

/// How a simulator distributes per-intersection and per-road work within
/// one step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Parallelism {
    /// Everything on the calling thread. The default: zero coordination
    /// overhead, and the right choice below ~25 intersections where a
    /// step is cheaper than a fork-join.
    #[default]
    Serial,
    /// Shard independent phases across threads with `rayon::scope` (a
    /// persistent worker pool — the per-step cost is a channel handoff
    /// and a latch wait, not thread spawns). Wins once per-step work
    /// dominates that handoff (microscopic car-following, larger grids).
    Rayon,
}

impl Parallelism {
    /// The number of workers to fork for `items` independent units: 1 in
    /// serial mode, else bounded by the available cores and by `items`
    /// (never more shards than units of work).
    pub fn workers(self, items: usize) -> usize {
        match self {
            Parallelism::Serial => 1,
            Parallelism::Rayon => rayon::current_num_threads().min(items).max(1),
        }
    }
}

/// One controller plus its latest decision — the unit of work of the
/// shard-parallel decide phase. Each shard owns its slot exclusively, so
/// writing `decision` needs no synchronization.
pub struct ControllerSlot {
    /// The intersection's controller.
    pub controller: Box<dyn SignalController>,
    /// The controller's decision for the current step.
    pub decision: PhaseDecision,
}

impl ControllerSlot {
    /// Wraps one controller per intersection into decide slots
    /// (initialized to [`PhaseDecision::Transition`]).
    pub fn wrap_all(controllers: Vec<Box<dyn SignalController>>) -> Vec<ControllerSlot> {
        controllers
            .into_iter()
            .map(|controller| ControllerSlot {
                controller,
                decision: PhaseDecision::Transition,
            })
            .collect()
    }
}

/// The decide phase of a network step: every slot's controller reads its
/// own observation (via `layout_of(index)` and `observations`) and writes
/// its decision, sharded across threads per `mode`.
///
/// Shared by both simulation substrates so their decide semantics cannot
/// drift.
///
/// # Panics
///
/// Panics if an observation in the buffer is not shaped for the layout
/// `layout_of` returns at the same index.
pub fn decide_all<'a, F>(
    mode: Parallelism,
    slots: &mut [ControllerSlot],
    observations: &ObservationBuffer,
    now: Tick,
    layout_of: F,
) where
    F: Fn(usize) -> &'a IntersectionLayout + Sync,
{
    for_each_indexed_mut(mode, slots, |idx, slot| {
        let view = IntersectionView::new(layout_of(idx), observations.get(idx))
            .expect("observation buffer shaped from the same layout");
        slot.decision = slot.controller.decide(&view, now);
    });
}

/// Applies `f(index, &mut item)` to every element, sharded across threads
/// per `mode`.
///
/// Each element is visited exactly once and only by one worker, so `f`
/// may freely mutate its element; shared context captured by `f` is read
/// by all workers concurrently and must therefore be `Sync`. Results are
/// independent of the shard count by construction.
pub fn for_each_indexed_mut<T, F>(mode: Parallelism, items: &mut [T], f: F)
where
    T: Send,
    F: Fn(usize, &mut T) + Sync,
{
    let workers = mode.workers(items.len());
    if workers <= 1 {
        for (i, item) in items.iter_mut().enumerate() {
            f(i, item);
        }
        return;
    }
    let chunk = items.len().div_ceil(workers);
    let f = &f;
    rayon::scope(|s| {
        for (c, slice) in items.chunks_mut(chunk).enumerate() {
            s.spawn(move || {
                for (i, item) in slice.iter_mut().enumerate() {
                    f(c * chunk + i, item);
                }
            });
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_and_rayon_produce_identical_results() {
        let mut serial: Vec<u64> = vec![0; 257];
        let mut parallel = serial.clone();
        let work = |i: usize, x: &mut u64| *x = (i as u64).wrapping_mul(0x9E37) ^ 7;
        for_each_indexed_mut(Parallelism::Serial, &mut serial, work);
        for_each_indexed_mut(Parallelism::Rayon, &mut parallel, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn worker_counts_are_bounded() {
        assert_eq!(Parallelism::Serial.workers(100), 1);
        assert!(Parallelism::Rayon.workers(100) >= 1);
        assert!(Parallelism::Rayon.workers(3) <= 3);
        assert_eq!(Parallelism::Rayon.workers(0), 1);
    }

    #[test]
    fn empty_and_single_item_slices_are_fine() {
        let mut empty: Vec<u32> = Vec::new();
        for_each_indexed_mut(Parallelism::Rayon, &mut empty, |_, _| {});
        let mut one = vec![5u32];
        for_each_indexed_mut(Parallelism::Rayon, &mut one, |_, x| *x += 1);
        assert_eq!(one, vec![6]);
    }
}
