//! # utilbp-bench
//!
//! Benchmark support for the adaptive back-pressure workspace. The actual
//! targets live under `benches/`:
//!
//! - `controller_decide`, `sim_throughput` — Criterion micro-benchmarks
//!   (controller decision latency, simulator step throughput, grid-size
//!   scaling);
//! - `fig2_period_sweep`, `table3_patterns`, `fig3_fig4_phase_traces`,
//!   `fig5_queue_lengths` — regenerate the paper's evaluation artifacts
//!   (`cargo bench -p utilbp-bench --bench fig2_period_sweep` prints the
//!   same rows/series the paper reports);
//! - `ablation_mechanisms`, `ablation_sensors` — extension studies from
//!   DESIGN.md (which UTIL-BP mechanism buys what; detector-range
//!   sensitivity).
//!
//! By default the regeneration targets run at a reduced scale (15-minute
//! pattern hours) so `cargo bench` finishes in minutes; set `UTILBP_FULL=1`
//! for the paper's full 1-hour/4-hour horizons, and see
//! [`bench_options`] for the exact policy.
//!
//! The plain `sim_throughput` *binary* (no Criterion) writes the
//! machine-readable perf trajectory; its JSON rendering and the
//! structural invariants CI checks on it live in [`trajectory`] (shared
//! with the `verify_bench` binary, and unit-tested so the invariants run
//! locally via `cargo test -p utilbp-bench`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod trajectory;

use utilbp_core::Ticks;
use utilbp_experiments::ExperimentOptions;

/// Options used by the table/figure regeneration bench targets: the
/// paper's setup, scaled down unless `UTILBP_FULL=1` is set.
///
/// The scaled version keeps the microscopic backend and the full trace
/// horizon (Figs. 3–5 are cheap) but shortens the pattern hour to 900 s
/// and coarsens the period sweep.
pub fn bench_options() -> ExperimentOptions {
    let mut opts = ExperimentOptions::paper();
    if std::env::var("UTILBP_FULL").is_ok_and(|v| v == "1") {
        return opts;
    }
    opts.hour = Ticks::new(900);
    opts.periods = vec![10, 14, 18, 22, 28, 40, 60, 80];
    opts
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_options_are_scaled_by_default() {
        // The test environment does not set UTILBP_FULL.
        if std::env::var("UTILBP_FULL").is_err() {
            let opts = bench_options();
            assert_eq!(opts.hour, Ticks::new(900));
            assert!(opts.periods.len() >= 6);
        }
    }
}
