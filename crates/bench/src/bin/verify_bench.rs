//! CI gate for the `sim_throughput` perf-trajectory JSON.
//!
//! ```text
//! verify_bench <trajectory.json> <expected-label>...
//! ```
//!
//! Exits non-zero (with the violated invariant on stderr) unless the file
//! passes [`utilbp_bench::trajectory::verify_trajectory`]: the run labels
//! match the expected sequence exactly, the newest run carries every
//! required workload row (both replanning scenarios on both substrates),
//! and a per-phase breakdown is present. The same checks run locally via
//! `cargo test -p utilbp-bench`. The file format the invariants assume
//! is documented in `docs/PERFORMANCE.md`.

use utilbp_bench::trajectory::verify_trajectory;

fn main() {
    let mut args = std::env::args().skip(1);
    let path = args.next().unwrap_or_else(|| {
        eprintln!("usage: verify_bench <trajectory.json> <expected-label>...");
        std::process::exit(2);
    });
    let expected: Vec<String> = args.collect();
    assert!(
        !expected.is_empty(),
        "pass the expected run labels in order"
    );
    let text = std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
    let labels: Vec<&str> = expected.iter().map(String::as_str).collect();
    match verify_trajectory(&text, &labels) {
        Ok(()) => println!("{path}: trajectory invariants hold ({} runs)", labels.len()),
        Err(e) => {
            eprintln!("{path}: {e}");
            eprintln!("(run-entry schema and invariants: docs/PERFORMANCE.md)");
            std::process::exit(1);
        }
    }
}
