//! One-number probe: in-situ follower-phase cost in ns/vehicle at 10×10.
//!
//! Steps the 10×10 grid exactly like the `sim_throughput` grid rows
//! (Pattern I, seed 7, 300 warmup ticks) but accumulates the
//! car-following phase seconds *and* the vehicle-tick count over the
//! measured window, so the quotient is the honest per-vehicle cost of
//! the phase — the number ROADMAP item 1 tracks.

use utilbp_core::{SignalController, Tick, Ticks, UtilBp};
use utilbp_microsim::{Fidelity, MicroSim, MicroSimConfig, PhaseTimings, StepReport};
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};

fn main() {
    let ticks: u64 = std::env::var("PROBE_TICKS")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(600);
    for fidelity in [Fidelity::Exact, Fidelity::Batched] {
        let grid = GridNetwork::new(GridSpec::with_size(10, 10));
        let n = grid.topology().num_intersections();
        let controllers: Vec<Box<dyn SignalController>> = (0..n)
            .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
            .collect();
        let mut sim = MicroSim::new(
            grid.topology().clone(),
            controllers,
            MicroSimConfig {
                fidelity,
                ..MicroSimConfig::default()
            },
        );
        let mut gen = DemandGenerator::new(
            &grid,
            DemandConfig::new(DemandSchedule::constant(
                Pattern::I,
                Ticks::new(u64::MAX / 2),
            )),
            7,
        );
        let mut k = 0u64;
        let mut arrivals = Vec::new();
        let mut report = StepReport::empty();
        for _ in 0..300 {
            arrivals.clear();
            gen.poll_into(&grid, Tick::new(k), &mut arrivals);
            sim.step_into(&mut arrivals, &mut report);
            k += 1;
        }
        let mut phases = PhaseTimings::default();
        let mut vehicle_ticks = 0u64;
        for _ in 0..ticks {
            arrivals.clear();
            gen.poll_into(&grid, Tick::new(k), &mut arrivals);
            sim.step_into_timed(&mut arrivals, &mut report, &mut phases);
            vehicle_ticks += sim.vehicles_in_network() as u64;
            k += 1;
        }
        println!(
            "{fidelity:?}: car_following {:.4}s over {ticks} ticks, {vehicle_ticks} vehicle-ticks -> {:.2} ns/vehicle (mean fleet {:.0})",
            phases.car_following,
            phases.car_following * 1e9 / vehicle_ticks as f64,
            vehicle_ticks as f64 / ticks as f64,
        );
    }
}
