//! Plain `--release` throughput runner for the perf-tracking harness.
//!
//! Measures steady-state simulator step throughput (ticks/second) per
//! substrate × workload × parallelism mode under UTIL-BP control and
//! writes the machine-readable `BENCH_sim_throughput.json`
//! (`cargo run --release -p utilbp-bench --bin sim_throughput`).
//!
//! Workloads: square grids (3×3 … 20×20, Pattern I demand) plus
//! scenario-driven rows (the built-in `arterial-rush-hour`,
//! `grid-incident-replan`, and `grid-congestion-replan` scenarios stepped
//! through `ScenarioEngine`, so demand scheduling, event dispatch, and —
//! for the replanning rows — the closure-diversion and periodic
//! congestion-replanning paths are inside the measured run, the
//! `grid-degraded-recovery` / `grid-degraded-recovery+recorder` pair
//! measures the flight recorder's off/on cost on a busy event stream,
//! and the `grid-degraded-recovery+ckpt256` row prices the durable
//! state plane's periodic full-engine checkpoint captures).
//! Every simulator is built through `utilbp-substrate`'s shared
//! constructor
//! and stepped through the `TrafficSubstrate` trait, exactly like the
//! production drivers. Microscopic grid rows also record a per-phase
//! wall-clock breakdown (decide / car-following / landings / waiting,
//! via the trait's timed step on a separate rep) so future optimization
//! PRs can attribute their wins.
//!
//! Each invocation **appends** a run object to the JSON's `runs` array —
//! the perf trajectory across PRs is preserved, never overwritten (a
//! pre-existing single-run file from the old flat format is migrated to
//! `runs[0]`). Unlike the Criterion `sim_throughput` bench target, this
//! runner has no harness dependency, uses a fixed warm-up +
//! measured-tick protocol (best of `BENCH_REPS` repetitions, default 3,
//! to shrug off scheduler noise), and always emits JSON, which makes its
//! numbers directly comparable between commits. Scale knobs:
//! `BENCH_TICKS=<n>` overrides the measured tick count, `BENCH_REPS=<n>`
//! the repetition count, `BENCH_OUT=<path>` the output path,
//! `BENCH_LABEL=<s>` the run label recorded in the protocol.
//!
//! Microscopic grid rows are measured under **both** car-following
//! contracts — the exact sequential Krauss update and the batched kernel
//! (`+batched` workload suffix) — so every run carries its own
//! exact/batched speedup pair. `--fidelity exact|batched` additionally
//! retargets the scenario-driven rows (suffixing their workloads), so any
//! builtin can be priced under the batched kernel.

use std::time::Instant;

use utilbp_bench::trajectory::{append_run, render_run, Measurement};
use utilbp_core::{Parallelism, SignalController, Tick, Ticks, UtilBp};
use utilbp_microsim::{Fidelity, MicroSimConfig, PhaseTimings};
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};
use utilbp_scenario::{builtin, Backend, CheckpointPolicy, EngineConfig, ScenarioEngine};
use utilbp_substrate::{build_substrate, SubstrateScratch};

const WARMUP_TICKS: u64 = 300;

fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

fn demand(grid: &GridNetwork) -> DemandGenerator {
    DemandGenerator::new(
        grid,
        DemandConfig::new(DemandSchedule::constant(
            Pattern::I,
            Ticks::new(u64::MAX / 2),
        )),
        7,
    )
}

/// Grid workload on either backend, built through the shared substrate
/// constructor and stepped through the `TrafficSubstrate` trait.
/// Microscopic rows add one instrumented rep for phase attribution
/// (kept out of the headline measurement so the `Instant` reads cannot
/// skew it); the queueing substrate has no phase breakdown.
fn measure_grid(
    backend: Backend,
    size: u32,
    mode: Parallelism,
    fidelity: Fidelity,
    ticks: u64,
    reps: u32,
) -> Measurement {
    let grid = GridNetwork::new(GridSpec::with_size(size, size));
    let n = grid.topology().num_intersections();
    let mut sim = build_substrate(
        backend,
        grid.topology().clone(),
        controllers(n),
        MicroSimConfig {
            parallelism: mode,
            fidelity,
            ..MicroSimConfig::default()
        },
    );
    let mut gen = demand(&grid);
    let mut k = 0u64;
    let mut scratch = SubstrateScratch::new();
    let mut arrivals = Vec::new();
    for _ in 0..WARMUP_TICKS {
        arrivals.clear();
        gen.poll_into(&grid, Tick::new(k), &mut arrivals);
        sim.step_into(&mut arrivals, &mut scratch);
        k += 1;
    }
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..ticks {
            arrivals.clear();
            gen.poll_into(&grid, Tick::new(k), &mut arrivals);
            sim.step_into(&mut arrivals, &mut scratch);
            k += 1;
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let phases = match backend {
        Backend::Queueing => None,
        Backend::Microscopic => {
            let mut phases = PhaseTimings::default();
            for _ in 0..ticks {
                arrivals.clear();
                gen.poll_into(&grid, Tick::new(k), &mut arrivals);
                sim.step_into_timed(&mut arrivals, &mut scratch, &mut phases);
                k += 1;
            }
            Some(phases)
        }
    };
    let mut workload = format!("{size}x{size}");
    if fidelity == Fidelity::Batched {
        workload.push_str("+batched");
    }
    Measurement {
        substrate: backend.name(),
        workload,
        mode,
        ticks,
        seconds: best,
        phases,
    }
}

/// The microscopic exact/batched pair for one grid row, measured with
/// the reps *interleaved*: both sims are built and warmed first, then
/// each rep times an exact window immediately followed by a batched
/// window, and each side keeps its best. On a shared box, throughput
/// drifts by tens of percent across a run (see the PR 5 / PR 9 bench
/// notes) — sequential rows sample different drift windows and the
/// comparison inherits the drift. Interleaving puts both contracts in
/// the same windows, so the pairwise ratio is trustworthy even when the
/// absolute numbers wobble.
fn measure_grid_fidelity_pair(
    size: u32,
    mode: Parallelism,
    ticks: u64,
    reps: u32,
) -> (Measurement, Measurement) {
    let grid = GridNetwork::new(GridSpec::with_size(size, size));
    let n = grid.topology().num_intersections();
    let build = |fidelity| {
        (
            build_substrate(
                Backend::Microscopic,
                grid.topology().clone(),
                controllers(n),
                MicroSimConfig {
                    parallelism: mode,
                    fidelity,
                    ..MicroSimConfig::default()
                },
            ),
            demand(&grid),
            0u64,
        )
    };
    let mut pair = [build(Fidelity::Exact), build(Fidelity::Batched)];
    let mut scratch = SubstrateScratch::new();
    let mut arrivals = Vec::new();
    for (sim, gen, k) in pair.iter_mut() {
        for _ in 0..WARMUP_TICKS {
            arrivals.clear();
            gen.poll_into(&grid, Tick::new(*k), &mut arrivals);
            sim.step_into(&mut arrivals, &mut scratch);
            *k += 1;
        }
    }
    let mut best = [f64::INFINITY; 2];
    for _ in 0..reps.max(1) {
        for (i, (sim, gen, k)) in pair.iter_mut().enumerate() {
            let start = Instant::now();
            for _ in 0..ticks {
                arrivals.clear();
                gen.poll_into(&grid, Tick::new(*k), &mut arrivals);
                sim.step_into(&mut arrivals, &mut scratch);
                *k += 1;
            }
            best[i] = best[i].min(start.elapsed().as_secs_f64());
        }
    }
    let measurements = pair.iter_mut().zip(best).map(|((sim, gen, k), best)| {
        let mut phases = PhaseTimings::default();
        for _ in 0..ticks {
            arrivals.clear();
            gen.poll_into(&grid, Tick::new(*k), &mut arrivals);
            sim.step_into_timed(&mut arrivals, &mut scratch, &mut phases);
            *k += 1;
        }
        (best, phases)
    });
    let mut out = Vec::new();
    for (i, (seconds, phases)) in measurements.enumerate() {
        let mut workload = format!("{size}x{size}");
        if i == 1 {
            workload.push_str("+batched");
        }
        out.push(Measurement {
            substrate: Backend::Microscopic.name(),
            workload,
            mode,
            ticks,
            seconds,
            phases: Some(phases),
        });
    }
    let batched = out.pop().expect("two rows");
    let exact = out.pop().expect("two rows");
    (exact, batched)
}

/// Scenario-driven row: the whole per-tick path of a scenario run —
/// event dispatch, schedule-driven demand, stepping, and (for scenarios
/// that enable it) en-route replanning — measured through
/// [`ScenarioEngine`].
fn measure_scenario(
    name: &str,
    backend: Backend,
    fidelity: Fidelity,
    ticks: u64,
    reps: u32,
) -> Measurement {
    measure_scenario_instrumented(name, backend, fidelity, ticks, reps, false, None)
}

/// Scenario row with the flight recorder optionally attached, so the
/// trajectory file documents both sides of the telemetry contract: the
/// recording-off row is the default engine (`NullRecorder`, every
/// emission site gated on one cached bool — cost ≈ 0) and the `+recorder`
/// row runs the same scenario with a live ring-buffer recorder.
fn measure_scenario_recorded(
    name: &str,
    backend: Backend,
    fidelity: Fidelity,
    ticks: u64,
    reps: u32,
    recording: bool,
) -> Measurement {
    measure_scenario_instrumented(name, backend, fidelity, ticks, reps, recording, None)
}

/// Scenario row with optional recording and an optional periodic
/// checkpoint policy, so the trajectory file documents the durability
/// plane's price: the `+ckpt<period>` row serializes the engine's full
/// state (plant, controllers, demand, telemetry watermarks) into a
/// checksummed snapshot every `period` ticks inside the measured window;
/// the delta to the plain row, divided by the captures in the window, is
/// the per-checkpoint cost. Checkpoint-off rows go through the same
/// engine with the policy `None` — one branch on a `Copy` option per
/// tick — so their numbers stay comparable with pre-durability runs.
fn measure_scenario_instrumented(
    name: &str,
    backend: Backend,
    fidelity: Fidelity,
    ticks: u64,
    reps: u32,
    recording: bool,
    checkpoint: Option<u64>,
) -> Measurement {
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let mut spec = builtin(name).expect("built-in scenario exists");
        // The engine is throughput-bound here, not horizon-bound; events
        // the new horizon no longer covers are dropped with it (a closure
        // whose reopening is dropped simply stays closed).
        spec.set_horizon(Ticks::new(WARMUP_TICKS + ticks + 1));
        spec.fidelity = fidelity;
        let mut engine = ScenarioEngine::new(spec, EngineConfig::new(backend), &|_| {
            Box::new(UtilBp::paper())
        })
        .expect("built-in scenario validates");
        if recording {
            engine.enable_recording(1 << 16);
        }
        if let Some(period) = checkpoint {
            engine.enable_checkpoints(CheckpointPolicy::every(period));
        }
        for _ in 0..WARMUP_TICKS {
            engine.step();
        }
        let start = Instant::now();
        for _ in 0..ticks {
            engine.step();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    let mut workload = name.to_string();
    if fidelity == Fidelity::Batched {
        workload.push_str("+batched");
    }
    if recording {
        workload.push_str("+recorder");
    }
    if let Some(period) = checkpoint {
        workload.push_str(&format!("+ckpt{period}"));
    }
    Measurement {
        substrate: backend.name(),
        workload,
        mode: Parallelism::Serial,
        ticks,
        seconds: best,
        phases: None,
    }
}

fn main() {
    // `--fidelity exact|batched` retargets the *scenario-driven* rows (so
    // any builtin can be priced under the batched kernel); the grid rows
    // always emit both fidelities — the exact/batched pair in one run is
    // the kernel's headline comparison.
    let mut scenario_fidelity = Fidelity::Exact;
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--fidelity" => {
                scenario_fidelity = match args.next().as_deref() {
                    Some("exact") => Fidelity::Exact,
                    Some("batched") => Fidelity::Batched,
                    Some(other) => {
                        eprintln!("sim_throughput: unknown fidelity `{other}` (exact|batched)");
                        std::process::exit(1);
                    }
                    None => {
                        eprintln!("sim_throughput: --fidelity needs exact|batched");
                        std::process::exit(1);
                    }
                };
            }
            other => {
                eprintln!("sim_throughput: unknown flag `{other}`");
                std::process::exit(1);
            }
        }
    }
    let tick_override = std::env::var("BENCH_TICKS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let reps = std::env::var("BENCH_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(3)
        .max(1);
    let label = std::env::var("BENCH_LABEL").unwrap_or_else(|_| "dev".to_string());
    let out_path =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_sim_throughput.json".to_string());

    // Measured ticks scale down with grid size so the whole run stays in
    // the low minutes; throughput is steady-state, so fewer ticks on the
    // big grids do not bias the rate.
    let plan: &[(u32, u64, u64)] = &[
        // (grid size, queueing ticks, microscopic ticks)
        (3, 4000, 2000),
        (5, 2000, 800),
        (10, 600, 200),
        (20, 200, 60),
    ];

    let mut results = Vec::new();
    for &(size, q_ticks, m_ticks) in plan {
        for mode in [Parallelism::Serial, Parallelism::Rayon] {
            let q = measure_grid(
                Backend::Queueing,
                size,
                mode,
                Fidelity::Exact,
                tick_override.unwrap_or(q_ticks),
                reps,
            );
            eprintln!(
                "queueing    {size:>2}x{size:<2} {:>6}: {:>10.1} ticks/s",
                utilbp_bench::trajectory::mode_name(mode),
                q.ticks_per_sec()
            );
            results.push(q);
            // Both car-following contracts on every microscopic grid
            // row, reps interleaved across the pair so shared-box drift
            // cancels out of the exact/batched ratio.
            let (exact, batched) =
                measure_grid_fidelity_pair(size, mode, tick_override.unwrap_or(m_ticks), reps);
            for m in [exact, batched] {
                eprintln!(
                    "microscopic {:<13} {:>6}: {:>10.1} ticks/s",
                    m.workload,
                    utilbp_bench::trajectory::mode_name(mode),
                    m.ticks_per_sec()
                );
                results.push(m);
            }
        }
    }
    // `grid-incident-replan` keeps the closure-replanning machinery in
    // the measured path (the closure fires during warm-up, so the
    // measured window steps a network whose traffic was diverted en
    // route); `grid-congestion-replan` keeps the periodic
    // congestion-monitor path in it (each period snapshots occupancy and
    // replans around congested roads mid-measurement).
    for scenario_name in [
        "arterial-rush-hour",
        "grid-incident-replan",
        "grid-congestion-replan",
    ] {
        for backend in [Backend::Queueing, Backend::Microscopic] {
            let ticks = tick_override.unwrap_or(match backend {
                Backend::Queueing => 2000,
                Backend::Microscopic => 600,
            });
            let s = measure_scenario(scenario_name, backend, scenario_fidelity, ticks, reps);
            eprintln!(
                "{:<11} {scenario_name} serial: {:>10.1} ticks/s",
                s.substrate,
                s.ticks_per_sec()
            );
            results.push(s);
        }
    }
    // The telemetry overhead pair: the watchdog builtin (a busy event
    // stream — fault window, activations, recoveries, phase switches)
    // with recording off and on. The off row is the zero-cost-when-off
    // claim in the trajectory; the delta to the on row is the full price
    // of a live flight recorder.
    for backend in [Backend::Queueing, Backend::Microscopic] {
        let ticks = tick_override.unwrap_or(match backend {
            Backend::Queueing => 2000,
            Backend::Microscopic => 600,
        });
        for recording in [false, true] {
            let s = measure_scenario_recorded(
                "grid-degraded-recovery",
                backend,
                scenario_fidelity,
                ticks,
                reps,
                recording,
            );
            eprintln!(
                "{:<11} {} serial: {:>10.1} ticks/s",
                s.substrate,
                s.workload,
                s.ticks_per_sec()
            );
            results.push(s);
        }
        // Durability cost row: same scenario with periodic checkpointing
        // (period 256, the durable-cadence default used by the recovery
        // drill's long runs). The delta to the plain off row, divided by
        // the ~ticks/256 captures inside the measured window, is the
        // per-checkpoint price of serializing the full engine snapshot.
        let s = measure_scenario_instrumented(
            "grid-degraded-recovery",
            backend,
            scenario_fidelity,
            ticks,
            reps,
            false,
            Some(256),
        );
        eprintln!(
            "{:<11} {} serial: {:>10.1} ticks/s",
            s.substrate,
            s.workload,
            s.ticks_per_sec()
        );
        results.push(s);
    }

    let new_run = render_run(&results, WARMUP_TICKS, reps, &label);
    let existing = std::fs::read_to_string(&out_path).ok();
    let json = append_run(existing, &new_run);
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("appended run \"{label}\" to {out_path}");
}
