//! Plain `--release` throughput runner for the perf-tracking harness.
//!
//! Measures steady-state simulator step throughput (ticks/second) per
//! substrate × grid size × parallelism mode under UTIL-BP control and
//! Pattern I demand, and writes the machine-readable
//! `BENCH_sim_throughput.json` so the perf trajectory is trackable across
//! PRs (`cargo run --release -p utilbp-bench --bin sim_throughput`).
//!
//! Unlike the Criterion `sim_throughput` bench target, this runner has no
//! harness dependency, uses a fixed warm-up + measured-tick protocol
//! (best of `BENCH_REPS` repetitions, default 3, to shrug off scheduler
//! noise), and always emits JSON, which makes its numbers directly
//! comparable between commits. Scale knobs: `BENCH_TICKS=<n>` overrides
//! the measured tick count, `BENCH_REPS=<n>` the repetition count,
//! `BENCH_OUT=<path>` the output path.

use std::time::Instant;

use utilbp_core::{Parallelism, SignalController, Tick, Ticks, UtilBp};
use utilbp_microsim::{MicroSim, MicroSimConfig};
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};
use utilbp_queueing::{QueueSim, QueueSimConfig};

const WARMUP_TICKS: u64 = 300;

fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

struct Measurement {
    substrate: &'static str,
    grid: u32,
    mode: Parallelism,
    ticks: u64,
    seconds: f64,
}

impl Measurement {
    fn ticks_per_sec(&self) -> f64 {
        self.ticks as f64 / self.seconds
    }
}

fn demand(grid: &GridNetwork) -> DemandGenerator {
    DemandGenerator::new(
        grid,
        DemandConfig::new(DemandSchedule::constant(
            Pattern::I,
            Ticks::new(u64::MAX / 2),
        )),
        7,
    )
}

fn measure_queueing(size: u32, mode: Parallelism, ticks: u64, reps: u32) -> Measurement {
    let grid = GridNetwork::new(GridSpec::with_size(size, size));
    let n = grid.topology().num_intersections();
    let mut sim = QueueSim::new(
        grid.topology().clone(),
        controllers(n),
        QueueSimConfig {
            parallelism: mode,
            ..QueueSimConfig::paper_exact()
        },
    );
    let mut gen = demand(&grid);
    let mut k = 0u64;
    for _ in 0..WARMUP_TICKS {
        let arrivals = gen.poll(&grid, Tick::new(k));
        sim.step(arrivals);
        k += 1;
    }
    let mut report = utilbp_queueing::StepReport::empty();
    let mut arrivals = Vec::new();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..ticks {
            arrivals.clear();
            gen.poll_into(&grid, Tick::new(k), &mut arrivals);
            sim.step_into(&mut arrivals, &mut report);
            k += 1;
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    Measurement {
        substrate: "queueing",
        grid: size,
        mode,
        ticks,
        seconds: best,
    }
}

fn measure_micro(size: u32, mode: Parallelism, ticks: u64, reps: u32) -> Measurement {
    let grid = GridNetwork::new(GridSpec::with_size(size, size));
    let n = grid.topology().num_intersections();
    let mut sim = MicroSim::new(
        grid.topology().clone(),
        controllers(n),
        MicroSimConfig {
            parallelism: mode,
            ..MicroSimConfig::default()
        },
    );
    let mut gen = demand(&grid);
    let mut k = 0u64;
    for _ in 0..WARMUP_TICKS {
        let arrivals = gen.poll(&grid, Tick::new(k));
        sim.step(arrivals);
        k += 1;
    }
    let mut report = utilbp_microsim::StepReport::empty();
    let mut arrivals = Vec::new();
    let mut best = f64::INFINITY;
    for _ in 0..reps.max(1) {
        let start = Instant::now();
        for _ in 0..ticks {
            arrivals.clear();
            gen.poll_into(&grid, Tick::new(k), &mut arrivals);
            sim.step_into(&mut arrivals, &mut report);
            k += 1;
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    Measurement {
        substrate: "microscopic",
        grid: size,
        mode,
        ticks,
        seconds: best,
    }
}

fn mode_name(mode: Parallelism) -> &'static str {
    match mode {
        Parallelism::Serial => "serial",
        Parallelism::Rayon => "rayon",
    }
}

fn main() {
    let tick_override = std::env::var("BENCH_TICKS")
        .ok()
        .and_then(|v| v.parse::<u64>().ok());
    let reps = std::env::var("BENCH_REPS")
        .ok()
        .and_then(|v| v.parse::<u32>().ok())
        .unwrap_or(3)
        .max(1);
    let out_path =
        std::env::var("BENCH_OUT").unwrap_or_else(|_| "BENCH_sim_throughput.json".to_string());

    // Measured ticks scale down with grid size so the whole run stays in
    // the low minutes; throughput is steady-state, so fewer ticks on the
    // big grids do not bias the rate.
    let plan: &[(u32, u64, u64)] = &[
        // (grid size, queueing ticks, microscopic ticks)
        (3, 4000, 2000),
        (5, 2000, 800),
        (10, 600, 200),
    ];

    let mut results = Vec::new();
    for &(size, q_ticks, m_ticks) in plan {
        for mode in [Parallelism::Serial, Parallelism::Rayon] {
            let q = measure_queueing(size, mode, tick_override.unwrap_or(q_ticks), reps);
            eprintln!(
                "queueing    {size:>2}x{size:<2} {:>6}: {:>10.1} ticks/s",
                mode_name(mode),
                q.ticks_per_sec()
            );
            results.push(q);
            let m = measure_micro(size, mode, tick_override.unwrap_or(m_ticks), reps);
            eprintln!(
                "microscopic {size:>2}x{size:<2} {:>6}: {:>10.1} ticks/s",
                mode_name(mode),
                m.ticks_per_sec()
            );
            results.push(m);
        }
    }

    let mut json = String::from("{\n  \"benchmark\": \"sim_throughput\",\n");
    json.push_str(&format!(
        "  \"protocol\": {{\"warmup_ticks\": 300, \"controller\": \"util-bp\", \"pattern\": \"I\", \"seed\": 7, \"best_of_reps\": {reps}}},\n"
    ));
    json.push_str("  \"unit\": \"ticks_per_second\",\n  \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        json.push_str(&format!(
            "    {{\"substrate\": \"{}\", \"grid\": \"{}x{}\", \"mode\": \"{}\", \"measured_ticks\": {}, \"seconds\": {:.4}, \"ticks_per_sec\": {:.1}}}{}\n",
            m.substrate,
            m.grid,
            m.grid,
            mode_name(m.mode),
            m.ticks,
            m.seconds,
            m.ticks_per_sec(),
            if i + 1 == results.len() { "" } else { "," }
        ));
    }
    json.push_str("  ]\n}\n");
    std::fs::write(&out_path, &json).expect("write benchmark JSON");
    println!("wrote {out_path}");
}
