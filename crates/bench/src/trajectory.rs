//! The `sim_throughput` perf-trajectory JSON: rendering, run appending,
//! and the structural invariants CI (and `cargo test`) check.
//!
//! The trajectory file is hand-rolled JSON (the workspace's `serde` shim
//! does not serialize): a `runs` array where each run records the
//! measurement protocol and one row per substrate × workload × mode.
//! [`render_run`] and [`append_run`] produce it; [`verify_trajectory`]
//! asserts the invariants that used to live as inline Python in the CI
//! workflow — every expected run label present in order, the required
//! workload rows in the newest run, and a per-phase breakdown on at least
//! one microscopic row — so the checks run locally via
//! `cargo test -p utilbp-bench` and in CI through the `verify_bench`
//! binary, from one implementation. The file format itself (field
//! meanings, row labels, protocol entries) is documented for operators
//! in `docs/PERFORMANCE.md`; keep the two in sync when the schema
//! changes.

use utilbp_core::Parallelism;
use utilbp_microsim::PhaseTimings;

/// Workload rows every fresh trajectory run must contain (the largest
/// grid plus the scenario-driven rows, including both replanning
/// scenarios on both substrates, and the batched-fidelity microscopic
/// row the PR 9 kernel is tracked by).
pub const REQUIRED_WORKLOADS: &[&str] = &[
    "20x20",
    "arterial-rush-hour",
    "grid-incident-replan",
    "grid-congestion-replan",
    "grid-degraded-recovery+ckpt256",
    "10x10+batched",
];

/// One throughput measurement: a substrate × workload × mode row.
pub struct Measurement {
    /// Substrate name (`"queueing"` / `"microscopic"`).
    pub substrate: &'static str,
    /// Workload label: `"5x5"` for grids, the scenario name otherwise.
    pub workload: String,
    /// Execution mode of the sharded phases.
    pub mode: Parallelism,
    /// Measured tick count.
    pub ticks: u64,
    /// Best-of-reps wall-clock seconds for the measured ticks.
    pub seconds: f64,
    /// Per-phase breakdown (microscopic rows only), from one extra timed
    /// rep — fractions of that rep's step time.
    pub phases: Option<PhaseTimings>,
}

impl Measurement {
    /// The row's headline rate.
    pub fn ticks_per_sec(&self) -> f64 {
        self.ticks as f64 / self.seconds
    }
}

/// The JSON name of an execution mode.
pub fn mode_name(mode: Parallelism) -> &'static str {
    match mode {
        Parallelism::Serial => "serial",
        Parallelism::Rayon => "rayon",
    }
}

/// Keeps an operator-supplied string JSON-safe inside the hand-rolled
/// output (quotes, backslashes, and control characters would corrupt the
/// whole trajectory file).
pub fn sanitize(label: &str) -> String {
    label
        .chars()
        .filter(|c| !c.is_control() && *c != '"' && *c != '\\')
        .collect()
}

/// Renders one run object (protocol + results) for the `runs` array.
pub fn render_run(results: &[Measurement], warmup_ticks: u64, reps: u32, label: &str) -> String {
    let mut s = String::new();
    s.push_str("    {\n");
    s.push_str(&format!(
        "      \"protocol\": {{\"label\": \"{}\", \"warmup_ticks\": {warmup_ticks}, \"controller\": \"util-bp\", \"pattern\": \"I\", \"seed\": 7, \"best_of_reps\": {reps}}},\n",
        sanitize(label),
    ));
    s.push_str("      \"results\": [\n");
    for (i, m) in results.iter().enumerate() {
        s.push_str(&format!(
            "        {{\"substrate\": \"{}\", \"grid\": \"{}\", \"mode\": \"{}\", \"measured_ticks\": {}, \"seconds\": {:.4}, \"ticks_per_sec\": {:.1}",
            m.substrate,
            m.workload,
            mode_name(m.mode),
            m.ticks,
            m.seconds,
            m.ticks_per_sec(),
        ));
        if let Some(p) = m.phases {
            let total = p.total().max(f64::MIN_POSITIVE);
            s.push_str(&format!(
                ", \"phase_fractions\": {{\"decide\": {:.3}, \"car_following\": {:.3}, \"landings\": {:.3}, \"waiting\": {:.3}}}",
                p.decide / total,
                p.car_following / total,
                p.landings / total,
                p.waiting / total,
            ));
        }
        s.push_str(if i + 1 == results.len() {
            "}\n"
        } else {
            "},\n"
        });
    }
    s.push_str("      ]\n    }");
    s
}

/// Appends `new_run` to the `runs` array of an existing benchmark file,
/// migrating the pre-`runs` flat format (a single `protocol`/`results`
/// object) to `runs[0]`. Returns the full new file contents.
pub fn append_run(existing: Option<String>, new_run: &str) -> String {
    let header = "{\n  \"benchmark\": \"sim_throughput\",\n  \"unit\": \"ticks_per_second\",\n  \"runs\": [\n";
    let footer = "\n  ]\n}\n";
    if let Some(text) = existing {
        if let Some(end) = text.rfind("\n  ]\n}") {
            if text.contains("\"runs\": [") {
                // Already the runs format: splice before the closing `]`.
                return format!("{},\n{new_run}{footer}", &text[..end]);
            }
        }
        if let (Some(proto_start), Some(res_start)) =
            (text.find("\"protocol\": "), text.find("\"results\": [\n"))
        {
            // Flat single-run format: lift protocol + rows into runs[0].
            let proto_end = text[proto_start..].find('\n').map(|o| proto_start + o);
            let res_body_start = res_start + "\"results\": [\n".len();
            let res_end = text[res_body_start..]
                .find("\n  ]")
                .map(|o| res_body_start + o);
            if let (Some(proto_end), Some(res_end)) = (proto_end, res_end) {
                let protocol = text[proto_start..proto_end].trim_end_matches(',');
                let rows: String = text[res_body_start..res_end]
                    .lines()
                    .map(|l| format!("    {l}\n"))
                    .collect();
                let migrated = format!(
                    "    {{\n      {protocol},\n      \"results\": [\n{}      ]\n    }}",
                    rows
                );
                return format!("{header}{migrated},\n{new_run}{footer}");
            }
        }
        eprintln!("warning: could not parse existing benchmark file; starting a fresh trajectory");
    }
    format!("{header}{new_run}{footer}")
}

/// Every `"key": "value"` occurrence of `key` in `text`, in order — the
/// whole trajectory format is produced by [`render_run`], so field
/// scanning is exact for it.
fn string_values<'a>(text: &'a str, key: &str) -> Vec<&'a str> {
    let needle = format!("\"{key}\": \"");
    let mut out = Vec::new();
    let mut rest = text;
    while let Some(at) = rest.find(&needle) {
        let after = &rest[at + needle.len()..];
        match after.find('"') {
            Some(end) => {
                out.push(&after[..end]);
                rest = &after[end..];
            }
            None => break,
        }
    }
    out
}

/// The run labels of a trajectory file, in order.
pub fn run_labels(text: &str) -> Vec<&str> {
    string_values(text, "label")
}

/// Checks the structural invariants of a trajectory file.
///
/// - The file is the `runs` format and its run labels are exactly
///   `expected_labels`, in order.
/// - The newest run's results contain every workload in
///   [`REQUIRED_WORKLOADS`] — and each replanning scenario row on *both*
///   substrates.
/// - At least one row of the newest run carries a `phase_fractions`
///   breakdown (the microscopic phase attribution stays wired up).
///
/// # Errors
///
/// Returns a message describing the first violated invariant.
pub fn verify_trajectory(text: &str, expected_labels: &[&str]) -> Result<(), String> {
    if !text.contains("\"runs\": [") {
        return Err("not a runs-format trajectory file".to_string());
    }
    let labels = run_labels(text);
    if labels != expected_labels {
        return Err(format!(
            "run labels {labels:?} do not match expected {expected_labels:?}"
        ));
    }
    // The newest run is everything after the last protocol line.
    let last_run = text
        .rfind("\"protocol\": ")
        .map(|at| &text[at..])
        .ok_or("no run protocol found")?;
    let grids = string_values(last_run, "grid");
    for required in REQUIRED_WORKLOADS {
        if !grids.contains(required) {
            return Err(format!("newest run is missing the `{required}` row"));
        }
    }
    let substrates = string_values(last_run, "substrate");
    for scenario in ["grid-incident-replan", "grid-congestion-replan"] {
        for substrate in ["queueing", "microscopic"] {
            let found = grids
                .iter()
                .zip(&substrates)
                .any(|(g, s)| g == &scenario && s == &substrate);
            if !found {
                return Err(format!(
                    "newest run is missing the `{scenario}` row on the {substrate} substrate"
                ));
            }
        }
    }
    if !last_run.contains("\"phase_fractions\": {") {
        return Err("newest run has no phase_fractions breakdown".to_string());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn measurement(substrate: &'static str, workload: &str, timed: bool) -> Measurement {
        Measurement {
            substrate,
            workload: workload.to_string(),
            mode: Parallelism::Serial,
            ticks: 100,
            seconds: 0.5,
            phases: timed.then_some(PhaseTimings {
                decide: 0.1,
                car_following: 0.3,
                landings: 0.05,
                waiting: 0.05,
            }),
        }
    }

    /// A full synthetic run satisfying every invariant.
    fn full_run(label: &str) -> String {
        let mut rows = vec![
            measurement("microscopic", "20x20", true),
            measurement("microscopic", "10x10+batched", false),
        ];
        for scenario in [
            "arterial-rush-hour",
            "grid-incident-replan",
            "grid-congestion-replan",
            "grid-degraded-recovery+ckpt256",
        ] {
            for substrate in ["queueing", "microscopic"] {
                rows.push(measurement(substrate, scenario, false));
            }
        }
        render_run(&rows, 300, 3, label)
    }

    #[test]
    fn rendered_runs_append_and_verify() {
        let one = append_run(None, &full_run("first"));
        verify_trajectory(&one, &["first"]).expect("one-run file verifies");
        let two = append_run(Some(one), &full_run("second"));
        verify_trajectory(&two, &["first", "second"]).expect("appended file verifies");
        assert_eq!(run_labels(&two), ["first", "second"]);
    }

    #[test]
    fn verify_rejects_label_mismatch_and_missing_rows() {
        let text = append_run(None, &full_run("only"));
        let err = verify_trajectory(&text, &["expected"]).unwrap_err();
        assert!(err.contains("labels"), "{err}");

        // Drop the congestion rows: the invariant must name the gap.
        let partial = render_run(
            &[
                measurement("microscopic", "20x20", true),
                measurement("queueing", "arterial-rush-hour", false),
                measurement("microscopic", "arterial-rush-hour", false),
                measurement("queueing", "grid-incident-replan", false),
                measurement("microscopic", "grid-incident-replan", false),
            ],
            300,
            3,
            "partial",
        );
        let text = append_run(None, &partial);
        let err = verify_trajectory(&text, &["partial"]).unwrap_err();
        assert!(err.contains("grid-congestion-replan"), "{err}");

        // A run with a congestion row on only one substrate also fails.
        let lopsided = render_run(
            &[
                measurement("microscopic", "20x20", true),
                measurement("microscopic", "10x10+batched", false),
                measurement("queueing", "arterial-rush-hour", false),
                measurement("queueing", "grid-incident-replan", false),
                measurement("microscopic", "grid-incident-replan", false),
                measurement("queueing", "grid-congestion-replan", false),
                measurement("queueing", "grid-degraded-recovery+ckpt256", false),
            ],
            300,
            3,
            "lopsided",
        );
        let text = append_run(None, &lopsided);
        let err = verify_trajectory(&text, &["lopsided"]).unwrap_err();
        assert!(
            err.contains("grid-congestion-replan") && err.contains("microscopic"),
            "{err}"
        );

        // No timed row → no phase breakdown → rejected.
        let untimed = render_run(
            &{
                let mut rows = vec![
                    measurement("microscopic", "20x20", false),
                    measurement("microscopic", "10x10+batched", false),
                ];
                for scenario in [
                    "arterial-rush-hour",
                    "grid-incident-replan",
                    "grid-congestion-replan",
                    "grid-degraded-recovery+ckpt256",
                ] {
                    for substrate in ["queueing", "microscopic"] {
                        rows.push(measurement(substrate, scenario, false));
                    }
                }
                rows
            },
            300,
            3,
            "untimed",
        );
        let text = append_run(None, &untimed);
        let err = verify_trajectory(&text, &["untimed"]).unwrap_err();
        assert!(err.contains("phase_fractions"), "{err}");
    }

    #[test]
    fn flat_format_files_migrate_to_runs_zero() {
        let flat = "{\n  \"benchmark\": \"sim_throughput\",\n  \"unit\": \"ticks_per_second\",\n  \"protocol\": {\"label\": \"legacy\", \"warmup_ticks\": 300, \"controller\": \"util-bp\", \"pattern\": \"I\", \"seed\": 7, \"best_of_reps\": 3},\n  \"results\": [\n    {\"substrate\": \"queueing\", \"grid\": \"3x3\", \"mode\": \"serial\", \"measured_ticks\": 100, \"seconds\": 0.1, \"ticks_per_sec\": 1000.0}\n  ]\n}\n";
        let migrated = append_run(Some(flat.to_string()), &full_run("fresh"));
        assert_eq!(run_labels(&migrated), ["legacy", "fresh"]);
        verify_trajectory(&migrated, &["legacy", "fresh"]).expect("migrated file verifies");
    }

    #[test]
    fn sanitize_strips_json_breaking_characters() {
        assert_eq!(sanitize("a\"b\\c\nd"), "abcd");
        assert_eq!(sanitize("pr5-run"), "pr5-run");
    }
}
