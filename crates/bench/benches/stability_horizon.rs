//! Extension study (Section IV Q1): queue boundedness over a long
//! horizon at sub-critical demand.
//!
//! The paper notes UTIL-BP gives up the *maximum stability* guarantee of
//! idealized back-pressure (transition phases, finite capacities,
//! negative-pressure flow). This bench checks what remains in practice:
//! on the paper-exact substrate at Pattern II demand, total network queue
//! under each controller over a long run — a stable controller's queue
//! stays bounded and roughly flat, an unstable one drifts upward.

use utilbp_core::{SignalController, Tick, Ticks};
use utilbp_experiments::ControllerKind;
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};
use utilbp_queueing::{QueueSim, QueueSimConfig};

/// Total vehicles in the network (all road occupancies).
fn network_queue(sim: &QueueSim) -> u64 {
    sim.topology()
        .road_ids()
        .map(|r| sim.road_occupancy(r) as u64)
        .sum()
}

fn main() {
    let opts = utilbp_bench::bench_options();
    let horizon = opts.hour.count() * 4;
    eprintln!("[stability] horizon={horizon} ticks (queueing substrate)");
    let grid = GridNetwork::new(GridSpec::paper());

    let mut table = utilbp_metrics::TextTable::new([
        "Controller",
        "Mean net queue (1st quarter)",
        "Mean net queue (last quarter)",
        "Peak",
        "Drift",
    ]);
    for kind in [
        ControllerKind::UtilBp,
        ControllerKind::CapBp { period: 16 },
        ControllerKind::OriginalBp { period: 16 },
        ControllerKind::FixedTime { period: 16 },
    ] {
        let controllers: Vec<Box<dyn SignalController>> = kind.build_n(9);
        let mut sim = QueueSim::new(
            grid.topology().clone(),
            controllers,
            QueueSimConfig::paper_exact(),
        );
        let mut demand = DemandGenerator::new(
            &grid,
            DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(horizon))),
            opts.seed,
        );
        let mut first = utilbp_metrics::SummaryStats::new();
        let mut last = utilbp_metrics::SummaryStats::new();
        let mut peak = 0u64;
        for k in 0..horizon {
            let arrivals = demand.poll(&grid, Tick::new(k));
            sim.step(arrivals);
            let q = network_queue(&sim);
            peak = peak.max(q);
            if k < horizon / 4 {
                first.record(q as f64);
            } else if k >= horizon * 3 / 4 {
                last.record(q as f64);
            }
        }
        let drift = last.mean() - first.mean();
        table.push_row([
            kind.label(),
            format!("{:.1}", first.mean()),
            format!("{:.1}", last.mean()),
            peak.to_string(),
            format!("{drift:+.1}"),
        ]);
    }
    println!(
        "Queue boundedness at sub-critical demand (Pattern II, {horizon} s)\n\n{}",
        table.render()
    );
    println!(
        "A bounded controller shows near-zero drift between the first and \
         last quarter; upward drift indicates instability at this demand."
    );
}
