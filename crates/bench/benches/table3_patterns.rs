//! Regenerates the paper's **Table III**: per-pattern best-period CAP-BP
//! vs UTIL-BP average queuing times.
//!
//! Scaled by default; set `UTILBP_FULL=1` for the paper's 1 h/4 h horizons.

fn main() {
    let opts = utilbp_bench::bench_options();
    eprintln!(
        "[table3] backend={} hour={} ticks (UTILBP_FULL=1 for full scale)",
        opts.backend,
        opts.hour.count()
    );
    let result = utilbp_experiments::table3(&opts);
    println!("{}", result.render());
}
