//! Regenerates the paper's **Fig. 5**: queue length at the
//! incoming-from-the-east road of the top-right intersection under both
//! controllers (Pattern I, 2000 s).

fn main() {
    let opts = utilbp_bench::bench_options();
    eprintln!(
        "[fig5] backend={} horizon={} ticks",
        opts.backend,
        opts.trace_horizon.count()
    );
    let detail = utilbp_experiments::pattern1_detail(&opts);
    println!("{}", detail.render_fig5());
}
