//! Regenerates the paper's **Fig. 2**: average queuing time vs CAP-BP
//! control period on the mixed traffic pattern, with UTIL-BP's flat line.
//!
//! Scaled by default; set `UTILBP_FULL=1` for the paper's 4-hour horizon.

fn main() {
    let opts = utilbp_bench::bench_options();
    eprintln!(
        "[fig2] backend={} hour={} ticks, {} periods (UTILBP_FULL=1 for full scale)",
        opts.backend,
        opts.hour.count(),
        opts.periods.len()
    );
    let result = utilbp_experiments::fig2(&opts);
    println!("{}", result.render());
}
