//! Extension study (DESIGN.md §6): ablates UTIL-BP's mechanisms —
//! hysteresis (`g*`), the `α`/`β` special cases, per-movement pressure,
//! and adaptivity itself (fixed-length variant) — on Pattern I.

fn main() {
    let opts = utilbp_bench::bench_options();
    eprintln!(
        "[ablation] backend={} hour={} ticks",
        opts.backend,
        opts.hour.count()
    );
    let result = utilbp_experiments::ablation(&opts, utilbp_netgen::Pattern::I);
    println!("{}", result.render());
}
