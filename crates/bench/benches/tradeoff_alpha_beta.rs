//! Extension study (paper future work): the stabilization/utilization
//! trade-off via the α/β penalty space of Eq. 8.

fn main() {
    let opts = utilbp_bench::bench_options();
    eprintln!(
        "[tradeoff] backend={} hour={} ticks",
        opts.backend,
        opts.hour.count()
    );
    let result = utilbp_experiments::tradeoff(&opts, utilbp_netgen::Pattern::I);
    println!("{}", result.render());
    let best = result.best();
    println!("best combination: alpha={} beta={}", best.alpha, best.beta);
}
