//! Extension study (paper Section IV Q4 / future work): dedicated
//! per-movement lanes vs mixed lanes with head-of-line blocking, under
//! UTIL-BP on Pattern I.

use utilbp_experiments::{run, Backend, ControllerKind, Probe, Scenario};
use utilbp_microsim::LaneDiscipline;
use utilbp_netgen::{DemandSchedule, Pattern};

fn main() {
    let opts = utilbp_bench::bench_options();
    eprintln!("[lanes] hour={} ticks", opts.hour.count());
    let mut table = utilbp_metrics::TextTable::new([
        "Lane discipline",
        "Avg queuing [s]",
        "Completed",
        "Generated",
    ]);
    for (label, discipline) in [
        (
            "dedicated per movement (paper)",
            LaneDiscipline::DedicatedPerMovement,
        ),
        ("mixed lanes (HOL blocking)", LaneDiscipline::SharedMixed),
    ] {
        let mut scenario = Scenario::paper(
            DemandSchedule::constant(Pattern::I, opts.hour),
            Backend::Microscopic,
            opts.seed,
        );
        scenario.micro.lane_discipline = discipline;
        let r = run(&scenario, &ControllerKind::UtilBp, &Probe::none());
        table.push_row([
            label.to_string(),
            format!("{:.2}", r.avg_queuing_time_s),
            r.completed.to_string(),
            r.generated.to_string(),
        ]);
    }
    println!(
        "Head-of-line blocking study (UTIL-BP, Pattern I)\n\n{}",
        table.render()
    );
}
