//! Criterion micro-benchmark: simulator step throughput on both substrates
//! and its scaling with grid size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use utilbp_core::{SignalController, Tick, Ticks, UtilBp};
use utilbp_microsim::{MicroSim, MicroSimConfig};
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};
use utilbp_queueing::{QueueSim, QueueSimConfig};

fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

/// Steps a pre-warmed simulator 100 ticks per iteration.
fn bench_substrates(c: &mut Criterion) {
    let mut group = c.benchmark_group("sim_step_100_ticks");
    group.sample_size(10);
    group.warm_up_time(std::time::Duration::from_secs(1));
    group.measurement_time(std::time::Duration::from_secs(5));
    for size in [1u32, 3, 5] {
        let grid = GridNetwork::new(GridSpec::with_size(size, size));
        let n = grid.topology().num_intersections();

        group.throughput(Throughput::Elements(100 * n as u64));
        group.bench_with_input(BenchmarkId::new("queueing", size), &size, |b, _| {
            let mut sim = QueueSim::new(
                grid.topology().clone(),
                controllers(n),
                QueueSimConfig::paper_exact(),
            );
            let mut demand = DemandGenerator::new(
                &grid,
                DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(1_000_000))),
                7,
            );
            // Warm up to a loaded steady state.
            let mut k = 0u64;
            for _ in 0..600 {
                let arrivals = demand.poll(&grid, Tick::new(k));
                sim.step(arrivals);
                k += 1;
            }
            b.iter(|| {
                for _ in 0..100 {
                    let arrivals = demand.poll(&grid, Tick::new(k));
                    black_box(sim.step(arrivals));
                    k += 1;
                }
            });
        });

        group.bench_with_input(BenchmarkId::new("microscopic", size), &size, |b, _| {
            let mut sim = MicroSim::new(
                grid.topology().clone(),
                controllers(n),
                MicroSimConfig::default(),
            );
            let mut demand = DemandGenerator::new(
                &grid,
                DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(1_000_000))),
                7,
            );
            let mut k = 0u64;
            for _ in 0..600 {
                let arrivals = demand.poll(&grid, Tick::new(k));
                sim.step(arrivals);
                k += 1;
            }
            b.iter(|| {
                for _ in 0..100 {
                    let arrivals = demand.poll(&grid, Tick::new(k));
                    black_box(sim.step(arrivals));
                    k += 1;
                }
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_substrates);
criterion_main!(benches);
