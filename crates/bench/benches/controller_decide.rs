//! Criterion micro-benchmark: per-mini-slot decision latency of each
//! controller on a loaded Fig. 1 intersection.
//!
//! The paper argues back-pressure control is attractive for CPS deployment
//! because of its low computational complexity; this bench quantifies it
//! for every controller in the workspace (decisions are invoked once per
//! second per intersection in deployment, so anything under a few
//! microseconds is irrelevant at network scale — which is the point).

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use utilbp_baselines::{CapBp, FixedLengthUtilBp, FixedTime, LongestQueueFirst, OriginalBp};
use utilbp_core::{
    standard, IntersectionView, QueueObservation, SignalController, Tick, Ticks, UtilBp,
};

/// A representative congested observation: queues on most movements, some
/// exits loaded, one exit full.
fn loaded_observation(layout: &utilbp_core::IntersectionLayout) -> QueueObservation {
    let mut obs = QueueObservation::zeros(layout);
    for (n, link) in layout.link_ids().enumerate() {
        obs.set_movement(link, (n as u32 * 5) % 23);
    }
    for (n, out) in layout.outgoing_ids().enumerate() {
        obs.set_outgoing(out, if n == 2 { 120 } else { n as u32 * 13 });
    }
    obs
}

fn bench_controllers(c: &mut Criterion) {
    let layout = standard::four_way(120, 1.0);
    let obs = loaded_observation(&layout);
    let mut group = c.benchmark_group("controller_decide");

    let mut cases: Vec<(&str, Box<dyn SignalController>)> = vec![
        ("util_bp", Box::new(UtilBp::paper())),
        ("cap_bp", Box::new(CapBp::new(Ticks::new(16)))),
        ("original_bp", Box::new(OriginalBp::new(Ticks::new(16)))),
        (
            "fixed_time",
            Box::new(FixedTime::new(Ticks::new(16), Ticks::new(4))),
        ),
        ("lqf", Box::new(LongestQueueFirst::new(Ticks::new(16)))),
        (
            "util_bp_fixed",
            Box::new(FixedLengthUtilBp::new(Ticks::new(16))),
        ),
    ];

    for (name, ctrl) in &mut cases {
        group.bench_function(*name, |b| {
            let mut k = 0u64;
            b.iter(|| {
                let view = IntersectionView::new(&layout, &obs).unwrap();
                let d = ctrl.decide(black_box(&view), Tick::new(k));
                k += 1;
                black_box(d)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_controllers);
criterion_main!(benches);
