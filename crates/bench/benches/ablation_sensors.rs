//! Extension study: sensitivity of both controllers to the queue-detector
//! range (the calibration dimension documented in EXPERIMENTS.md).

use utilbp_experiments::{run, Backend, ControllerKind, Probe, Scenario};
use utilbp_netgen::{DemandSchedule, Pattern};

fn main() {
    let opts = utilbp_bench::bench_options();
    eprintln!("[sensors] hour={} ticks", opts.hour.count());
    let mut table = utilbp_metrics::TextTable::new([
        "Detector range [m]",
        "UTIL-BP avg queuing [s]",
        "CAP-BP (T=16) avg queuing [s]",
    ]);
    for range in [30.0, 50.0, 100.0, 200.0] {
        let mut scenario = Scenario::paper(
            DemandSchedule::constant(Pattern::I, opts.hour),
            Backend::Microscopic,
            opts.seed,
        );
        scenario.micro.detection_range_m = range;
        let util = run(&scenario, &ControllerKind::UtilBp, &Probe::none());
        let cap = run(
            &scenario,
            &ControllerKind::CapBp { period: 16 },
            &Probe::none(),
        );
        table.push_row([
            format!("{range}"),
            format!("{:.2}", util.avg_queuing_time_s),
            format!("{:.2}", cap.avg_queuing_time_s),
        ]);
    }
    println!(
        "Detector-range sensitivity (Pattern I)\n\n{}",
        table.render()
    );
}
