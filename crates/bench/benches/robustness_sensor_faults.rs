//! Extension study (CPS angle): how gracefully does each controller
//! degrade when the queue sensors fail? Sweeps detector dropout rates on
//! Pattern I with UTIL-BP and CAP-BP behind the fault-injection wrapper.

use utilbp_baselines::{CapBp, FaultySensors, SensorFaultConfig};
use utilbp_core::{SignalController, Tick, Ticks, UtilBp};
use utilbp_microsim::{MicroSim, MicroSimConfig};
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};

fn run(make: &dyn Fn(u64) -> Box<dyn SignalController>, hour: u64) -> f64 {
    let grid = GridNetwork::new(GridSpec::paper());
    let controllers: Vec<Box<dyn SignalController>> = (0..9).map(|i| make(i as u64)).collect();
    let mut sim = MicroSim::new(
        grid.topology().clone(),
        controllers,
        MicroSimConfig::default(),
    );
    let mut demand = DemandGenerator::new(
        &grid,
        DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(hour))),
        2020,
    );
    for k in 0..hour {
        let arrivals = demand.poll(&grid, Tick::new(k));
        sim.step(arrivals);
    }
    sim.mean_waiting_including_active()
}

fn main() {
    let opts = utilbp_bench::bench_options();
    let hour = opts.hour.count();
    eprintln!("[sensor-faults] hour={hour} ticks");
    let mut table = utilbp_metrics::TextTable::new([
        "Dropout",
        "UTIL-BP avg queuing [s]",
        "CAP-BP (T=16) avg queuing [s]",
    ]);
    for dropout in [0.0, 0.05, 0.2, 0.5] {
        let cfg = SensorFaultConfig {
            dropout,
            ..SensorFaultConfig::NONE
        };
        let util = run(
            &|i| Box::new(FaultySensors::new(UtilBp::paper(), cfg, 1000 + i)),
            hour,
        );
        let cap = run(
            &|i| {
                Box::new(FaultySensors::new(
                    CapBp::new(Ticks::new(16)),
                    cfg,
                    1000 + i,
                ))
            },
            hour,
        );
        table.push_row([
            format!("{:.0}%", dropout * 100.0),
            format!("{util:.2}"),
            format!("{cap:.2}"),
        ]);
    }
    println!(
        "Sensor-dropout robustness (Pattern I)\n\n{}",
        table.render()
    );
}
