//! Regenerates the paper's **Figs. 3 and 4**: applied control phases at
//! the top-right intersection under Pattern I, for CAP-BP at its optimal
//! period and for UTIL-BP (2000 s, as in the paper).

fn main() {
    let opts = utilbp_bench::bench_options();
    eprintln!(
        "[fig3/4] backend={} horizon={} ticks",
        opts.backend,
        opts.trace_horizon.count()
    );
    let detail = utilbp_experiments::pattern1_detail(&opts);
    println!("{}", detail.render_fig3_fig4());
}
