//! Extension study: distribution of the UTIL-BP improvement over
//! best-period CAP-BP across demand seeds (the paper reports one run).

fn main() {
    let mut opts = utilbp_bench::bench_options();
    // Keep the sweep light per seed.
    opts.periods = vec![10, 16, 24];
    eprintln!(
        "[robustness] backend={} hour={} ticks",
        opts.backend,
        opts.hour.count()
    );
    let result = utilbp_experiments::robustness(
        &opts,
        utilbp_netgen::Pattern::I,
        &[2020, 2021, 2022, 2023, 2024],
    );
    println!("{}", result.render());
}
