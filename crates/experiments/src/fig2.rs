//! Fig. 2 — average queuing time vs CAP-BP control period on the mixed
//! traffic pattern, against UTIL-BP's (period-free) result.

use utilbp_core::Tick;
use utilbp_metrics::{ascii_chart, TextTable, TimeSeries};
use utilbp_netgen::DemandSchedule;

use crate::options::ExperimentOptions;
use crate::runner::{run, run_many, Probe};
use crate::scenario::{ControllerKind, Scenario};

/// The data behind Fig. 2.
#[derive(Debug, Clone)]
pub struct Fig2Result {
    /// `(period, avg queuing time)` for CAP-BP, in sweep order.
    pub capbp: Vec<(u64, f64)>,
    /// UTIL-BP's average queuing time (no period parameter).
    pub utilbp: f64,
}

impl Fig2Result {
    /// The sweep's best (minimum) CAP-BP point.
    pub fn best_capbp(&self) -> (u64, f64) {
        self.capbp
            .iter()
            .copied()
            .min_by(|a, b| a.1.total_cmp(&b.1))
            .expect("sweep is non-empty")
    }

    /// UTIL-BP's improvement over the best CAP-BP point, in percent.
    pub fn improvement_pct(&self) -> f64 {
        let (_, best) = self.best_capbp();
        (best - self.utilbp) / best * 100.0
    }

    /// Renders the figure as a table plus an ASCII chart (period on the
    /// x-axis, queuing time on the y-axis, UTIL-BP as a flat reference
    /// line).
    pub fn render(&self) -> String {
        let mut curve = TimeSeries::new("CAP-BP (capacity-aware, fixed-length)");
        for &(p, avg) in &self.capbp {
            curve.push(Tick::new(p), avg);
        }
        let mut flat = TimeSeries::new("UTIL-BP (utilization-aware, adaptive)");
        if let (Some(&(first, _)), Some(&(last, _))) = (self.capbp.first(), self.capbp.last()) {
            flat.push(Tick::new(first), self.utilbp);
            flat.push(Tick::new(last), self.utilbp);
        }

        let mut table = TextTable::new(["Period [s]", "CAP-BP avg queuing time [s]"]);
        for &(p, avg) in &self.capbp {
            table.push_row([p.to_string(), format!("{avg:.2}")]);
        }
        let (best_p, best) = self.best_capbp();

        let mut out = String::new();
        out.push_str("Fig. 2 — avg queuing time vs control period (mixed pattern)\n\n");
        out.push_str(&ascii_chart(&[&curve, &flat], 64, 16));
        out.push('\n');
        out.push_str(&table.render());
        out.push_str(&format!(
            "\nUTIL-BP: {:.2} s | best CAP-BP: {best:.2} s at T={best_p} s | improvement: {:.1}%\n",
            self.utilbp,
            self.improvement_pct()
        ));
        out
    }
}

/// Computes Fig. 2: sweeps the CAP-BP period over the mixed pattern and
/// runs UTIL-BP once on the same demand.
pub fn fig2(opts: &ExperimentOptions) -> Fig2Result {
    let scenario = Scenario::paper(DemandSchedule::mixed(opts.hour), opts.backend, opts.seed);
    let kinds: Vec<ControllerKind> = opts
        .periods
        .iter()
        .map(|&period| ControllerKind::CapBp { period })
        .collect();
    let sweep = run_many(&scenario, &kinds, &Probe::none());
    let capbp = opts
        .periods
        .iter()
        .zip(&sweep)
        .map(|(&p, r)| (p, r.avg_queuing_time_s))
        .collect();
    let utilbp = run(&scenario, &ControllerKind::UtilBp, &Probe::none()).avg_queuing_time_s;
    Fig2Result { capbp, utilbp }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_runs_quick_and_has_shape() {
        let mut opts = ExperimentOptions::quick();
        opts.hour = utilbp_core::Ticks::new(300);
        opts.periods = vec![12, 20, 60];
        let result = fig2(&opts);
        assert_eq!(result.capbp.len(), 3);
        assert!(result.utilbp > 0.0);
        let rendered = result.render();
        assert!(rendered.contains("UTIL-BP"));
        assert!(rendered.contains("CAP-BP"));
        assert!(rendered.contains("Period"));
    }

    #[test]
    fn best_capbp_is_the_minimum() {
        let r = Fig2Result {
            capbp: vec![(10, 120.0), (20, 90.0), (30, 150.0)],
            utilbp: 80.0,
        };
        assert_eq!(r.best_capbp(), (20, 90.0));
        assert!((r.improvement_pct() - (90.0 - 80.0) / 90.0 * 100.0).abs() < 1e-12);
    }
}
