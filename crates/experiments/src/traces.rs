//! Figs. 3, 4, and 5 — Pattern I phase traces and queue lengths at the
//! top-right intersection.
//!
//! The paper runs Pattern I for 2000 s and plots, for the north-eastern
//! intersection: the applied control phase over time under CAP-BP at its
//! optimal period (Fig. 3) and under UTIL-BP (Fig. 4), plus the queue
//! length of the incoming-from-the-east road under both (Fig. 5).

use utilbp_core::standard::Approach;
use utilbp_core::Ticks;
use utilbp_metrics::{ascii_chart, PhaseTrace, TextTable, TimeSeries};
use utilbp_netgen::{DemandSchedule, GridNetwork, Pattern};

use crate::options::ExperimentOptions;
use crate::runner::{run, Probe};
use crate::scenario::{ControllerKind, Scenario};

/// The data behind Figs. 3–5.
#[derive(Debug, Clone)]
pub struct Pattern1Detail {
    /// Fig. 3: CAP-BP phase trace at the top-right intersection.
    pub capbp_trace: PhaseTrace,
    /// Fig. 4: UTIL-BP phase trace at the same intersection.
    pub utilbp_trace: PhaseTrace,
    /// Fig. 5 (solid): queue at the east approach under CAP-BP.
    pub capbp_queue: TimeSeries,
    /// Fig. 5 (dashed): queue at the east approach under UTIL-BP.
    pub utilbp_queue: TimeSeries,
    /// The CAP-BP period used (the paper's Pattern I optimum).
    pub capbp_period: u64,
}

impl Pattern1Detail {
    /// Renders Figs. 3 and 4: the two phase traces as timelines plus
    /// dwell-time statistics.
    pub fn render_fig3_fig4(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Fig. 3 — control phases, top-right intersection, Pattern I, \
             CAP-BP (T={} s)\n\n",
            self.capbp_period
        ));
        out.push_str(&render_trace(&self.capbp_trace));
        out.push_str("\nFig. 4 — control phases, same intersection, UTIL-BP\n\n");
        out.push_str(&render_trace(&self.utilbp_trace));
        out.push_str("\nPhase-dwell statistics (0 = amber/transition):\n");
        out.push_str(&dwell_table(&self.capbp_trace, &self.utilbp_trace));
        out
    }

    /// Renders Fig. 5: queue length at the incoming-from-the-east road of
    /// the top-right intersection, both controllers.
    pub fn render_fig5(&self) -> String {
        let mut out = String::new();
        out.push_str(
            "Fig. 5 — queue length, east approach of the top-right intersection, Pattern I\n\n",
        );
        out.push_str(&ascii_chart(
            &[&self.capbp_queue, &self.utilbp_queue],
            72,
            16,
        ));
        out.push_str(&format!(
            "\nmean queue: CAP-BP {:.2}, UTIL-BP {:.2} | peak: CAP-BP {:.0}, UTIL-BP {:.0}\n",
            self.capbp_queue.mean(),
            self.utilbp_queue.mean(),
            self.capbp_queue.max().unwrap_or(0.0),
            self.utilbp_queue.max().unwrap_or(0.0),
        ));
        out
    }

    /// Mean green dwell (ticks) per activation, per controller — the
    /// variable-length-phase evidence (Fig. 4's long phases 1–2).
    pub fn mean_green_dwell(&self) -> (f64, f64) {
        (
            mean_green(&self.capbp_trace),
            mean_green(&self.utilbp_trace),
        )
    }
}

fn mean_green(trace: &PhaseTrace) -> f64 {
    let mut total = 0u64;
    let mut count = 0u64;
    for phase in 1..=4u8 {
        for d in trace.run_lengths(phase) {
            total += d.count();
            count += 1;
        }
    }
    if count == 0 {
        0.0
    } else {
        total as f64 / count as f64
    }
}

/// Renders a phase trace as a bucketed timeline of phase digits (`0` =
/// amber) with a time axis.
fn render_trace(trace: &PhaseTrace) -> String {
    const WIDTH: usize = 100;
    let horizon = trace.end().index().max(1);
    let bucket = (horizon as usize).div_ceil(WIDTH).max(1);
    let values = trace.expand();
    let mut line = String::new();
    for chunk in values.chunks(bucket) {
        // Majority phase in the bucket (prefer showing ambers when tied —
        // they are the expensive events).
        let mut counts = [0usize; 6];
        for &v in chunk {
            counts[v as usize] += 1;
        }
        let digit = (0..6)
            .max_by_key(|&d| (counts[d], usize::from(d == 0)))
            .unwrap_or(0);
        line.push(char::from_digit(digit as u32, 10).unwrap_or('?'));
    }
    let mut out = String::new();
    out.push_str(&line);
    out.push('\n');
    out.push_str(&format!(
        "0s{:>width$}\n",
        format!("{}s", horizon),
        width = line.len().saturating_sub(2)
    ));
    out.push_str(&format!(
        "switches: {} | ambers: {} | amber time: {} ticks\n",
        trace.num_switches(),
        trace.num_transitions(),
        trace.time_at(0).count(),
    ));
    out
}

fn dwell_table(capbp: &PhaseTrace, utilbp: &PhaseTrace) -> String {
    let mut table = TextTable::new([
        "Phase",
        "CAP-BP time [ticks]",
        "UTIL-BP time [ticks]",
        "CAP-BP activations",
        "UTIL-BP activations",
    ]);
    for phase in 0..=4u8 {
        table.push_row([
            if phase == 0 {
                "amber".to_string()
            } else {
                format!("c{phase}")
            },
            capbp.time_at(phase).count().to_string(),
            utilbp.time_at(phase).count().to_string(),
            capbp.run_lengths(phase).len().to_string(),
            utilbp.run_lengths(phase).len().to_string(),
        ]);
    }
    table.render()
}

/// Runs the Pattern I detail experiment behind Figs. 3–5.
pub fn pattern1_detail(opts: &ExperimentOptions) -> Pattern1Detail {
    let grid = GridNetwork::new(utilbp_netgen::GridSpec::paper());
    let top_right = grid.top_right();
    let east = Approach::East.incoming();
    let probe = Probe {
        phase_traces: vec![top_right],
        queue_series: vec![(top_right, east)],
        sample_every: 5,
    };
    let schedule = DemandSchedule::constant(Pattern::I, Ticks::new(opts.trace_horizon.count()));
    let scenario = Scenario::paper(schedule, opts.backend, opts.seed);

    let capbp = run(
        &scenario,
        &ControllerKind::CapBp {
            period: opts.trace_capbp_period,
        },
        &probe,
    );
    let utilbp = run(&scenario, &ControllerKind::UtilBp, &probe);

    Pattern1Detail {
        capbp_trace: capbp.phase_traces.into_iter().next().expect("probed"),
        utilbp_trace: utilbp.phase_traces.into_iter().next().expect("probed"),
        capbp_queue: {
            let mut s = capbp.queue_series.into_iter().next().expect("probed");
            s = rename(s, "CAP-BP");
            s
        },
        utilbp_queue: rename(
            utilbp.queue_series.into_iter().next().expect("probed"),
            "UTIL-BP",
        ),
        capbp_period: opts.trace_capbp_period,
    }
}

fn rename(series: TimeSeries, name: &str) -> TimeSeries {
    let mut out = TimeSeries::new(name);
    for (t, v) in series.iter() {
        out.push(t, v);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pattern1_detail_quick() {
        let mut opts = ExperimentOptions::quick();
        opts.trace_horizon = Ticks::new(400);
        let d = pattern1_detail(&opts);
        assert_eq!(d.capbp_trace.end().index(), 400);
        assert_eq!(d.utilbp_trace.end().index(), 400);
        assert!(!d.capbp_queue.is_empty());
        let f34 = d.render_fig3_fig4();
        assert!(f34.contains("Fig. 3"));
        assert!(f34.contains("Fig. 4"));
        assert!(f34.contains("amber"));
        let f5 = d.render_fig5();
        assert!(f5.contains("Fig. 5"));
        assert!(f5.contains("CAP-BP"));
        let (cap_dwell, util_dwell) = d.mean_green_dwell();
        assert!(cap_dwell > 0.0);
        assert!(util_dwell > 0.0);
    }

    #[test]
    fn trace_rendering_buckets_long_runs() {
        let mut trace = PhaseTrace::new("t");
        for k in 0..500u64 {
            let decision = if (k / 50) % 2 == 0 {
                utilbp_core::PhaseDecision::Control(utilbp_core::PhaseId::new(0))
            } else {
                utilbp_core::PhaseDecision::Control(utilbp_core::PhaseId::new(2))
            };
            trace.record(utilbp_core::Tick::new(k), decision);
        }
        let rendered = render_trace(&trace);
        assert!(rendered.contains('1'));
        assert!(rendered.contains('3'));
        assert!(rendered.contains("switches"));
    }
}
