//! Scenario replay with the flight recorder on: the observability
//! report behind the `trace` binary and the `--trace`/`--profile` flags
//! of `scenarios`/`chaos`.
//!
//! [`run_trace`] replays one [`ScenarioSpec`] with every telemetry
//! instrument installed — a `utilbp-telemetry` flight recorder, the
//! gauge registry, optionally the tick-section profiler — and the
//! invariant guard in **observe** mode, so guard near-misses become
//! `guard_violation` events instead of aborting the replay. Recording
//! is strictly passive: the replayed outcome is bit-identical to an
//! uninstrumented run of the same spec.

use utilbp_core::{Parallelism, SignalController, Ticks};
use utilbp_metrics::{ascii_chart, TimeSeries};
use utilbp_scenario::{Backend, EngineConfig, ScenarioEngine, ScenarioOutcome, ScenarioSpec};
use utilbp_telemetry::{render_timeline, Event};

/// How to replay a scenario under the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceOptions {
    /// The substrate to replay on.
    pub backend: Backend,
    /// Execution mode of the sharded simulation phases.
    pub parallelism: Parallelism,
    /// Whether to run the tick-section profiler too.
    pub profile: bool,
    /// Flight-recorder ring-buffer capacity (events retained).
    pub capacity: usize,
    /// Gauge sampling cadence in ticks.
    pub gauge_every: u64,
    /// Cap the scenario horizon at this many ticks (`None` = full run).
    pub horizon_cap: Option<u64>,
    /// Timeline / chart width in columns.
    pub width: usize,
    /// Capture a durable checkpoint every this many ticks (`None` = no
    /// checkpointing). Captures surface as `checkpoint` events — `o`
    /// marks in the timeline's faults lane — carrying the snapshot's
    /// size and CRC.
    pub checkpoint_every: Option<u64>,
}

impl Default for TraceOptions {
    fn default() -> Self {
        TraceOptions {
            backend: Backend::Queueing,
            parallelism: Parallelism::Serial,
            profile: false,
            capacity: 4096,
            gauge_every: 25,
            horizon_cap: None,
            width: 72,
            checkpoint_every: None,
        }
    }
}

/// Everything [`run_trace`] renders from one replay.
#[derive(Debug, Clone)]
pub struct TraceReport {
    /// The replayed scenario's aggregate outcome (bit-identical to an
    /// uninstrumented run).
    pub outcome: ScenarioOutcome,
    /// The per-intersection phases × faults × fallbacks timeline.
    pub timeline: String,
    /// The retained event stream as JSON Lines (byte-deterministic).
    pub events_jsonl: String,
    /// The rendered profile table, when profiling was requested.
    pub profile_table: Option<String>,
    /// An ascii chart of the backlog / congested-set gauges.
    pub gauge_chart: String,
    /// Events accepted by the recorder over the replay.
    pub recorded: u64,
    /// Events evicted from the ring buffer (0 when `capacity` held
    /// the whole stream).
    pub dropped: u64,
}

/// Replays `spec` with recording on and renders the observability
/// report. `make_controller(i)` produces the controller of
/// intersection `i`, exactly as in [`ScenarioEngine::new`].
///
/// # Errors
///
/// Returns the validation message if the spec is inconsistent with its
/// own network.
pub fn run_trace(
    spec: ScenarioSpec,
    options: &TraceOptions,
    make_controller: &dyn Fn(usize) -> Box<dyn SignalController>,
) -> Result<TraceReport, String> {
    let mut spec = spec;
    if let Some(cap) = options.horizon_cap {
        if spec.horizon.count() > cap {
            spec.set_horizon(Ticks::new(cap));
        }
    }
    let mut config = EngineConfig::new(options.backend).observed();
    config.parallelism = options.parallelism;
    let mut engine = ScenarioEngine::new(spec, config, make_controller)?;
    engine.enable_recording(options.capacity);
    engine.enable_gauges(options.gauge_every);
    if let Some(period) = options.checkpoint_every {
        engine.enable_checkpoints(utilbp_scenario::CheckpointPolicy::every(period));
    }
    if options.profile {
        engine.enable_profiling();
    }
    engine.run_to_end();

    let recorder = engine.recorder().expect("flight recorder installed");
    let events: Vec<Event> = recorder.events().cloned().collect();
    let (recorded, dropped) = (recorder.recorded(), recorder.dropped());
    let intersections = engine.network().topology().num_intersections();
    let horizon = engine.spec().horizon.count();
    let timeline = render_timeline(&events, intersections, horizon, options.width);
    // Chart the two run-level gauges (backlog depth, congested-set
    // size); the per-intersection and per-road series stay available
    // through the engine for custom sinks.
    let series = engine.gauge_series();
    let picks: Vec<&TimeSeries> = series.iter().take(2).collect();
    let gauge_chart = ascii_chart(&picks, options.width, 10);
    Ok(TraceReport {
        outcome: engine.outcome(),
        timeline,
        events_jsonl: engine.events_jsonl(),
        profile_table: engine.profiler().map(|p| p.table().render()),
        gauge_chart,
        recorded,
        dropped,
    })
}

impl TraceReport {
    /// Renders the full report: outcome header, timeline, gauges,
    /// profile (when present), and the JSONL event stream.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "# trace: {} on {} — {} generated, {} completed, {} fallback activation(s), \
             avg queuing {:.1}s\n",
            self.outcome.scenario,
            self.outcome.backend,
            self.outcome.generated,
            self.outcome.completed,
            self.outcome.fallback_activations,
            self.outcome.avg_queuing_time_s,
        ));
        out.push_str(&format!(
            "# events recorded: {} (dropped from ring buffer: {})\n",
            self.recorded, self.dropped
        ));
        out.push_str("\n## timeline\n");
        out.push_str(&self.timeline);
        out.push_str("\n## gauges\n");
        out.push_str(&self.gauge_chart);
        if let Some(profile) = &self.profile_table {
            out.push_str("\n## profile\n");
            out.push_str(profile);
        }
        out.push_str("\n## events\n");
        out.push_str(&self.events_jsonl);
        out
    }
}
