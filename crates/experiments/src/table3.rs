//! Table III — per-pattern comparison: best-period CAP-BP vs UTIL-BP.

use utilbp_metrics::TextTable;
use utilbp_netgen::{DemandSchedule, Pattern};

use crate::options::ExperimentOptions;
use crate::runner::{run, run_many, Probe};
use crate::scenario::{ControllerKind, Scenario};

/// One row of Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Row {
    /// Pattern label (`I`–`IV` or `Mixed`).
    pub pattern: String,
    /// The CAP-BP period that minimized the average queuing time.
    pub best_period: u64,
    /// CAP-BP's average queuing time at that period, seconds.
    pub capbp_s: f64,
    /// UTIL-BP's average queuing time on the same demand, seconds.
    pub utilbp_s: f64,
}

impl Table3Row {
    /// UTIL-BP's improvement over best-period CAP-BP, percent.
    pub fn improvement_pct(&self) -> f64 {
        (self.capbp_s - self.utilbp_s) / self.capbp_s * 100.0
    }
}

/// The data behind Table III.
#[derive(Debug, Clone, PartialEq)]
pub struct Table3Result {
    /// Rows for patterns I–IV and Mixed, in paper order.
    pub rows: Vec<Table3Row>,
}

impl Table3Result {
    /// Mean improvement across all rows (the paper reports ~13 % on
    /// average).
    pub fn mean_improvement_pct(&self) -> f64 {
        self.rows.iter().map(|r| r.improvement_pct()).sum::<f64>() / self.rows.len() as f64
    }

    /// Renders the table in the paper's format.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "Pattern",
            "CAP-BP best period [s]",
            "CAP-BP avg queuing [s]",
            "UTIL-BP avg queuing [s]",
            "Improvement",
        ]);
        for row in &self.rows {
            table.push_row([
                row.pattern.clone(),
                row.best_period.to_string(),
                format!("{:.2}", row.capbp_s),
                format!("{:.2}", row.utilbp_s),
                format!("{:+.1}%", row.improvement_pct()),
            ]);
        }
        let mut out = String::new();
        out.push_str("Table III — comparison results for all traffic patterns\n\n");
        out.push_str(&table.render());
        out.push_str(&format!(
            "\nMean improvement of UTIL-BP over best-period CAP-BP: {:.1}%\n",
            self.mean_improvement_pct()
        ));
        out
    }
}

/// Computes one Table III row for the given schedule.
fn row(opts: &ExperimentOptions, label: &str, schedule: DemandSchedule) -> Table3Row {
    let scenario = Scenario::paper(schedule, opts.backend, opts.seed);
    let kinds: Vec<ControllerKind> = opts
        .periods
        .iter()
        .map(|&period| ControllerKind::CapBp { period })
        .collect();
    let sweep = run_many(&scenario, &kinds, &Probe::none());
    let (best_idx, best) = sweep
        .iter()
        .enumerate()
        .min_by(|a, b| a.1.avg_queuing_time_s.total_cmp(&b.1.avg_queuing_time_s))
        .expect("non-empty sweep");
    let utilbp = run(&scenario, &ControllerKind::UtilBp, &Probe::none());
    Table3Row {
        pattern: label.to_string(),
        best_period: opts.periods[best_idx],
        capbp_s: best.avg_queuing_time_s,
        utilbp_s: utilbp.avg_queuing_time_s,
    }
}

/// Computes Table III: patterns I–IV (one hour each) and the 4-hour mixed
/// pattern, each with a full CAP-BP period sweep.
pub fn table3(opts: &ExperimentOptions) -> Table3Result {
    let mut rows = Vec::with_capacity(5);
    for pattern in Pattern::ALL {
        rows.push(row(
            opts,
            &pattern.to_string(),
            DemandSchedule::constant(pattern, opts.hour),
        ));
    }
    rows.push(row(opts, "Mixed", DemandSchedule::mixed(opts.hour)));
    Table3Result { rows }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn improvement_math() {
        let row = Table3Row {
            pattern: "I".into(),
            best_period: 18,
            capbp_s: 102.87,
            utilbp_s: 97.97,
        };
        assert!((row.improvement_pct() - 4.763).abs() < 0.01);
    }

    #[test]
    fn render_contains_all_patterns() {
        let result = Table3Result {
            rows: vec![
                Table3Row {
                    pattern: "I".into(),
                    best_period: 18,
                    capbp_s: 102.87,
                    utilbp_s: 97.97,
                },
                Table3Row {
                    pattern: "Mixed".into(),
                    best_period: 20,
                    capbp_s: 120.71,
                    utilbp_s: 95.56,
                },
            ],
        };
        let rendered = result.render();
        assert!(rendered.contains("Mixed"));
        assert!(rendered.contains("102.87"));
        assert!(rendered.contains("Mean improvement"));
    }

    #[test]
    fn single_pattern_row_quick() {
        let mut opts = ExperimentOptions::quick();
        opts.hour = utilbp_core::Ticks::new(300);
        opts.periods = vec![14, 24];
        let r = row(&opts, "I", DemandSchedule::constant(Pattern::I, opts.hour));
        assert!(opts.periods.contains(&r.best_period));
        assert!(r.capbp_s > 0.0);
        assert!(r.utilbp_s > 0.0);
    }
}
