//! The crash-recovery harness: kill a run at an adversarial tick,
//! simulate torn or corrupted checkpoint writes, verify that integrity
//! validation rejects the damage, fall back to the newest *valid*
//! checkpoint, fast-forward to the horizon, and gate the whole drill on
//! **byte-identity** with an uninterrupted golden run — same
//! [`ScenarioOutcome`], byte-equal telemetry JSONL.
//!
//! The drill models the full durability story end to end:
//!
//! 1. **Golden** — the scenario runs uninterrupted with the flight
//!    recorder and a periodic [`CheckpointPolicy`] installed; its outcome
//!    and event JSONL are the oracle.
//! 2. **Crash** — a second, identical run is killed at `kill_tick`
//!    (default: 5/8 of the horizon, inside the builtins' fault windows).
//!    Its retained checkpoint ring plays the role of the on-disk
//!    checkpoint directory.
//! 3. **Damage** — the newest "file" suffers a [`Corruption`]: a torn
//!    write (prefix only) or a flipped bit. Checksum/structure validation
//!    must reject it with a typed error — never a panic, never a silent
//!    acceptance.
//! 4. **Recover** — [`recover_newest_valid`] walks the store newest
//!    first, restores the first checkpoint that passes validation, and
//!    reports how many damaged candidates were rejected on the way.
//! 5. **Fast-forward & verify** — the restored engine runs to the
//!    horizon. Anything short of byte-identity with the golden is a
//!    harness failure, not a warning.
//!
//! Everything is deterministic: the same config produces the same drill,
//! the same damage, and the same verdict.
//!
//! [`ScenarioOutcome`]: utilbp_scenario::ScenarioOutcome

use utilbp_core::SignalController;
use utilbp_core::Tick;
use utilbp_metrics::TextTable;
use utilbp_scenario::{
    builtin, Backend, CheckpointPolicy, EngineConfig, ScenarioEngine, ScenarioOutcome,
};

use crate::scenario::ControllerKind;

/// How the newest checkpoint "on disk" is damaged before recovery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corruption {
    /// The write completed cleanly — recovery resumes from the newest
    /// capture and rejects nothing.
    None,
    /// A torn write: only a prefix of the bytes reached the disk (the
    /// classic crash-during-write failure).
    Torn,
    /// Silent media corruption: a single bit flipped mid-payload; the
    /// container parses structurally but the section checksum must
    /// catch it.
    BitFlip,
}

impl Corruption {
    /// Parses a CLI spelling (`none` | `torn` | `flip`).
    pub fn parse(text: &str) -> Result<Self, String> {
        match text {
            "none" => Ok(Corruption::None),
            "torn" => Ok(Corruption::Torn),
            "flip" => Ok(Corruption::BitFlip),
            other => Err(format!("unknown corruption `{other}` (none|torn|flip)")),
        }
    }

    fn label(self) -> &'static str {
        match self {
            Corruption::None => "none (clean shutdown)",
            Corruption::Torn => "torn write (truncated to 2/3)",
            Corruption::BitFlip => "bit flip (mid-payload)",
        }
    }
}

/// Configuration of one recovery drill.
#[derive(Debug, Clone, PartialEq)]
pub struct RecoveryConfig {
    /// The built-in scenario to drill (see `utilbp_scenario::builtin`).
    pub scenario: String,
    /// The substrate to run on.
    pub backend: Backend,
    /// Checkpoint cadence in ticks.
    pub period: u64,
    /// The crash tick; `0` picks 5/8 of the scenario's horizon.
    pub kill_tick: u64,
    /// What happens to the newest checkpoint at the crash.
    pub corruption: Corruption,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            scenario: "grid-degraded-recovery".to_string(),
            backend: Backend::Queueing,
            period: 64,
            kill_tick: 0,
            corruption: Corruption::Torn,
        }
    }
}

/// The verdict of one recovery drill. Only produced when every gate
/// passed — a failed gate is a [`run_recovery`] error instead.
#[derive(Debug, Clone)]
pub struct RecoveryReport {
    /// The drill that ran.
    pub config: RecoveryConfig,
    /// The scenario horizon in ticks.
    pub horizon: u64,
    /// The tick the crashed run was killed at.
    pub killed_at: u64,
    /// Checkpoints in the simulated on-disk store at the crash.
    pub store_len: usize,
    /// Damaged checkpoints rejected by integrity validation during
    /// recovery (with their typed errors, newest first).
    pub rejected: Vec<String>,
    /// The tick of the checkpoint recovery resumed from.
    pub resumed_from: u64,
    /// Ticks replayed between the resume point and the horizon.
    pub fast_forwarded: u64,
    /// The (verified byte-identical) outcome table of the resumed run.
    pub outcome_table: String,
    /// The resumed run's telemetry JSONL (verified byte-equal to the
    /// golden's).
    pub jsonl: String,
    /// The golden run's telemetry JSONL.
    pub golden_jsonl: String,
}

impl RecoveryReport {
    /// Renders the drill as a two-column fact table plus the verdict.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec!["Recovery drill".to_string(), String::new()]);
        table.push_row(vec!["scenario".to_string(), self.config.scenario.clone()]);
        table.push_row(vec!["backend".to_string(), self.config.backend.to_string()]);
        table.push_row(vec![
            "horizon".to_string(),
            format!("{} ticks", self.horizon),
        ]);
        table.push_row(vec![
            "checkpoint period".to_string(),
            format!("{} ticks", self.config.period),
        ]);
        table.push_row(vec![
            "killed at".to_string(),
            format!("tick {}", self.killed_at),
        ]);
        table.push_row(vec![
            "store at crash".to_string(),
            format!("{} checkpoint(s)", self.store_len),
        ]);
        table.push_row(vec![
            "damage".to_string(),
            self.config.corruption.label().to_string(),
        ]);
        for (k, why) in self.rejected.iter().enumerate() {
            table.push_row(vec![format!("rejected #{}", k + 1), why.clone()]);
        }
        table.push_row(vec![
            "resumed from".to_string(),
            format!("tick {}", self.resumed_from),
        ]);
        table.push_row(vec![
            "fast-forwarded".to_string(),
            format!("{} ticks", self.fast_forwarded),
        ]);
        table.push_row(vec![
            "verdict".to_string(),
            "byte-identical to the uninterrupted run".to_string(),
        ]);
        table.render()
    }
}

/// Renders one outcome as an aligned metric table — the artifact the CI
/// recovery smoke byte-compares between the resumed and uninterrupted
/// runs.
pub fn render_outcome(outcome: &ScenarioOutcome) -> String {
    let mut table = TextTable::new(vec!["Metric".to_string(), "Value".to_string()]);
    let rows: Vec<(&str, String)> = vec![
        ("scenario", outcome.scenario.clone()),
        ("backend", outcome.backend.to_string()),
        ("generated", outcome.generated.to_string()),
        ("suppressed", outcome.suppressed.to_string()),
        ("diverted", outcome.diverted.to_string()),
        ("restored", outcome.restored.to_string()),
        ("completed", outcome.completed.to_string()),
        (
            "fallback activations",
            outcome.fallback_activations.to_string(),
        ),
        ("ticks degraded", outcome.ticks_degraded.to_string()),
        ("recovery time", format!("{:.3}", outcome.recovery_time)),
        (
            "avg queuing (s)",
            // Full bit-pattern, not a rounded display: the comparison
            // must catch even last-ulp drift.
            format!("{:.17e}", outcome.avg_queuing_time_s),
        ),
        (
            "mean journey (s)",
            format!("{:.17e}", outcome.mean_journey_s),
        ),
        ("final backlog", outcome.final_backlog.to_string()),
    ];
    for (metric, value) in rows {
        table.push_row(vec![metric.to_string(), value]);
    }
    table.render()
}

/// Walks a checkpoint store newest first, restoring the first checkpoint
/// that passes integrity validation. Returns the restored engine, the
/// tick it resumed at, and the typed rejection messages of every damaged
/// candidate skipped on the way (newest first).
///
/// # Errors
///
/// An error naming the last rejection when *no* checkpoint in the store
/// restores, or when the store is empty.
pub fn recover_newest_valid(
    store: &[(Tick, Vec<u8>)],
    config: EngineConfig,
    factory: &dyn Fn(usize) -> Box<dyn SignalController>,
) -> Result<(ScenarioEngine, Tick, Vec<String>), String> {
    let mut rejected = Vec::new();
    for (tick, bytes) in store.iter().rev() {
        match ScenarioEngine::restore(bytes, config, factory) {
            Ok(engine) => return Ok((engine, *tick, rejected)),
            Err(why) => rejected.push(format!("checkpoint at tick {}: {why}", tick.index())),
        }
    }
    Err(match rejected.last() {
        Some(last) => format!("no valid checkpoint in the store ({last})"),
        None => "the checkpoint store is empty".to_string(),
    })
}

/// Applies the configured damage to the newest checkpoint in the store.
fn damage_newest(store: &mut [(Tick, Vec<u8>)], corruption: Corruption) {
    let Some((_, bytes)) = store.last_mut() else {
        return;
    };
    match corruption {
        Corruption::None => {}
        Corruption::Torn => {
            let keep = bytes.len() * 2 / 3;
            bytes.truncate(keep);
        }
        Corruption::BitFlip => {
            let mid = bytes.len() / 2;
            bytes[mid] ^= 0x08;
        }
    }
}

/// Runs one recovery drill end to end (see the module docs for the five
/// stages).
///
/// # Errors
///
/// A one-line diagnostic on the first violated gate: unknown scenario, a
/// kill tick before the first capture, damage that validation *failed*
/// to reject, an unrecoverable store, or — the headline gate — a resumed
/// run that is not byte-identical to the uninterrupted golden.
pub fn run_recovery(config: &RecoveryConfig) -> Result<RecoveryReport, String> {
    let spec = builtin(&config.scenario)
        .ok_or_else(|| format!("unknown scenario `{}`", config.scenario))?;
    let horizon = spec.horizon.count();
    let kill_tick = if config.kill_tick == 0 {
        5 * horizon / 8
    } else {
        config.kill_tick
    };
    if kill_tick >= horizon {
        return Err(format!(
            "kill tick {kill_tick} is past the horizon ({horizon})"
        ));
    }
    if config.period == 0 {
        return Err("checkpoint period must be at least 1".to_string());
    }
    let engine_config = EngineConfig::new(config.backend);
    let factory = |_: usize| ControllerKind::UtilBp.build();
    let policy = CheckpointPolicy::every(config.period);

    // Stage 1: the golden oracle.
    let mut golden_run = ScenarioEngine::new(spec.clone(), engine_config, &factory)?;
    golden_run.enable_recording(512);
    golden_run.enable_checkpoints(policy);
    golden_run.run_to_end();
    let golden_outcome = golden_run.outcome();
    let golden_jsonl = golden_run.events_jsonl();

    // Stage 2: the crashed run. Its retained checkpoint ring is the
    // simulated on-disk store; the engine is dropped at the kill tick.
    let mut store: Vec<(Tick, Vec<u8>)> = {
        let mut doomed = ScenarioEngine::new(spec, engine_config, &factory)?;
        doomed.enable_recording(512);
        doomed.enable_checkpoints(policy);
        for _ in 0..kill_tick {
            doomed.step();
        }
        doomed.checkpoints().to_vec()
    };
    if store.is_empty() {
        return Err(format!(
            "killed at tick {kill_tick}, before the first capture (period {}) — nothing to recover",
            config.period
        ));
    }
    let store_len = store.len();

    // Stage 3: damage the newest "file".
    damage_newest(&mut store, config.corruption);

    // Stage 4: recover from the newest valid checkpoint.
    let (mut resumed, resumed_tick, rejected) =
        recover_newest_valid(&store, engine_config, &factory)?;
    match config.corruption {
        Corruption::None => {
            if !rejected.is_empty() {
                return Err(format!(
                    "clean store, yet {} checkpoint(s) were rejected: {}",
                    rejected.len(),
                    rejected.join("; ")
                ));
            }
        }
        Corruption::Torn | Corruption::BitFlip => {
            if rejected.len() != 1 {
                return Err(format!(
                    "damaged the newest checkpoint, expected exactly 1 rejection, saw {}: {}",
                    rejected.len(),
                    rejected.join("; ")
                ));
            }
            if store_len < 2 {
                return Err(
                    "damaged the only checkpoint — lengthen the run or shorten the period"
                        .to_string(),
                );
            }
        }
    }

    // Stage 5: fast-forward and gate on byte-identity.
    let fast_forwarded = horizon - resumed_tick.index();
    resumed.run_to_end();
    let outcome = resumed.outcome();
    if outcome != golden_outcome {
        return Err(format!(
            "recovered outcome diverged from the uninterrupted run\n  golden:    {golden_outcome:?}\n  recovered: {outcome:?}"
        ));
    }
    let jsonl = resumed.events_jsonl();
    if jsonl != golden_jsonl {
        let seam = golden_jsonl
            .lines()
            .zip(jsonl.lines())
            .position(|(a, b)| a != b)
            .map(|k| k + 1)
            .unwrap_or(0);
        return Err(format!(
            "recovered telemetry JSONL diverged from the uninterrupted run (first differing line {seam})"
        ));
    }

    Ok(RecoveryReport {
        config: config.clone(),
        horizon,
        killed_at: kill_tick,
        store_len,
        rejected,
        resumed_from: resumed_tick.index(),
        fast_forwarded,
        outcome_table: render_outcome(&outcome),
        jsonl,
        golden_jsonl,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_torn_write_drill_passes() {
        let report = run_recovery(&RecoveryConfig::default()).expect("drill passes");
        assert_eq!(report.rejected.len(), 1, "the torn newest must be rejected");
        assert!(report.resumed_from < report.killed_at);
        assert_eq!(report.jsonl, report.golden_jsonl);
        let rendered = report.render();
        assert!(rendered.contains("byte-identical"), "{rendered}");
    }

    #[test]
    fn a_bit_flip_is_caught_by_the_checksum() {
        let config = RecoveryConfig {
            corruption: Corruption::BitFlip,
            ..RecoveryConfig::default()
        };
        let report = run_recovery(&config).expect("drill passes");
        assert_eq!(report.rejected.len(), 1);
        assert!(
            report.rejected[0].contains("checksum") || report.rejected[0].contains("snapshot"),
            "rejection must be the typed integrity error: {}",
            report.rejected[0]
        );
    }

    #[test]
    fn a_clean_shutdown_resumes_from_the_newest() {
        let config = RecoveryConfig {
            corruption: Corruption::None,
            ..RecoveryConfig::default()
        };
        let report = run_recovery(&config).expect("drill passes");
        assert!(report.rejected.is_empty());
        // The newest capture is the last period boundary before the kill.
        let expected = report.killed_at / config.period * config.period;
        assert_eq!(report.resumed_from, expected);
    }
}
