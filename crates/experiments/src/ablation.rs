//! Ablation study: which of UTIL-BP's mechanisms buys what.
//!
//! DESIGN.md calls out four separable design choices in Algorithm 1:
//! per-movement pressure (Eq. 6 change (i)), the `α`/`β` special cases
//! (Eq. 8), the `g*` keep-phase hysteresis (Eq. 12), and varying-length
//! phases themselves. This module compares the full controller against one
//! variant per mechanism, on identical demand.

use utilbp_core::{GStarPolicy, GainMode, UtilBpConfig};
use utilbp_metrics::TextTable;
use utilbp_netgen::{DemandSchedule, Pattern};

use crate::options::ExperimentOptions;
use crate::runner::{run_many, Probe};
use crate::scenario::{ControllerKind, Scenario};

/// One ablation row.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationRow {
    /// Variant label.
    pub variant: String,
    /// Average queuing time, seconds.
    pub avg_queuing_time_s: f64,
    /// Completed journeys.
    pub completed: u64,
}

/// The ablation comparison on one pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct AblationResult {
    /// The demand pattern used.
    pub pattern: Pattern,
    /// One row per variant, full UTIL-BP first.
    pub rows: Vec<AblationRow>,
}

impl AblationResult {
    /// Renders the comparison as a table with deltas against the full
    /// controller.
    pub fn render(&self) -> String {
        let baseline = self
            .rows
            .first()
            .map(|r| r.avg_queuing_time_s)
            .unwrap_or(0.0);
        let mut table = TextTable::new(["Variant", "Avg queuing [s]", "vs UTIL-BP", "Completed"]);
        for row in &self.rows {
            let delta = if baseline > 0.0 {
                format!(
                    "{:+.1}%",
                    (row.avg_queuing_time_s - baseline) / baseline * 100.0
                )
            } else {
                "-".to_string()
            };
            table.push_row([
                row.variant.clone(),
                format!("{:.2}", row.avg_queuing_time_s),
                delta,
                row.completed.to_string(),
            ]);
        }
        format!(
            "Ablation — Pattern {} (positive deltas are degradations)\n\n{}",
            self.pattern,
            table.render()
        )
    }
}

/// The standard set of ablation variants.
pub fn variants() -> Vec<ControllerKind> {
    vec![
        ControllerKind::UtilBp,
        ControllerKind::UtilBpWith(UtilBpConfig {
            g_star: GStarPolicy::AlwaysReevaluate,
            ..UtilBpConfig::default()
        }),
        ControllerKind::UtilBpWith(UtilBpConfig {
            gain_mode: GainMode::PlainModified,
            ..UtilBpConfig::default()
        }),
        ControllerKind::UtilBpWith(UtilBpConfig {
            gain_mode: GainMode::PerRoadPressure,
            ..UtilBpConfig::default()
        }),
        ControllerKind::FixedLengthUtilBp { period: 16 },
    ]
}

/// Runs the ablation on the given pattern.
pub fn ablation(opts: &ExperimentOptions, pattern: Pattern) -> AblationResult {
    let scenario = Scenario::paper(
        DemandSchedule::constant(pattern, opts.hour),
        opts.backend,
        opts.seed,
    );
    let kinds = variants();
    let results = run_many(&scenario, &kinds, &Probe::none());
    AblationResult {
        pattern,
        rows: kinds
            .iter()
            .zip(results)
            .map(|(kind, r)| AblationRow {
                variant: kind.label(),
                avg_queuing_time_s: r.avg_queuing_time_s,
                completed: r.completed,
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variant_set_is_distinctly_labeled() {
        let kinds = variants();
        let mut labels: Vec<String> = kinds.iter().map(|k| k.label()).collect();
        labels.sort();
        labels.dedup();
        assert_eq!(labels.len(), kinds.len(), "labels must be unique");
    }

    #[test]
    fn ablation_runs_quick() {
        let mut opts = ExperimentOptions::quick();
        opts.hour = utilbp_core::Ticks::new(300);
        let result = ablation(&opts, Pattern::I);
        assert_eq!(result.rows.len(), variants().len());
        assert_eq!(result.rows[0].variant, "UTIL-BP");
        let rendered = result.render();
        assert!(rendered.contains("Ablation"));
        assert!(rendered.contains("no hysteresis"));
    }
}
