//! Regenerates Table III: per-pattern best-period CAP-BP vs UTIL-BP.
//!
//! Env: `UTILBP_QUICK=1` for a scaled run, `UTILBP_BACKEND=queueing|micro`.

fn main() {
    let opts = utilbp_experiments::ExperimentOptions::from_env();
    eprintln!(
        "running Table III on the {} backend (hour = {} ticks)…",
        opts.backend,
        opts.hour.count()
    );
    let result = utilbp_experiments::table3(&opts);
    println!("{}", result.render());
}
