//! Regenerates Figs. 3 and 4: Pattern I phase traces at the top-right
//! intersection under CAP-BP (optimal period) and UTIL-BP.

fn main() {
    let opts = utilbp_experiments::ExperimentOptions::from_env();
    eprintln!(
        "running Figs. 3–4 on the {} backend ({} ticks)…",
        opts.backend,
        opts.trace_horizon.count()
    );
    let detail = utilbp_experiments::pattern1_detail(&opts);
    println!("{}", detail.render_fig3_fig4());
}
