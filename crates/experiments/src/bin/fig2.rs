//! Regenerates Fig. 2: avg queuing time vs CAP-BP period, mixed pattern.
//!
//! Env: `UTILBP_QUICK=1` for a scaled run, `UTILBP_BACKEND=queueing|micro`.

fn main() {
    let opts = utilbp_experiments::ExperimentOptions::from_env();
    eprintln!(
        "running Fig. 2 on the {} backend (hour = {} ticks, {} periods)…",
        opts.backend,
        opts.hour.count(),
        opts.periods.len()
    );
    let result = utilbp_experiments::fig2(&opts);
    println!("{}", result.render());
}
