//! Regenerates every table and figure of the paper's evaluation section in
//! one run, plus the input tables and the ablation extension.

fn main() {
    let opts = utilbp_experiments::ExperimentOptions::from_env();
    eprintln!(
        "regenerating all artifacts on the {} backend (hour = {} ticks)…",
        opts.backend,
        opts.hour.count()
    );

    println!(
        "{}",
        utilbp_experiments::render_table1(&utilbp_netgen::TurningProbabilities::PAPER,)
    );
    println!("{}", utilbp_experiments::render_table2());

    let fig2 = utilbp_experiments::fig2(&opts);
    println!("{}", fig2.render());

    let table3 = utilbp_experiments::table3(&opts);
    println!("{}", table3.render());

    let detail = utilbp_experiments::pattern1_detail(&opts);
    println!("{}", detail.render_fig3_fig4());
    println!("{}", detail.render_fig5());

    let ablation = utilbp_experiments::ablation(&opts, utilbp_netgen::Pattern::I);
    println!("{}", ablation.render());
}
