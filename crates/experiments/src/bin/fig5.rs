//! Regenerates Fig. 5: queue lengths at the east approach of the top-right
//! intersection, Pattern I, CAP-BP vs UTIL-BP.

fn main() {
    let opts = utilbp_experiments::ExperimentOptions::from_env();
    eprintln!(
        "running Fig. 5 on the {} backend ({} ticks)…",
        opts.backend,
        opts.trace_horizon.count()
    );
    let detail = utilbp_experiments::pattern1_detail(&opts);
    println!("{}", detail.render_fig5());
}
