//! Replays one scenario with the flight recorder on and renders the
//! observability report: per-intersection timeline (phases × faults ×
//! fallbacks), gauge chart, optional tick-section profile, and the
//! JSONL event stream.
//!
//! ```text
//! trace --builtin grid-degraded-recovery           # a built-in scenario
//! trace file.scn                                   # a scenario file
//! trace --builtin NAME --profile                   # add the profile table
//! trace --builtin NAME --backend microscopic       # pick the substrate
//! trace --builtin NAME --parallelism rayon         # sharded phases
//! trace --builtin NAME --capacity 8192 --every 10  # recorder/gauge tuning
//! trace --builtin NAME --horizon 400 --width 100   # trim / widen
//! trace --builtin NAME --checkpoint 64             # durable captures → o marks
//! ```
//!
//! The replay runs the invariant guard in observe mode: guard
//! violations become `guard_violation` events in the stream instead of
//! aborting. Recording is strictly passive — the printed outcome is
//! bit-identical to an uninstrumented run of the same scenario.
//!
//! Every operator-facing failure — an unknown flag, a missing built-in,
//! an unreadable or malformed scenario file — prints a one-line
//! diagnostic to stderr and exits non-zero; the binary never panics on
//! bad input.

use utilbp_core::Parallelism;
use utilbp_experiments::{run_trace, Backend, ControllerKind, TraceOptions};
use utilbp_scenario::{builtin, parse_scenario, ScenarioSpec};

fn main() {
    if let Err(message) = run() {
        eprintln!("trace: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut options = TraceOptions::default();
    let mut builtin_spec: Option<ScenarioSpec> = None;
    let mut file: Option<&String> = None;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--builtin" => {
                let name = value("--builtin")?;
                builtin_spec =
                    Some(builtin(&name).ok_or_else(|| format!("no built-in scenario `{name}`"))?);
            }
            "--backend" => {
                options.backend = match value("--backend")?.as_str() {
                    "queueing" => Backend::Queueing,
                    "microscopic" => Backend::Microscopic,
                    other => {
                        return Err(format!("unknown backend `{other}` (queueing|microscopic)"))
                    }
                };
            }
            "--parallelism" => {
                options.parallelism = match value("--parallelism")?.as_str() {
                    "serial" => Parallelism::Serial,
                    "rayon" => Parallelism::Rayon,
                    other => return Err(format!("unknown parallelism `{other}` (serial|rayon)")),
                };
            }
            "--profile" => options.profile = true,
            "--capacity" => {
                options.capacity = value("--capacity")?
                    .parse()
                    .map_err(|e| format!("--capacity: {e}"))?;
                if options.capacity == 0 {
                    return Err("--capacity must be at least 1".to_string());
                }
            }
            "--every" => {
                options.gauge_every = value("--every")?
                    .parse()
                    .map_err(|e| format!("--every: {e}"))?;
                if options.gauge_every == 0 {
                    return Err("--every must be at least 1".to_string());
                }
            }
            "--horizon" => {
                options.horizon_cap = Some(
                    value("--horizon")?
                        .parse()
                        .map_err(|e| format!("--horizon: {e}"))?,
                );
            }
            "--width" => {
                options.width = value("--width")?
                    .parse()
                    .map_err(|e| format!("--width: {e}"))?;
            }
            "--checkpoint" => {
                let period: u64 = value("--checkpoint")?
                    .parse()
                    .map_err(|e| format!("--checkpoint: {e}"))?;
                if period == 0 {
                    return Err("--checkpoint must be at least 1".to_string());
                }
                options.checkpoint_every = Some(period);
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            _ => {
                if file.replace(arg).is_some() {
                    return Err("pass exactly one scenario file".to_string());
                }
            }
        }
    }

    let spec = match (builtin_spec, file) {
        (Some(_), Some(_)) => {
            return Err("pass either --builtin NAME or a scenario file, not both".to_string())
        }
        (None, None) => {
            return Err("pass a scenario: --builtin NAME or a scenario file".to_string())
        }
        (Some(spec), None) => spec,
        (None, Some(path)) => {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = parse_scenario(&text).map_err(|e| format!("{path}: {e}"))?;
            spec.validate().map_err(|e| format!("{path}: {e}"))?;
            spec
        }
    };

    if std::env::var("UTILBP_QUICK").is_ok_and(|v| v == "1") {
        options.horizon_cap = Some(options.horizon_cap.unwrap_or(u64::MAX).min(300));
    }

    eprintln!(
        "replaying {} on {} with recording on…",
        spec.name, options.backend
    );
    let report = run_trace(spec, &options, &|_| ControllerKind::UtilBp.build())?;
    println!("{}", report.render());
    Ok(())
}
