//! Statistical-equivalence gate between the exact and batched
//! car-following fidelities.
//!
//! ```text
//! equivalence                    # default: 16 seeds × the 3-scenario set
//! equivalence --seeds 32         # wider sweep
//! equivalence --horizon 300      # cap every scenario's horizon (CI smoke)
//! equivalence --scenario NAME .. # selected built-ins (repeatable)
//! equivalence --out table.txt    # also write the table artifact
//! ```
//!
//! Prints the per-scenario metric table and exits non-zero if any gate
//! (relative mean gap or KS distance, per metric) fails, or if the
//! queueing backend turns out not to be fidelity-invariant.

use utilbp_experiments::{equivalence, EquivalenceOptions, DEFAULT_TOLERANCES};

fn main() {
    if let Err(message) = run() {
        eprintln!("equivalence: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let mut opts = EquivalenceOptions::default();
    let mut scenarios: Vec<String> = Vec::new();
    let mut out_path: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--seeds" => {
                opts.seeds = iter
                    .next()
                    .ok_or_else(|| "--seeds needs a count".to_string())?
                    .parse()
                    .map_err(|_| "--seeds needs an integer".to_string())?;
                if opts.seeds == 0 {
                    return Err("--seeds must be positive".to_string());
                }
            }
            "--horizon" => {
                opts.horizon_cap = Some(
                    iter.next()
                        .ok_or_else(|| "--horizon needs a tick count".to_string())?
                        .parse()
                        .map_err(|_| "--horizon needs an integer".to_string())?,
                );
            }
            "--scenario" => {
                scenarios.push(
                    iter.next()
                        .ok_or_else(|| "--scenario needs a name".to_string())?
                        .clone(),
                );
            }
            "--out" => {
                out_path = Some(
                    iter.next()
                        .ok_or_else(|| "--out needs a path".to_string())?
                        .clone(),
                );
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if !scenarios.is_empty() {
        opts.scenarios = scenarios;
    }

    eprintln!(
        "sweeping {} scenario(s) × {} seed(s) × 2 fidelities on the microscopic substrate…",
        opts.scenarios.len(),
        opts.seeds
    );
    let report = equivalence(&opts)?;
    let table = report.render();
    println!("{table}");
    if let Some(path) = out_path {
        std::fs::write(&path, &table).map_err(|e| format!("cannot write {path}: {e}"))?;
    }
    report.check(DEFAULT_TOLERANCES)?;
    println!("all equivalence gates passed");
    Ok(())
}
