//! Runs the deterministic chaos harness and prints the resilience table.
//!
//! ```text
//! chaos                        # 20 timelines per backend, both backends
//! chaos --timelines 5          # fewer timelines (CI smoke)
//! chaos --horizon 160          # shorter timelines
//! chaos --seed 7               # a different timeline family
//! chaos --backend queueing     # one substrate (queueing|microscopic)
//! chaos --trace                # append a flight-recorder replay of timeline 0
//! chaos --trace --profile      # …with the tick-section profile table
//! ```
//!
//! Every simulation runs with the invariant guard installed; any
//! conservation, sensor-consistency, or closed-road violation panics
//! with a tick-stamped diagnostic. Property failures the harness can
//! report gracefully (Serial/Rayon divergence, repeat-run divergence,
//! degradation bound breach) print a one-line diagnostic and exit 1.

use utilbp_experiments::{
    chaos_timeline, run_chaos, run_trace, ChaosConfig, ControllerKind, TraceOptions,
};
use utilbp_scenario::Backend;

fn main() {
    if let Err(message) = run() {
        eprintln!("chaos: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let mut config = ChaosConfig::default();
    let mut trace = false;
    let mut profile = false;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--timelines" => {
                config.timelines = value("--timelines")?
                    .parse()
                    .map_err(|e| format!("--timelines: {e}"))?;
            }
            "--horizon" => {
                config.horizon = value("--horizon")?
                    .parse()
                    .map_err(|e| format!("--horizon: {e}"))?;
            }
            "--seed" => {
                config.master_seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?;
            }
            "--trace" => trace = true,
            "--profile" => {
                trace = true;
                profile = true;
            }
            "--backend" => {
                config.backends = vec![match value("--backend")?.as_str() {
                    "queueing" => Backend::Queueing,
                    "microscopic" => Backend::Microscopic,
                    other => {
                        return Err(format!("unknown backend `{other}` (queueing|microscopic)"))
                    }
                }];
            }
            other => return Err(format!("unknown flag `{other}`")),
        }
    }
    if config.timelines == 0 {
        return Err("--timelines must be at least 1".to_string());
    }
    if config.horizon < 40 {
        return Err("--horizon must be at least 40".to_string());
    }

    eprintln!(
        "running {} timeline(s) × {} backend(s), horizon {}, seed {}…",
        config.timelines,
        config.backends.len(),
        config.horizon,
        config.master_seed
    );
    let report = run_chaos(&config)?;
    println!(
        "Chaos resilience — {} timelines, {} fallback activation(s)",
        config.timelines,
        report.total_activations()
    );
    println!();
    println!("{}", report.render());

    if trace {
        // Opt-in appendix: replay timeline 0 (with the watchdog
        // installed, as the harness runs it) under the flight recorder.
        // The replay uses the guard's observe mode — violations become
        // events in the stream — while the harness proper keeps the
        // panicking guard above.
        for &backend in &config.backends {
            let mut spec = chaos_timeline(config.master_seed, 0, config.horizon);
            spec.watchdog = Some(utilbp_baselines::WatchdogConfig::default());
            let options = TraceOptions {
                backend,
                profile,
                ..TraceOptions::default()
            };
            let report = run_trace(spec, &options, &|_| ControllerKind::UtilBp.build())?;
            println!();
            println!("{}", report.render());
        }
    }
    Ok(())
}
