//! Runs scenario specs across controllers on both substrates and prints a
//! comparison table.
//!
//! ```text
//! scenarios                    # the whole built-in library, both backends
//! scenarios --smoke            # one small built-in per backend (CI smoke)
//! scenarios --builtin NAME ... # selected built-ins by name
//! scenarios --parallelism rayon # run the sharded sim phases on the pool
//! scenarios --fidelity batched # batched car-following on the microsim rows
//! scenarios file.scn ...       # scenario files in the text format
//! scenarios --trace            # append a flight-recorder trace per spec
//! scenarios --trace --profile  # …with the tick-section profile table
//! ```
//!
//! Env: `UTILBP_QUICK=1` caps every horizon at 300 ticks.
//!
//! Results are bit-identical across `--parallelism` modes and
//! `RAYON_NUM_THREADS` settings (the substrate determinism contract); the
//! CI determinism matrix diffs this binary's output across thread counts.
//!
//! Every operator-facing failure — an unknown flag, a missing built-in,
//! an unreadable or malformed scenario file — prints a one-line
//! diagnostic to stderr and exits non-zero; the binary never panics on
//! bad input.

use utilbp_core::Parallelism;
use utilbp_experiments::{run_trace, scenario_comparison, Backend, ControllerKind, TraceOptions};
use utilbp_microsim::Fidelity;
use utilbp_scenario::{builtin, builtin_scenarios, parse_scenario, ScenarioSpec};

fn main() {
    if let Err(message) = run() {
        eprintln!("scenarios: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut files: Vec<&String> = Vec::new();
    let mut builtins: Vec<ScenarioSpec> = Vec::new();
    let mut parallelism = Parallelism::Serial;
    let mut fidelity = None;
    let mut trace = false;
    let mut profile = false;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => {}
            "--trace" => trace = true,
            "--profile" => {
                trace = true;
                profile = true;
            }
            "--builtin" => {
                let name = iter
                    .next()
                    .ok_or_else(|| "--builtin needs a scenario name".to_string())?;
                builtins
                    .push(builtin(name).ok_or_else(|| format!("no built-in scenario `{name}`"))?);
            }
            "--parallelism" => {
                parallelism = match iter
                    .next()
                    .ok_or_else(|| "--parallelism needs serial|rayon".to_string())?
                    .as_str()
                {
                    "serial" => Parallelism::Serial,
                    "rayon" => Parallelism::Rayon,
                    other => return Err(format!("unknown parallelism `{other}` (serial|rayon)")),
                };
            }
            "--fidelity" => {
                fidelity = Some(
                    match iter
                        .next()
                        .ok_or_else(|| "--fidelity needs exact|batched".to_string())?
                        .as_str()
                    {
                        "exact" => Fidelity::Exact,
                        "batched" => Fidelity::Batched,
                        other => return Err(format!("unknown fidelity `{other}` (exact|batched)")),
                    },
                );
            }
            other if other.starts_with("--") => return Err(format!("unknown flag `{other}`")),
            _ => files.push(arg),
        }
    }

    if !builtins.is_empty() && !files.is_empty() {
        return Err("pass either --builtin names or scenario files, not both".to_string());
    }
    let mut specs: Vec<ScenarioSpec> = if !builtins.is_empty() {
        builtins
    } else if files.is_empty() {
        builtin_scenarios()
    } else {
        let mut specs = Vec::new();
        for path in files {
            let text =
                std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
            let spec = parse_scenario(&text).map_err(|e| format!("{path}: {e}"))?;
            spec.validate().map_err(|e| format!("{path}: {e}"))?;
            specs.push(spec);
        }
        specs
    };

    // The flag overrides every spec's own `fidelity` directive; only the
    // microscopic rows are affected (the queueing substrate has no
    // car-following phase to batch).
    if let Some(f) = fidelity {
        for spec in &mut specs {
            spec.fidelity = f;
        }
    }

    let mut horizon_cap = None;
    if std::env::var("UTILBP_QUICK").is_ok_and(|v| v == "1") {
        horizon_cap = Some(300);
    }
    if smoke {
        // One small scenario, trimmed hard: the job only checks that the
        // engine drives both substrates end to end.
        specs.truncate(1);
        horizon_cap = Some(horizon_cap.unwrap_or(300).min(200));
    }

    let controllers = [
        ControllerKind::UtilBp,
        ControllerKind::CapBp { period: 16 },
        ControllerKind::FixedTime { period: 20 },
    ];
    let backends = [Backend::Queueing, Backend::Microscopic];

    eprintln!(
        "running {} scenario(s) × {} backend(s) × {} controller(s)…",
        specs.len(),
        backends.len(),
        controllers.len()
    );
    let comparison = scenario_comparison(&specs, &backends, &controllers, horizon_cap, parallelism);
    if comparison.rows.is_empty() {
        return Err("scenario sweep produced no rows".to_string());
    }
    for row in &comparison.rows {
        if !row.outcomes.iter().all(|o| o.generated > 0) {
            return Err(format!(
                "scenario {} on {} generated no vehicles",
                row.spec.name, row.backend
            ));
        }
    }

    println!("Scenario comparison — mean queuing time (completed/generated)");
    println!();
    println!("{}", comparison.render());

    if trace {
        // Opt-in appendix: replay each spec once on the queueing
        // substrate with the flight recorder (and optionally the
        // profiler) on. The replayed outcomes are bit-identical to the
        // comparison runs above — recording is strictly passive.
        let options = TraceOptions {
            parallelism,
            profile,
            horizon_cap,
            ..TraceOptions::default()
        };
        for spec in &specs {
            let report = run_trace(spec.clone(), &options, &|_| ControllerKind::UtilBp.build())?;
            println!();
            println!("{}", report.render());
        }
    }
    Ok(())
}
