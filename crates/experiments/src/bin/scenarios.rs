//! Runs scenario specs across controllers on both substrates and prints a
//! comparison table.
//!
//! ```text
//! scenarios                    # the whole built-in library, both backends
//! scenarios --smoke            # one small built-in per backend (CI smoke)
//! scenarios --builtin NAME ... # selected built-ins by name
//! scenarios --parallelism rayon # run the sharded sim phases on the pool
//! scenarios file.scn ...       # scenario files in the text format
//! ```
//!
//! Env: `UTILBP_QUICK=1` caps every horizon at 300 ticks.
//!
//! Results are bit-identical across `--parallelism` modes and
//! `RAYON_NUM_THREADS` settings (the substrate determinism contract); the
//! CI determinism matrix diffs this binary's output across thread counts.

use utilbp_core::Parallelism;
use utilbp_experiments::{scenario_comparison, Backend, ControllerKind};
use utilbp_scenario::{builtin, builtin_scenarios, parse_scenario, ScenarioSpec};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let smoke = args.iter().any(|a| a == "--smoke");
    let mut files: Vec<&String> = Vec::new();
    let mut builtins: Vec<ScenarioSpec> = Vec::new();
    let mut parallelism = Parallelism::Serial;
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        match arg.as_str() {
            "--smoke" => {}
            "--builtin" => {
                let name = iter.next().expect("--builtin needs a scenario name");
                builtins
                    .push(builtin(name).unwrap_or_else(|| panic!("no built-in scenario `{name}`")));
            }
            "--parallelism" => {
                parallelism = match iter
                    .next()
                    .expect("--parallelism needs serial|rayon")
                    .as_str()
                {
                    "serial" => Parallelism::Serial,
                    "rayon" => Parallelism::Rayon,
                    other => panic!("unknown parallelism `{other}` (serial|rayon)"),
                };
            }
            other if other.starts_with("--") => panic!("unknown flag `{other}`"),
            _ => files.push(arg),
        }
    }

    assert!(
        builtins.is_empty() || files.is_empty(),
        "pass either --builtin names or scenario files, not both"
    );
    let mut specs: Vec<ScenarioSpec> = if !builtins.is_empty() {
        builtins
    } else if files.is_empty() {
        builtin_scenarios()
    } else {
        files
            .iter()
            .map(|path| {
                let text = std::fs::read_to_string(path)
                    .unwrap_or_else(|e| panic!("cannot read {path}: {e}"));
                let spec = parse_scenario(&text).unwrap_or_else(|e| panic!("{path}: {e}"));
                if let Err(e) = spec.validate() {
                    panic!("{path}: {e}");
                }
                spec
            })
            .collect()
    };

    let mut horizon_cap = None;
    if std::env::var("UTILBP_QUICK").is_ok_and(|v| v == "1") {
        horizon_cap = Some(300);
    }
    if smoke {
        // One small scenario, trimmed hard: the job only checks that the
        // engine drives both substrates end to end.
        specs.truncate(1);
        horizon_cap = Some(horizon_cap.unwrap_or(300).min(200));
    }

    let controllers = [
        ControllerKind::UtilBp,
        ControllerKind::CapBp { period: 16 },
        ControllerKind::FixedTime { period: 20 },
    ];
    let backends = [Backend::Queueing, Backend::Microscopic];

    eprintln!(
        "running {} scenario(s) × {} backend(s) × {} controller(s)…",
        specs.len(),
        backends.len(),
        controllers.len()
    );
    let comparison = scenario_comparison(&specs, &backends, &controllers, horizon_cap, parallelism);
    assert!(
        !comparison.rows.is_empty(),
        "scenario sweep produced no rows"
    );
    for row in &comparison.rows {
        assert!(
            row.outcomes.iter().all(|o| o.generated > 0),
            "scenario {} on {} generated no vehicles",
            row.spec.name,
            row.backend
        );
    }

    println!("Scenario comparison — mean queuing time (completed/generated)");
    println!();
    println!("{}", comparison.render());
}
