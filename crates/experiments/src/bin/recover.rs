//! Runs the crash-recovery drill and prints the verdict table.
//!
//! ```text
//! recover                              # grid-degraded-recovery, queueing, torn write
//! recover --scenario paper-grid        # any builtin scenario
//! recover --backend microscopic        # the other substrate
//! recover --kill 233                   # crash at a specific tick (0 = 5/8 horizon)
//! recover --period 32                  # checkpoint cadence
//! recover --corrupt flip               # damage mode: none|torn|flip
//! recover --artifacts DIR              # write golden/resumed JSONL + outcome tables
//! ```
//!
//! The drill kills a run at the crash tick, damages the newest checkpoint
//! as configured, verifies integrity validation rejects the damage, falls
//! back to the newest valid checkpoint, fast-forwards, and **exits
//! non-zero unless the recovered run is byte-identical to an
//! uninterrupted one** — same outcome, byte-equal telemetry JSONL. With
//! `--artifacts` the compared artifacts are written out for CI upload.

use utilbp_experiments::{run_recovery, Corruption, RecoveryConfig};
use utilbp_scenario::Backend;

fn main() {
    if let Err(message) = run() {
        eprintln!("recover: {message}");
        std::process::exit(1);
    }
}

fn run() -> Result<(), String> {
    let mut config = RecoveryConfig::default();
    let mut artifacts: Option<String> = None;
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        let mut value = |flag: &str| {
            iter.next()
                .map(|v| v.to_string())
                .ok_or_else(|| format!("{flag} needs a value"))
        };
        match arg.as_str() {
            "--scenario" => config.scenario = value("--scenario")?,
            "--backend" => {
                config.backend = match value("--backend")?.as_str() {
                    "queueing" => Backend::Queueing,
                    "microscopic" => Backend::Microscopic,
                    other => {
                        return Err(format!("unknown backend `{other}` (queueing|microscopic)"))
                    }
                };
            }
            "--kill" => {
                config.kill_tick = value("--kill")?
                    .parse()
                    .map_err(|e| format!("--kill: {e}"))?;
            }
            "--period" => {
                config.period = value("--period")?
                    .parse()
                    .map_err(|e| format!("--period: {e}"))?;
            }
            "--corrupt" => config.corruption = Corruption::parse(&value("--corrupt")?)?,
            "--artifacts" => artifacts = Some(value("--artifacts")?),
            other => return Err(format!("unknown flag `{other}`")),
        }
    }

    eprintln!(
        "drilling {} on {}: kill at {}, period {}, damage {:?}…",
        config.scenario,
        config.backend,
        if config.kill_tick == 0 {
            "5/8 horizon".to_string()
        } else {
            format!("tick {}", config.kill_tick)
        },
        config.period,
        config.corruption
    );
    let report = run_recovery(&config)?;
    println!("{}", report.render());
    println!();
    println!("{}", report.outcome_table);

    if let Some(dir) = artifacts {
        let dir = std::path::Path::new(&dir);
        std::fs::create_dir_all(dir).map_err(|e| format!("--artifacts {}: {e}", dir.display()))?;
        let write = |name: &str, contents: &str| {
            std::fs::write(dir.join(name), contents).map_err(|e| format!("writing {name}: {e}"))
        };
        write("recovery_report.txt", &report.render())?;
        write("outcome_resumed.txt", &report.outcome_table)?;
        write("events_golden.jsonl", &report.golden_jsonl)?;
        write("events_resumed.jsonl", &report.jsonl)?;
        eprintln!("artifacts written to {}", dir.display());
    }
    Ok(())
}
