//! Regenerates every artifact and writes CSV files for external plotting.
//!
//! Output directory: `UTILBP_OUT` (default `target/experiments`).

fn main() {
    let opts = utilbp_experiments::ExperimentOptions::from_env();
    let dir = std::env::var("UTILBP_OUT").unwrap_or_else(|_| "target/experiments".to_string());
    let dir = std::path::PathBuf::from(dir);
    eprintln!(
        "exporting artifacts to {} (backend={}, hour={} ticks)…",
        dir.display(),
        opts.backend,
        opts.hour.count()
    );
    let fig2 = utilbp_experiments::fig2(&opts);
    let table3 = utilbp_experiments::table3(&opts);
    let detail = utilbp_experiments::pattern1_detail(&opts);
    match utilbp_experiments::artifacts::export_all(&dir, &fig2, &table3, &detail) {
        Ok(paths) => {
            for p in paths {
                println!("wrote {}", p.display());
            }
        }
        Err(e) => {
            eprintln!("export failed: {e}");
            std::process::exit(1);
        }
    }
}
