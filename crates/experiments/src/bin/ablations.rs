//! Extension experiment: ablates UTIL-BP's mechanisms (hysteresis, special
//! cases, per-movement pressure, adaptivity) on Pattern I.

fn main() {
    let opts = utilbp_experiments::ExperimentOptions::from_env();
    eprintln!(
        "running ablations on the {} backend (hour = {} ticks)…",
        opts.backend,
        opts.hour.count()
    );
    let result = utilbp_experiments::ablation(&opts, utilbp_netgen::Pattern::I);
    println!("{}", result.render());
}
