//! Shared experiment options (durations, sweep ranges, backend).

use utilbp_core::Ticks;

use crate::scenario::Backend;

/// Knobs shared by all experiments. [`ExperimentOptions::paper`] reproduces
/// the paper's Section V setup; [`ExperimentOptions::quick`] is a scaled
/// version for CI and debug runs.
#[derive(Debug, Clone, PartialEq)]
pub struct ExperimentOptions {
    /// Simulation substrate (the paper used SUMO → our microscopic
    /// substitute).
    pub backend: Backend,
    /// Demand RNG seed.
    pub seed: u64,
    /// Duration of one pattern "hour" in ticks (paper: 3600 s).
    pub hour: Ticks,
    /// Horizon of the Pattern I trace experiments, Figs. 3–5 (paper:
    /// 2000 s).
    pub trace_horizon: Ticks,
    /// CAP-BP control periods to sweep, in ticks (paper Fig. 2: 10–80 s).
    pub periods: Vec<u64>,
    /// CAP-BP period used for the Figs. 3/5 trace comparison (the paper
    /// uses Pattern I's optimal period, 18 s per Table III).
    pub trace_capbp_period: u64,
}

impl ExperimentOptions {
    /// The paper's full-scale setup.
    pub fn paper() -> Self {
        ExperimentOptions {
            backend: Backend::Microscopic,
            seed: 2020,
            hour: Ticks::new(3600),
            trace_horizon: Ticks::new(2000),
            periods: (10..=80).step_by(5).collect(),
            trace_capbp_period: 18,
        }
    }

    /// A scaled-down setup for fast runs (shorter horizons, fewer sweep
    /// points, mesoscopic substrate).
    pub fn quick() -> Self {
        ExperimentOptions {
            backend: Backend::Queueing,
            seed: 2020,
            hour: Ticks::new(600),
            trace_horizon: Ticks::new(600),
            periods: vec![10, 16, 22, 30, 50, 80],
            trace_capbp_period: 16,
        }
    }

    /// Reads options from the environment: `UTILBP_QUICK=1` selects
    /// [`quick`](Self::quick), `UTILBP_BACKEND=queueing|micro` overrides
    /// the substrate, `UTILBP_HOUR=<secs>` the hour length, and
    /// `UTILBP_SEED=<n>` the seed.
    pub fn from_env() -> Self {
        let mut opts = if std::env::var("UTILBP_QUICK").is_ok_and(|v| v == "1") {
            ExperimentOptions::quick()
        } else {
            ExperimentOptions::paper()
        };
        match std::env::var("UTILBP_BACKEND").as_deref() {
            Ok("queueing") => opts.backend = Backend::Queueing,
            Ok("micro") | Ok("microscopic") => opts.backend = Backend::Microscopic,
            _ => {}
        }
        if let Ok(hour) = std::env::var("UTILBP_HOUR") {
            if let Ok(secs) = hour.parse::<u64>() {
                opts.hour = Ticks::new(secs.max(1));
            }
        }
        if let Ok(seed) = std::env::var("UTILBP_SEED") {
            if let Ok(s) = seed.parse::<u64>() {
                opts.seed = s;
            }
        }
        opts
    }
}

impl Default for ExperimentOptions {
    fn default() -> Self {
        ExperimentOptions::paper()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_options_match_section_v() {
        let o = ExperimentOptions::paper();
        assert_eq!(o.hour, Ticks::new(3600));
        assert_eq!(o.trace_horizon, Ticks::new(2000));
        assert_eq!(o.backend, Backend::Microscopic);
        assert_eq!(*o.periods.first().unwrap(), 10);
        assert_eq!(*o.periods.last().unwrap(), 80);
        assert_eq!(o.trace_capbp_period, 18, "Table III Pattern I optimum");
    }

    #[test]
    fn quick_options_are_smaller() {
        let q = ExperimentOptions::quick();
        let p = ExperimentOptions::paper();
        assert!(q.hour < p.hour);
        assert!(q.periods.len() < p.periods.len());
    }
}
