//! Scenario sweeps: run scenario specs across controllers on both
//! substrates and render a comparison table.

use utilbp_core::Parallelism;
use utilbp_metrics::TextTable;
use utilbp_scenario::{run_scenario, EngineConfig, ScenarioOutcome, ScenarioSpec};

use crate::scenario::{Backend, ControllerKind};

/// One rendered comparison row: a scenario × backend, with one outcome
/// per controller (input order).
#[derive(Debug, Clone)]
pub struct ScenarioRow {
    /// The scenario that ran.
    pub spec: ScenarioSpec,
    /// The substrate it ran on.
    pub backend: Backend,
    /// Outcomes per controller, in the order passed to
    /// [`scenario_comparison`].
    pub outcomes: Vec<ScenarioOutcome>,
}

/// The full sweep result.
#[derive(Debug, Clone)]
pub struct ScenarioComparison {
    /// Controller labels, column order.
    pub controllers: Vec<String>,
    /// One row per scenario × backend.
    pub rows: Vec<ScenarioRow>,
}

impl ScenarioComparison {
    /// Renders the comparison as an aligned table: one row per
    /// scenario × backend, one column per controller showing the mean
    /// queuing time (s) with completed/generated counts.
    pub fn render(&self) -> String {
        let mut headers = vec![
            "Scenario".to_string(),
            "Topology".to_string(),
            "Demand".to_string(),
            "Events".to_string(),
            "Backend".to_string(),
        ];
        headers.extend(self.controllers.iter().cloned());
        let mut table = TextTable::new(headers);
        for row in &self.rows {
            let mut cells = vec![
                row.spec.name.clone(),
                row.spec.topology.family().to_string(),
                row.spec.demand.label().to_string(),
                if row.spec.events.is_empty() {
                    "-".to_string()
                } else {
                    row.spec.events.len().to_string()
                },
                row.backend.to_string(),
            ];
            for outcome in &row.outcomes {
                let mut cell = format!(
                    "{:.1}s ({}/{})",
                    outcome.avg_queuing_time_s, outcome.completed, outcome.generated
                );
                // Routing-response counters, when the scenario has any:
                // the determinism matrix diffs these tables byte-for-byte,
                // so the replanning machinery is covered by the diff.
                if outcome.diverted > 0 || outcome.restored > 0 {
                    cell.push_str(&format!(" d{} r{}", outcome.diverted, outcome.restored));
                }
                // Watchdog counters, when a fallback ever activated.
                if outcome.fallback_activations > 0 {
                    cell.push_str(&format!(
                        " w{}/{}",
                        outcome.fallback_activations, outcome.ticks_degraded
                    ));
                }
                cells.push(cell);
            }
            table.push_row(cells);
        }
        table.render()
    }
}

/// Runs every scenario on every backend under every controller
/// (scenario × backend rows run on parallel threads; controllers within a
/// row run sequentially so each row is one unit of work).
///
/// `horizon_cap` trims each scenario's horizon (quick/CI runs); closure
/// and fault events past a trimmed horizon are dropped with the trim.
/// `parallelism` selects the execution mode of each simulation's sharded
/// phases — results are bit-identical across modes (the substrate
/// determinism contract), which the CI determinism matrix checks by
/// diffing rendered tables across `RAYON_NUM_THREADS` settings.
///
/// # Panics
///
/// Panics if a scenario fails validation — built-ins always pass; caller
/// supplied files should be validated first.
pub fn scenario_comparison(
    specs: &[ScenarioSpec],
    backends: &[Backend],
    controllers: &[ControllerKind],
    horizon_cap: Option<u64>,
    parallelism: Parallelism,
) -> ScenarioComparison {
    let mut jobs: Vec<(ScenarioSpec, Backend)> = Vec::new();
    for spec in specs {
        let mut spec = spec.clone();
        if let Some(cap) = horizon_cap {
            let cap = cap.max(1);
            if spec.horizon.count() > cap {
                // Drops closure/reopen events past the cap with the trim.
                spec.set_horizon(utilbp_core::Ticks::new(cap));
            }
        }
        for &backend in backends {
            jobs.push((spec.clone(), backend));
        }
    }

    let rows: Vec<ScenarioRow> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|(spec, backend)| {
                scope.spawn(move || {
                    let outcomes: Vec<ScenarioOutcome> = controllers
                        .iter()
                        .map(|kind| {
                            let config = EngineConfig {
                                parallelism,
                                ..EngineConfig::new(*backend)
                            };
                            run_scenario(spec.clone(), config, &|_| kind.build())
                                .unwrap_or_else(|e| panic!("scenario {}: {e}", spec.name))
                        })
                        .collect();
                    ScenarioRow {
                        spec: spec.clone(),
                        backend: *backend,
                        outcomes,
                    }
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("scenario thread must not panic"))
            .collect()
    });

    ScenarioComparison {
        controllers: controllers.iter().map(|k| k.label()).collect(),
        rows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_scenario::builtin;

    #[test]
    fn comparison_runs_and_renders() {
        let specs = vec![
            builtin("paper-grid").unwrap(),
            builtin("ring-pulse").unwrap(),
        ];
        let comparison = scenario_comparison(
            &specs,
            &[Backend::Queueing],
            &[
                ControllerKind::UtilBp,
                ControllerKind::FixedTime { period: 20 },
            ],
            Some(150),
            Parallelism::Serial,
        );
        assert_eq!(comparison.rows.len(), 2);
        for row in &comparison.rows {
            assert_eq!(row.outcomes.len(), 2);
            for outcome in &row.outcomes {
                assert!(outcome.generated > 0);
            }
        }
        let rendered = comparison.render();
        assert!(rendered.contains("paper-grid"));
        assert!(rendered.contains("ring-pulse"));
        assert!(rendered.contains("UTIL-BP"));
        assert!(rendered.contains("queueing"));
    }

    #[test]
    fn replanning_counters_surface_in_the_rendered_table() {
        let comparison = scenario_comparison(
            &[builtin("grid-incident-recover").unwrap()],
            &[Backend::Queueing],
            &[ControllerKind::UtilBp],
            Some(200),
            Parallelism::Serial,
        );
        let rendered = comparison.render();
        let outcome = &comparison.rows[0].outcomes[0];
        assert!(outcome.diverted > 0 && outcome.restored > 0);
        assert!(
            rendered.contains(&format!("d{} r{}", outcome.diverted, outcome.restored)),
            "diverted/restored counters render into the diffable table:\n{rendered}"
        );
    }

    #[test]
    fn horizon_cap_trims_and_drops_late_closures() {
        let spec = builtin("grid-incident").unwrap();
        let comparison = scenario_comparison(
            &[spec],
            &[Backend::Queueing],
            &[ControllerKind::UtilBp],
            Some(100),
            Parallelism::Serial,
        );
        // Close at 150 is past the 100-tick cap, so the event is gone and
        // the run still validates.
        assert!(comparison.rows[0].spec.events.is_empty());
        assert_eq!(comparison.rows[0].spec.horizon.count(), 100);
    }
}
