//! The statistical-equivalence harness for the batched car-following
//! kernel.
//!
//! `Fidelity::Batched` is deliberately **not** bit-compatible with the
//! exact sequential update (different dawdle-noise stream, different
//! floating-point association), so its correctness claim is statistical:
//! across many demand seeds, the batched kernel must produce the *same
//! distributions* of the macroscopic quantities the paper's experiments
//! are scored on. This module runs both fidelities over a seed sweep per
//! scenario and gates three per-seed metrics:
//!
//! - **mean waiting** — the paper's headline mean queuing time per
//!   vehicle (`avg_queuing_time_s`),
//! - **throughput** — vehicles completing their journey in the horizon,
//! - **mean queue** — time-averaged per-road occupancy, sampled every
//!   [`QUEUE_SAMPLE_EVERY`] ticks during the run.
//!
//! Two gates per metric: the relative gap of the per-seed means, and the
//! two-sample Kolmogorov–Smirnov distance between the seed distributions.
//! The KS gate catches shape drift a mean can hide (e.g. batched noise
//! systematically widening the waiting-time spread); the mean gate
//! catches small consistent bias a KS test at 16 samples is too coarse
//! to see.
//!
//! The harness also asserts the **queueing-backend invariance**: the
//! queueing substrate has no car-following phase, so flipping the
//! fidelity flag there must change nothing, bit for bit.

use utilbp_core::{SignalController, Ticks, UtilBp};
use utilbp_microsim::Fidelity;
use utilbp_scenario::{builtin, Backend, EngineConfig, ScenarioEngine, ScenarioSpec};

/// Ticks between occupancy samples for the mean-queue metric.
pub const QUEUE_SAMPLE_EVERY: u64 = 20;

/// The default scenario set: the paper's grid plus a non-grid topology
/// and a time-varying demand profile, so the gate covers constant and
/// transient regimes on distinct network families.
pub const DEFAULT_SCENARIOS: &[&str] = &["paper-grid", "arterial-rush-hour", "ring-pulse"];

/// Seed-sweep configuration.
pub struct EquivalenceOptions {
    /// Demand seeds per scenario (the spec's own seed is replaced by
    /// `base_seed + i` for `i` in `0..seeds`).
    pub seeds: u64,
    /// First seed of the sweep.
    pub base_seed: u64,
    /// Horizon cap in ticks (`None` runs each builtin's full horizon).
    pub horizon_cap: Option<u64>,
    /// Scenario names (built-ins) to sweep.
    pub scenarios: Vec<String>,
}

impl Default for EquivalenceOptions {
    fn default() -> Self {
        EquivalenceOptions {
            seeds: 16,
            base_seed: 1000,
            horizon_cap: None,
            scenarios: DEFAULT_SCENARIOS.iter().map(|s| s.to_string()).collect(),
        }
    }
}

/// Acceptance thresholds for one metric family.
#[derive(Clone, Copy)]
pub struct EquivalenceTolerances {
    /// Max relative gap of per-seed means, `|mean_b - mean_e| / mean_e`.
    pub mean_gap: f64,
    /// Max two-sample KS distance between the per-seed distributions.
    pub ks: f64,
}

/// The default gates, calibrated against the observed exact/batched gaps
/// (sub-5% mean gaps across the default sweep) with headroom for seed
/// noise, and against the KS critical value at n = 16 (α ≈ 0.05 rejects
/// at D ≈ 0.48 — a genuinely shifted distribution lands well above).
///
/// Root-level `tests/equivalence.rs` asserts the default sweep passes
/// these numbers.
pub const DEFAULT_TOLERANCES: EquivalenceTolerances = EquivalenceTolerances {
    mean_gap: 0.10,
    ks: 0.5,
};

/// Per-seed samples of one metric under both fidelities.
pub struct MetricSamples {
    /// Metric name (`mean-waiting` / `throughput` / `mean-queue`).
    pub name: &'static str,
    /// One sample per seed, exact fidelity.
    pub exact: Vec<f64>,
    /// One sample per seed, batched fidelity (same seed order).
    pub batched: Vec<f64>,
}

fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    xs.iter().sum::<f64>() / xs.len() as f64
}

impl MetricSamples {
    /// Relative gap of the per-seed means (relative to the exact mean;
    /// absolute gap if the exact mean is ~0, so an all-zero metric can
    /// never divide by zero).
    pub fn rel_mean_gap(&self) -> f64 {
        let e = mean(&self.exact);
        let b = mean(&self.batched);
        let denom = e.abs().max(1e-9);
        if denom <= 1e-9 {
            (b - e).abs()
        } else {
            (b - e).abs() / denom
        }
    }

    /// Two-sample Kolmogorov–Smirnov distance: the sup-norm gap between
    /// the empirical CDFs of the two seed distributions.
    pub fn ks_distance(&self) -> f64 {
        let mut a = self.exact.clone();
        let mut b = self.batched.clone();
        if a.is_empty() || b.is_empty() {
            return 0.0;
        }
        a.sort_by(f64::total_cmp);
        b.sort_by(f64::total_cmp);
        let (mut i, mut j, mut d) = (0usize, 0usize, 0.0f64);
        while i < a.len() && j < b.len() {
            // Process one distinct value of the pooled sample: advance
            // both CDFs past every tie at once, so equal samples
            // contribute zero gap.
            let x = if a[i] <= b[j] { a[i] } else { b[j] };
            while i < a.len() && a[i] <= x {
                i += 1;
            }
            while j < b.len() && b[j] <= x {
                j += 1;
            }
            let gap = (i as f64 / a.len() as f64 - j as f64 / b.len() as f64).abs();
            d = d.max(gap);
        }
        d
    }

    /// Checks this metric against `tol`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the metric and the violated gate.
    pub fn check(&self, tol: EquivalenceTolerances) -> Result<(), String> {
        let gap = self.rel_mean_gap();
        if gap > tol.mean_gap {
            return Err(format!(
                "{}: relative mean gap {gap:.4} exceeds {:.4} (exact mean {:.4}, batched mean {:.4})",
                self.name,
                tol.mean_gap,
                mean(&self.exact),
                mean(&self.batched),
            ));
        }
        let ks = self.ks_distance();
        if ks > tol.ks {
            return Err(format!(
                "{}: KS distance {ks:.4} exceeds {:.4}",
                self.name, tol.ks
            ));
        }
        Ok(())
    }
}

/// One scenario's sweep: the three metric sample sets.
pub struct ScenarioEquivalence {
    /// Built-in scenario name.
    pub scenario: String,
    /// Per-metric samples (mean-waiting, throughput, mean-queue).
    pub metrics: Vec<MetricSamples>,
}

impl ScenarioEquivalence {
    /// Checks every metric against `tol`.
    ///
    /// # Errors
    ///
    /// Returns a message naming the scenario, metric, and gate.
    pub fn check(&self, tol: EquivalenceTolerances) -> Result<(), String> {
        for m in &self.metrics {
            m.check(tol)
                .map_err(|e| format!("{}: {e}", self.scenario))?;
        }
        Ok(())
    }
}

/// The full harness result.
pub struct EquivalenceReport {
    /// One entry per swept scenario.
    pub scenarios: Vec<ScenarioEquivalence>,
    /// Seeds per scenario.
    pub seeds: u64,
    /// Whether the queueing-backend bit-invariance held.
    pub queueing_invariant: bool,
}

impl EquivalenceReport {
    /// Checks every scenario and the queueing invariance against `tol`.
    ///
    /// # Errors
    ///
    /// Returns the first violated gate.
    pub fn check(&self, tol: EquivalenceTolerances) -> Result<(), String> {
        if !self.queueing_invariant {
            return Err(
                "queueing backend is not fidelity-invariant (it must ignore the flag)".to_string(),
            );
        }
        for s in &self.scenarios {
            s.check(tol)?;
        }
        Ok(())
    }

    /// Renders the sweep as a fixed-width table (the CI artifact).
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "Statistical equivalence: exact vs batched fidelity ({} seeds/scenario)\n",
            self.seeds
        ));
        out.push_str(&format!(
            "{:<22} {:<14} {:>12} {:>12} {:>10} {:>8}\n",
            "scenario", "metric", "exact mean", "batch mean", "rel gap", "KS"
        ));
        for s in &self.scenarios {
            for m in &s.metrics {
                out.push_str(&format!(
                    "{:<22} {:<14} {:>12.4} {:>12.4} {:>10.4} {:>8.4}\n",
                    s.scenario,
                    m.name,
                    mean(&m.exact),
                    mean(&m.batched),
                    m.rel_mean_gap(),
                    m.ks_distance(),
                ));
            }
        }
        out.push_str(&format!(
            "queueing backend fidelity-invariant: {}\n",
            if self.queueing_invariant { "yes" } else { "NO" }
        ));
        out
    }
}

fn util_factory(_: usize) -> Box<dyn SignalController> {
    Box::new(UtilBp::paper())
}

/// One microscopic run: returns (mean waiting, completed, mean per-road
/// occupancy time-averaged over the run).
fn run_once(mut spec: ScenarioSpec, fidelity: Fidelity) -> Result<(f64, f64, f64), String> {
    spec.fidelity = fidelity;
    let num_roads = spec.build_network().topology().num_roads();
    let mut engine = ScenarioEngine::new(spec, EngineConfig::new(Backend::Microscopic), &|i| {
        util_factory(i)
    })?;
    let mut occupancy_sum = 0.0f64;
    let mut samples = 0u64;
    let horizon = engine.spec().horizon.count();
    for k in 0..horizon {
        engine.step();
        if k % QUEUE_SAMPLE_EVERY == 0 {
            let total: u64 = (0..num_roads)
                .map(|r| u64::from(engine.road_occupancy(utilbp_netgen::RoadId::new(r as u32))))
                .sum();
            occupancy_sum += total as f64 / num_roads as f64;
            samples += 1;
        }
    }
    let outcome = engine.outcome();
    Ok((
        outcome.avg_queuing_time_s,
        outcome.completed as f64,
        occupancy_sum / samples.max(1) as f64,
    ))
}

/// Runs the sweep: both fidelities × every seed × every scenario on the
/// microscopic substrate, plus the queueing bit-invariance check.
///
/// # Errors
///
/// Returns a message if a scenario name is unknown or an engine fails to
/// build (gate *checking* is separate — see [`EquivalenceReport::check`]).
pub fn equivalence(opts: &EquivalenceOptions) -> Result<EquivalenceReport, String> {
    let mut scenarios = Vec::new();
    for name in &opts.scenarios {
        let base = builtin(name).ok_or_else(|| format!("no built-in scenario `{name}`"))?;
        let mut waiting = MetricSamples {
            name: "mean-waiting",
            exact: Vec::new(),
            batched: Vec::new(),
        };
        let mut throughput = MetricSamples {
            name: "throughput",
            exact: Vec::new(),
            batched: Vec::new(),
        };
        let mut queue = MetricSamples {
            name: "mean-queue",
            exact: Vec::new(),
            batched: Vec::new(),
        };
        for i in 0..opts.seeds {
            let mut spec = base.clone();
            spec.seed = opts.base_seed + i;
            if let Some(cap) = opts.horizon_cap {
                spec.set_horizon(Ticks::new(spec.horizon.count().min(cap)));
            }
            let (w_e, t_e, q_e) = run_once(spec.clone(), Fidelity::Exact)?;
            let (w_b, t_b, q_b) = run_once(spec, Fidelity::Batched)?;
            waiting.exact.push(w_e);
            waiting.batched.push(w_b);
            throughput.exact.push(t_e);
            throughput.batched.push(t_b);
            queue.exact.push(q_e);
            queue.batched.push(q_b);
        }
        scenarios.push(ScenarioEquivalence {
            scenario: name.clone(),
            metrics: vec![waiting, throughput, queue],
        });
    }

    // The queueing substrate has no car-following phase: flipping the
    // fidelity flag must be a bit-level no-op there.
    let queueing_invariant = {
        let mut spec = builtin(opts.scenarios.first().map_or("paper-grid", |s| s.as_str()))
            .ok_or("no built-in scenario for the queueing invariance check")?;
        if let Some(cap) = opts.horizon_cap {
            spec.set_horizon(Ticks::new(spec.horizon.count().min(cap)));
        }
        let run = |fidelity: Fidelity| -> Result<_, String> {
            let mut s = spec.clone();
            s.fidelity = fidelity;
            let mut engine = ScenarioEngine::new(s, EngineConfig::new(Backend::Queueing), &|i| {
                util_factory(i)
            })?;
            engine.run_to_end();
            Ok(engine.outcome())
        };
        run(Fidelity::Exact)? == run(Fidelity::Batched)?
    };

    Ok(EquivalenceReport {
        scenarios,
        seeds: opts.seeds,
        queueing_invariant,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ks_distance_is_zero_on_identical_and_one_on_disjoint_samples() {
        let same = MetricSamples {
            name: "m",
            exact: vec![1.0, 2.0, 3.0],
            batched: vec![1.0, 2.0, 3.0],
        };
        assert_eq!(same.ks_distance(), 0.0);
        assert_eq!(same.rel_mean_gap(), 0.0);
        let disjoint = MetricSamples {
            name: "m",
            exact: vec![1.0, 2.0, 3.0],
            batched: vec![10.0, 20.0, 30.0],
        };
        assert!((disjoint.ks_distance() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn ks_distance_sees_a_half_shifted_sample() {
        // Half of b sits below all of a, the rest interleaves: D = 1/2.
        let m = MetricSamples {
            name: "m",
            exact: vec![10.0, 20.0, 30.0, 40.0],
            batched: vec![1.0, 2.0, 15.0, 25.0],
        };
        let d = m.ks_distance();
        assert!(d >= 0.5, "{d}");
    }

    #[test]
    fn check_names_the_violated_gate() {
        let m = MetricSamples {
            name: "mean-waiting",
            exact: vec![10.0, 10.0],
            batched: vec![20.0, 20.0],
        };
        let err = m
            .check(EquivalenceTolerances {
                mean_gap: 0.1,
                ks: 1.0,
            })
            .unwrap_err();
        assert!(
            err.contains("mean-waiting") && err.contains("mean gap"),
            "{err}"
        );
        let err = m
            .check(EquivalenceTolerances {
                mean_gap: 10.0,
                ks: 0.5,
            })
            .unwrap_err();
        assert!(err.contains("KS"), "{err}");
    }
}
