//! CSV export of every regenerated artifact, so external plotting tools
//! can draw the paper's figures from this workspace's data.

use std::fs;
use std::io;
use std::path::{Path, PathBuf};

use crate::fig2::Fig2Result;
use crate::table3::Table3Result;
use crate::traces::Pattern1Detail;

/// Renders Fig. 2's sweep as CSV (`period,capbp,utilbp`).
pub fn fig2_csv(result: &Fig2Result) -> String {
    let mut out = String::from("period_s,capbp_avg_queuing_s,utilbp_avg_queuing_s\n");
    for &(period, capbp) in &result.capbp {
        out.push_str(&format!("{period},{capbp},{}\n", result.utilbp));
    }
    out
}

/// Renders Table III as CSV.
pub fn table3_csv(result: &Table3Result) -> String {
    let mut out = String::from(
        "pattern,capbp_best_period_s,capbp_avg_queuing_s,utilbp_avg_queuing_s,improvement_pct\n",
    );
    for row in &result.rows {
        out.push_str(&format!(
            "{},{},{},{},{:.2}\n",
            row.pattern,
            row.best_period,
            row.capbp_s,
            row.utilbp_s,
            row.improvement_pct()
        ));
    }
    out
}

/// Renders the Fig. 3/4 phase traces as CSV
/// (`tick,capbp_phase,utilbp_phase`; 0 = amber).
pub fn traces_csv(detail: &Pattern1Detail) -> String {
    let cap = detail.capbp_trace.expand();
    let util = detail.utilbp_trace.expand();
    let mut out = String::from("tick,capbp_phase,utilbp_phase\n");
    for (k, (c, u)) in cap.iter().zip(&util).enumerate() {
        out.push_str(&format!("{k},{c},{u}\n"));
    }
    out
}

/// Renders the Fig. 5 queue series as CSV (`tick,capbp_queue,utilbp_queue`).
pub fn fig5_csv(detail: &Pattern1Detail) -> String {
    let mut out = String::from("tick,capbp_queue,utilbp_queue\n");
    for ((t, c), (_, u)) in detail.capbp_queue.iter().zip(detail.utilbp_queue.iter()) {
        out.push_str(&format!("{},{c},{u}\n", t.index()));
    }
    out
}

/// Writes every artifact to `dir` (created if missing) and returns the
/// paths written: `fig2.csv`, `table3.csv`, `fig3_fig4_traces.csv`,
/// `fig5.csv`.
///
/// # Errors
///
/// Propagates any I/O error from creating the directory or writing files.
pub fn export_all(
    dir: &Path,
    fig2: &Fig2Result,
    table3: &Table3Result,
    detail: &Pattern1Detail,
) -> io::Result<Vec<PathBuf>> {
    fs::create_dir_all(dir)?;
    let files = [
        ("fig2.csv", fig2_csv(fig2)),
        ("table3.csv", table3_csv(table3)),
        ("fig3_fig4_traces.csv", traces_csv(detail)),
        ("fig5.csv", fig5_csv(detail)),
    ];
    let mut written = Vec::with_capacity(files.len());
    for (name, contents) in files {
        let path = dir.join(name);
        fs::write(&path, contents)?;
        written.push(path);
    }
    Ok(written)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::options::ExperimentOptions;
    use crate::scenario::Backend;
    use crate::{fig2, pattern1_detail, table3};
    use utilbp_core::Ticks;

    fn tiny() -> ExperimentOptions {
        let mut opts = ExperimentOptions::quick();
        opts.backend = Backend::Queueing;
        opts.hour = Ticks::new(200);
        opts.trace_horizon = Ticks::new(200);
        opts.periods = vec![12, 20];
        opts
    }

    #[test]
    fn csv_payloads_are_well_formed() {
        let opts = tiny();
        let f2 = fig2(&opts);
        let t3 = table3(&opts);
        let detail = pattern1_detail(&opts);

        let f2_csv = fig2_csv(&f2);
        assert!(f2_csv.starts_with("period_s,"));
        assert_eq!(f2_csv.lines().count(), 1 + f2.capbp.len());

        let t3_csv = table3_csv(&t3);
        assert_eq!(t3_csv.lines().count(), 1 + 5);

        let tr_csv = traces_csv(&detail);
        assert_eq!(tr_csv.lines().count(), 1 + 200);

        let f5_csv = fig5_csv(&detail);
        assert!(f5_csv.lines().count() > 10);
    }

    #[test]
    fn export_writes_all_files() {
        let opts = tiny();
        let f2 = fig2(&opts);
        let t3 = table3(&opts);
        let detail = pattern1_detail(&opts);

        let dir =
            std::env::temp_dir().join(format!("utilbp-artifacts-test-{}", std::process::id()));
        let written = export_all(&dir, &f2, &t3, &detail).expect("export succeeds");
        assert_eq!(written.len(), 4);
        for path in &written {
            let metadata = std::fs::metadata(path).expect("file exists");
            assert!(metadata.len() > 0, "{path:?} is empty");
        }
        std::fs::remove_dir_all(&dir).ok();
    }
}
