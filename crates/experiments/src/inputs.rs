//! Renders the paper's input tables (Table I and Table II) — useful for
//! verifying the experimental setup at a glance.

use utilbp_core::standard::Approach;
use utilbp_metrics::TextTable;
use utilbp_netgen::{Pattern, TurningProbabilities};

/// Renders Table I (turning probabilities of vehicles entering the
/// network).
pub fn render_table1(turning: &TurningProbabilities) -> String {
    let mut table = TextTable::new(["Entering from", "North", "East", "South", "West"]);
    let fmt = |f: &dyn Fn(Approach) -> f64| -> [String; 4] {
        [
            format!("{:.1}", f(Approach::North)),
            format!("{:.1}", f(Approach::East)),
            format!("{:.1}", f(Approach::South)),
            format!("{:.1}", f(Approach::West)),
        ]
    };
    let right = fmt(&|s| turning.right(s));
    let left = fmt(&|s| turning.left(s));
    let straight = fmt(&|s| turning.straight(s));
    table.push_row(
        std::iter::once("Right-turning probability".to_string())
            .chain(right)
            .collect::<Vec<_>>(),
    );
    table.push_row(
        std::iter::once("Left-turning probability".to_string())
            .chain(left)
            .collect::<Vec<_>>(),
    );
    table.push_row(
        std::iter::once("Straight probability (derived)".to_string())
            .chain(straight)
            .collect::<Vec<_>>(),
    );
    format!("Table I — turning probabilities\n\n{}", table.render())
}

/// Renders Table II (average inter-arrival time of vehicles entering the
/// network, per pattern and side).
pub fn render_table2() -> String {
    let mut table = TextTable::new(["Pattern", "Description", "North", "East", "South", "West"]);
    for pattern in Pattern::ALL {
        table.push_row([
            pattern.to_string(),
            pattern.description().to_string(),
            format!("{} s", pattern.inter_arrival_s(Approach::North)),
            format!("{} s", pattern.inter_arrival_s(Approach::East)),
            format!("{} s", pattern.inter_arrival_s(Approach::South)),
            format!("{} s", pattern.inter_arrival_s(Approach::West)),
        ]);
    }
    format!(
        "Table II — average inter-arrival times at each entry road\n\n{}",
        table.render()
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shows_paper_values() {
        let rendered = render_table1(&TurningProbabilities::PAPER);
        assert!(rendered.contains("0.4"));
        assert!(rendered.contains("Right-turning"));
        assert!(rendered.contains("Straight"));
    }

    #[test]
    fn table2_lists_all_patterns() {
        let rendered = render_table2();
        for needle in [
            "adjacent heavy",
            "uniform",
            "opposite heavy",
            "single heavy",
            "3 s",
            "9 s",
        ] {
            assert!(rendered.contains(needle), "missing {needle}");
        }
    }
}
