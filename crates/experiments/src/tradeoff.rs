//! Extension study (paper future work): the stabilization/utilization
//! trade-off, explored through the `α`/`β` penalty space.
//!
//! The paper fixes `α = −1, β = −2` and notes that "β can also be larger
//! than α, depending on the characteristics of the entire traffic network
//! and preference of the traffic control authority". This module sweeps
//! both orderings and magnitudes and reports the resulting queuing times,
//! total throughput, and amber counts.

use utilbp_core::standard::Approach;
use utilbp_core::{GainPenalties, UtilBpConfig};
use utilbp_metrics::TextTable;
use utilbp_netgen::{DemandSchedule, GridNetwork, GridSpec, Pattern};

use crate::options::ExperimentOptions;
use crate::runner::{run_many, Probe};
use crate::scenario::{ControllerKind, Scenario};

/// One penalty combination's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffRow {
    /// The `α` penalty used.
    pub alpha: f64,
    /// The `β` penalty used.
    pub beta: f64,
    /// Average queuing time, seconds.
    pub avg_queuing_time_s: f64,
    /// Completed journeys.
    pub completed: u64,
    /// Amber activations at the probed (top-right) intersection.
    pub ambers: usize,
}

/// The trade-off sweep result.
#[derive(Debug, Clone, PartialEq)]
pub struct TradeoffResult {
    /// The pattern used.
    pub pattern: Pattern,
    /// One row per penalty combination.
    pub rows: Vec<TradeoffRow>,
}

impl TradeoffResult {
    /// Renders the sweep as a table.
    pub fn render(&self) -> String {
        let mut table = TextTable::new([
            "alpha",
            "beta",
            "Avg queuing [s]",
            "Completed",
            "Ambers @ top-right",
        ]);
        for row in &self.rows {
            table.push_row([
                format!("{}", row.alpha),
                format!("{}", row.beta),
                format!("{:.2}", row.avg_queuing_time_s),
                row.completed.to_string(),
                row.ambers.to_string(),
            ]);
        }
        format!(
            "Stability/utilization trade-off — α/β sweep, Pattern {}\n\n{}",
            self.pattern,
            table.render()
        )
    }

    /// The best (minimum queuing time) combination.
    pub fn best(&self) -> &TradeoffRow {
        self.rows
            .iter()
            .min_by(|a, b| a.avg_queuing_time_s.total_cmp(&b.avg_queuing_time_s))
            .expect("sweep is non-empty")
    }
}

/// The penalty combinations swept: the paper's default, magnitude
/// variations, and the reversed ordering the paper mentions.
pub fn penalty_grid() -> Vec<(f64, f64)> {
    vec![
        (-1.0, -2.0), // the paper's choice: full exits rank worst
        (-2.0, -1.0), // reversed: empty approaches rank worst
        (-0.5, -4.0), // strong full-exit aversion
        (-4.0, -0.5), // strong empty-approach aversion
        (-1.0, -1.0), // no discrimination
        (-10.0, -20.0), // same ordering, larger magnitudes (no effect on
                      // ranking vs ordinary links; sanity row)
    ]
}

/// Runs the trade-off sweep on `pattern`.
pub fn tradeoff(opts: &ExperimentOptions, pattern: Pattern) -> TradeoffResult {
    let scenario = Scenario::paper(
        DemandSchedule::constant(pattern, opts.hour),
        opts.backend,
        opts.seed,
    );
    let grid = GridNetwork::new(GridSpec::paper());
    let probe = Probe {
        phase_traces: vec![grid.top_right()],
        queue_series: vec![(grid.top_right(), Approach::East.incoming())],
        sample_every: 10,
    };
    let kinds: Vec<ControllerKind> = penalty_grid()
        .into_iter()
        .map(|(alpha, beta)| {
            ControllerKind::UtilBpWith(UtilBpConfig {
                penalties: GainPenalties::new(alpha, beta)
                    .expect("grid values are strictly negative"),
                ..UtilBpConfig::default()
            })
        })
        .collect();
    let results = run_many(&scenario, &kinds, &probe);
    TradeoffResult {
        pattern,
        rows: penalty_grid()
            .into_iter()
            .zip(results)
            .map(|((alpha, beta), r)| TradeoffRow {
                alpha,
                beta,
                avg_queuing_time_s: r.avg_queuing_time_s,
                completed: r.completed,
                ambers: r.phase_traces[0].num_transitions(),
            })
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::Ticks;

    #[test]
    fn penalty_grid_is_valid_and_covers_both_orderings() {
        let grid = penalty_grid();
        assert!(grid.iter().all(|&(a, b)| a < 0.0 && b < 0.0));
        assert!(grid.iter().any(|&(a, b)| a > b), "paper ordering present");
        assert!(
            grid.iter().any(|&(a, b)| a < b),
            "reversed ordering present"
        );
    }

    #[test]
    fn tradeoff_runs_quick() {
        let mut opts = ExperimentOptions::quick();
        opts.hour = Ticks::new(240);
        let result = tradeoff(&opts, Pattern::I);
        assert_eq!(result.rows.len(), penalty_grid().len());
        assert!(result.render().contains("trade-off"));
        let best = result.best();
        assert!(best.avg_queuing_time_s >= 0.0);
    }
}
