//! # utilbp-experiments
//!
//! The experiment harness that regenerates every table and figure of the
//! paper's evaluation section (Section V):
//!
//! | Paper artifact | Function | Binary |
//! |---|---|---|
//! | Table I (input) | [`render_table1`] | `all` |
//! | Table II (input) | [`render_table2`] | `all` |
//! | Fig. 2 | [`fig2`] | `fig2` |
//! | Table III | [`table3`] | `table3` |
//! | Figs. 3–4 | [`pattern1_detail`] → `render_fig3_fig4` | `fig3_fig4` |
//! | Fig. 5 | [`pattern1_detail`] → `render_fig5` | `fig5` |
//! | Ablations (extension) | [`ablation`] | `ablations` |
//!
//! All experiments run on either substrate ([`Backend::Microscopic`] — the
//! SUMO substitute, used for headline numbers — or [`Backend::Queueing`]
//! for fast sweeps) and are deterministic for a given seed. Durations and
//! sweep ranges live in [`ExperimentOptions`]; `ExperimentOptions::paper()`
//! reproduces the full Section V setup, `quick()` a scaled-down version,
//! and `from_env()` honors `UTILBP_QUICK` / `UTILBP_BACKEND` /
//! `UTILBP_HOUR` / `UTILBP_SEED`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ablation;
pub mod artifacts;
mod chaos;
mod equivalence;
mod fig2;
mod inputs;
mod options;
mod recovery;
mod robustness;
mod runner;
mod scenario;
mod scenarios;
mod table3;
mod trace;
mod traces;
mod tradeoff;

pub use ablation::{ablation, variants, AblationResult, AblationRow};
pub use chaos::{chaos_timeline, run_chaos, ChaosConfig, ChaosReport, TimelineReport};
pub use equivalence::{
    equivalence, EquivalenceOptions, EquivalenceReport, EquivalenceTolerances, MetricSamples,
    ScenarioEquivalence, DEFAULT_SCENARIOS, DEFAULT_TOLERANCES,
};
pub use fig2::{fig2, Fig2Result};
pub use inputs::{render_table1, render_table2};
pub use options::ExperimentOptions;
pub use recovery::{
    recover_newest_valid, render_outcome, run_recovery, Corruption, RecoveryConfig, RecoveryReport,
};
pub use robustness::{robustness, RobustnessResult};
pub use runner::{run, run_many, Probe, RunResult};
pub use scenario::{Backend, ControllerKind, Scenario};
pub use scenarios::{scenario_comparison, ScenarioComparison, ScenarioRow};
pub use table3::{table3, Table3Result, Table3Row};
pub use trace::{run_trace, TraceOptions, TraceReport};
pub use traces::{pattern1_detail, Pattern1Detail};
pub use tradeoff::{penalty_grid, tradeoff, TradeoffResult, TradeoffRow};
