//! Seed-robustness study: is the Table III conclusion an artifact of one
//! Poisson sample?
//!
//! The paper reports single simulation runs. This extension repeats the
//! UTIL-BP vs best-period CAP-BP comparison over several demand seeds and
//! reports the distribution of the improvement, using
//! [`SummaryStats`](utilbp_metrics::SummaryStats) to aggregate.

use utilbp_metrics::{SummaryStats, TextTable};
use utilbp_netgen::{DemandSchedule, Pattern};

use crate::options::ExperimentOptions;
use crate::runner::{run, run_many, Probe};
use crate::scenario::{ControllerKind, Scenario};

/// Robustness outcome for one pattern.
#[derive(Debug, Clone)]
pub struct RobustnessResult {
    /// The pattern studied.
    pub pattern: Pattern,
    /// The seeds used.
    pub seeds: Vec<u64>,
    /// Improvement (%) of UTIL-BP over best-period CAP-BP, one per seed.
    pub improvements_pct: Vec<f64>,
    /// Aggregate statistics over the improvements.
    pub stats: SummaryStats,
}

impl RobustnessResult {
    /// Renders the per-seed improvements and their aggregate.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(["Seed", "UTIL-BP improvement over CAP-BP"]);
        for (seed, imp) in self.seeds.iter().zip(&self.improvements_pct) {
            table.push_row([seed.to_string(), format!("{imp:+.1}%")]);
        }
        format!(
            "Seed robustness — Pattern {} ({} seeds)\n\n{}\nmean {:+.1}% | std {:.1} | min {:+.1}% | max {:+.1}%\n",
            self.pattern,
            self.seeds.len(),
            table.render(),
            self.stats.mean(),
            self.stats.sample_std_dev(),
            self.stats.min().unwrap_or(0.0),
            self.stats.max().unwrap_or(0.0),
        )
    }
}

/// Runs the robustness study: for each seed, sweep CAP-BP's period, take
/// its best, and compare UTIL-BP on the same demand.
pub fn robustness(opts: &ExperimentOptions, pattern: Pattern, seeds: &[u64]) -> RobustnessResult {
    let mut improvements = Vec::with_capacity(seeds.len());
    let mut stats = SummaryStats::new();
    for &seed in seeds {
        let scenario = Scenario::paper(
            DemandSchedule::constant(pattern, opts.hour),
            opts.backend,
            seed,
        );
        let kinds: Vec<ControllerKind> = opts
            .periods
            .iter()
            .map(|&period| ControllerKind::CapBp { period })
            .collect();
        let sweep = run_many(&scenario, &kinds, &Probe::none());
        let best = sweep
            .iter()
            .map(|r| r.avg_queuing_time_s)
            .fold(f64::INFINITY, f64::min);
        let util = run(&scenario, &ControllerKind::UtilBp, &Probe::none()).avg_queuing_time_s;
        let improvement = (best - util) / best * 100.0;
        improvements.push(improvement);
        stats.record(improvement);
    }
    RobustnessResult {
        pattern,
        seeds: seeds.to_vec(),
        improvements_pct: improvements,
        stats,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::Ticks;

    #[test]
    fn robustness_aggregates_across_seeds() {
        let mut opts = ExperimentOptions::quick();
        opts.hour = Ticks::new(240);
        opts.periods = vec![12, 20];
        let result = robustness(&opts, Pattern::II, &[1, 2, 3]);
        assert_eq!(result.improvements_pct.len(), 3);
        assert_eq!(result.stats.count(), 3);
        let rendered = result.render();
        assert!(rendered.contains("Seed robustness"));
        assert!(rendered.contains("mean"));
    }
}
