//! The deterministic chaos harness: seeded fault timelines over both
//! substrates, re-proving the fault plane's safety properties on each.
//!
//! Each timeline is a scenario on the paper's grid whose fault content —
//! a sensor-fault window, an actuation-fault window, and (on half the
//! timelines) a closure/reopen interleaving — is drawn from a splitmix64
//! stream seeded by `master_seed + index`. Chaos is *reproducible*: the
//! same config always generates the same timelines, so a failing seed is
//! a one-line repro.
//!
//! For every timeline × backend the harness runs the scenario four
//! times, always with the [`InvariantGuard`] installed (so vehicle
//! conservation, sensor consistency, and closed-road emptiness are
//! re-proved after every tick — any violation panics with a tick-stamped
//! diagnostic):
//!
//! 1. watchdog installed, `Serial` — the reference outcome;
//! 2. watchdog installed, `Rayon` — must equal the reference bit for
//!    bit (the substrate determinism contract under active faults);
//! 3. watchdog installed, `Serial` again — repeat determinism;
//! 4. watchdog absent, `Serial` — the degradation baseline;
//! 5. a **crash-recovery round**: the reference run is repeated with
//!    periodic checkpointing, killed at 5/8 of the horizon (inside the
//!    actuation-fault window), its newest checkpoint suffers a torn
//!    write, and recovery must reject the damage on checksum/structure
//!    grounds, fall back to the previous capture, fast-forward, and
//!    land on the reference outcome exactly — checkpoint durability
//!    re-proved under active sensor faults, actuation faults, and
//!    closures, with the guard watching every replayed tick.
//!
//! The report's aggregate check bounds degradation: summed over the
//! timelines of one backend, mean waiting with the watchdog fallback
//! must not exceed waiting without it by more than a small tolerance
//! (individual light-fault timelines where the watchdog never trips are
//! exact ties by construction — the monitor draws nothing and passes the
//! inner decision through).
//!
//! [`InvariantGuard`]: utilbp_substrate::InvariantGuard

use utilbp_core::{Parallelism, Tick, Ticks};
use utilbp_metrics::TextTable;
use utilbp_scenario::{
    run_scenario, Backend, CheckpointPolicy, DemandProfile, EngineConfig, ReplanPolicy,
    ScenarioEngine, ScenarioEvent, ScenarioOutcome, ScenarioSpec, TopologySpec,
};

use crate::recovery::recover_newest_valid;
use crate::scenario::ControllerKind;

/// Headroom the aggregate degradation bound allows for watchdog false
/// positives on light-fault timelines (see the module docs).
const DEGRADATION_TOLERANCE: f64 = 1.05;

/// How much chaos to generate.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosConfig {
    /// Fault timelines per backend.
    pub timelines: usize,
    /// Horizon of every timeline, in ticks.
    pub horizon: u64,
    /// Seed of the timeline generator (timeline `k` draws from a
    /// splitmix64 stream seeded `master_seed + k`).
    pub master_seed: u64,
    /// The substrates to cover.
    pub backends: Vec<Backend>,
}

impl Default for ChaosConfig {
    fn default() -> Self {
        ChaosConfig {
            timelines: 20,
            horizon: 240,
            master_seed: 2020,
            backends: Backend::ALL.to_vec(),
        }
    }
}

/// One timeline × backend result.
#[derive(Debug, Clone)]
pub struct TimelineReport {
    /// The timeline's index in the run.
    pub index: usize,
    /// The timeline's derived seed (reproduces it alone).
    pub seed: u64,
    /// The substrate it ran on.
    pub backend: Backend,
    /// The guarded reference outcome (watchdog installed, serial).
    pub with_fallback: ScenarioOutcome,
    /// The same timeline without the watchdog — the degradation
    /// baseline.
    pub without_fallback: ScenarioOutcome,
}

/// The rendered result of one chaos run.
#[derive(Debug, Clone)]
pub struct ChaosReport {
    /// One entry per timeline × backend.
    pub timelines: Vec<TimelineReport>,
}

impl ChaosReport {
    /// Renders the resilience table: one row per timeline × backend with
    /// the watchdog counters and the with/without-fallback waiting
    /// comparison.
    pub fn render(&self) -> String {
        let mut table = TextTable::new(vec![
            "Timeline".to_string(),
            "Seed".to_string(),
            "Backend".to_string(),
            "Gen".to_string(),
            "Done".to_string(),
            "Activations".to_string(),
            "Degraded".to_string(),
            "Recovery".to_string(),
            "Wait (fallback)".to_string(),
            "Wait (none)".to_string(),
        ]);
        for report in &self.timelines {
            let with = &report.with_fallback;
            table.push_row(vec![
                report.index.to_string(),
                report.seed.to_string(),
                report.backend.to_string(),
                with.generated.to_string(),
                with.completed.to_string(),
                with.fallback_activations.to_string(),
                with.ticks_degraded.to_string(),
                format!("{:.1}", with.recovery_time),
                format!("{:.2}s", with.avg_queuing_time_s),
                format!("{:.2}s", report.without_fallback.avg_queuing_time_s),
            ]);
        }
        table.render()
    }

    /// Total watchdog fallback activations across all timelines.
    pub fn total_activations(&self) -> u64 {
        self.timelines
            .iter()
            .map(|t| t.with_fallback.fallback_activations)
            .sum()
    }
}

/// The splitmix64 step — the timeline generator's only randomness, so a
/// timeline is a pure function of its seed.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A uniform draw in `[0, 1)`.
fn unit(state: &mut u64) -> f64 {
    (splitmix64(state) >> 11) as f64 / (1u64 << 53) as f64
}

/// Generates timeline `index`'s scenario (watchdog not yet attached —
/// the harness runs each timeline with and without one).
///
/// # Panics
///
/// Panics if `horizon < 40` — too short to fit the fault windows.
pub fn chaos_timeline(master_seed: u64, index: usize, horizon: u64) -> ScenarioSpec {
    assert!(horizon >= 40, "chaos timelines need at least 40 ticks");
    let seed = master_seed.wrapping_add(index as u64);
    let mut stream = seed;
    let h = horizon;

    let mut events = vec![
        // A mid-run sensor window biased toward the persistent modes
        // (frozen counters, stuck-at detectors): those are what the
        // watchdog exists to catch, and what hurt an unmonitored
        // controller the most.
        ScenarioEvent::SensorFault {
            config: utilbp_baselines::SensorFaultConfig {
                dropout: 0.2 * unit(&mut stream),
                frozen: 0.4 + 0.5 * unit(&mut stream),
                stuck_at: 0.3 * unit(&mut stream),
                stuck_at_value: (splitmix64(&mut stream) % 40) as u32,
                ..utilbp_baselines::SensorFaultConfig::NONE
            },
            from: Tick::new(h / 4),
            until: Tick::new(h / 2),
        },
        // An overlapping actuation window: stuck phases, dropped and
        // delayed commands.
        ScenarioEvent::ActuationFault {
            config: utilbp_baselines::ActuationFaultConfig {
                stuck: 0.1 * unit(&mut stream),
                stuck_ticks: 10 + splitmix64(&mut stream) % 30,
                drop: 0.3 * unit(&mut stream),
                delay: 0.3 * unit(&mut stream),
                delay_ticks: 1 + splitmix64(&mut stream) % 6,
            },
            from: Tick::new(h / 3),
            until: Tick::new(3 * h / 4),
        },
    ];
    // Half the timelines interleave a closure/reopen pair with the fault
    // windows, exercising the guard's closed-road invariant under
    // simultaneous sensor and actuation faults.
    if splitmix64(&mut stream).is_multiple_of(2) {
        let prototype = ScenarioSpec {
            name: String::new(),
            seed,
            horizon: Ticks::new(h),
            topology: grid_topology(),
            demand: DemandProfile::Constant,
            events: Vec::new(),
            replan: ReplanPolicy::Off,
            watchdog: None,
            fidelity: utilbp_microsim::Fidelity::Exact,
        };
        let network = prototype.build_network();
        let topology = network.topology();
        // Exit roads cannot close (closing one strands traffic, and
        // validation rejects it) — draw from the closable set.
        let closable: Vec<utilbp_netgen::RoadId> = topology
            .road_ids()
            .filter(|&r| !topology.road(r).is_exit())
            .collect();
        let road = closable[(splitmix64(&mut stream) % closable.len() as u64) as usize];
        events.push(ScenarioEvent::CloseRoad {
            road,
            at: Tick::new(h / 4 + 5),
        });
        events.push(ScenarioEvent::ReopenRoad {
            road,
            at: Tick::new(2 * h / 3),
        });
    }

    ScenarioSpec {
        name: format!("chaos-{index}"),
        seed,
        horizon: Ticks::new(h),
        topology: grid_topology(),
        demand: DemandProfile::Constant,
        events,
        replan: ReplanPolicy::Off,
        watchdog: None,
        fidelity: utilbp_microsim::Fidelity::Exact,
    }
}

fn grid_topology() -> TopologySpec {
    TopologySpec::Grid {
        spec: utilbp_netgen::GridSpec::paper(),
        pattern: utilbp_netgen::Pattern::II,
    }
}

/// Runs the harness: generates `config.timelines` timelines, runs each
/// on every configured backend (see the module docs for the four runs
/// per timeline), and returns the report.
///
/// # Errors
///
/// Returns a one-line diagnostic naming the timeline seed on the first
/// violated property: a Serial/Rayon or repeat-run outcome mismatch, or
/// an aggregate degradation bound breach. Invariant violations inside a
/// run (conservation, sensor consistency, closed-road emptiness) panic
/// with the guard's tick-stamped diagnostic instead — the harness runs
/// every simulation guarded.
pub fn run_chaos(config: &ChaosConfig) -> Result<ChaosReport, String> {
    let factory = |_: usize| ControllerKind::UtilBp.build();
    let mut jobs: Vec<(usize, Backend)> = Vec::new();
    for index in 0..config.timelines {
        for &backend in &config.backends {
            jobs.push((index, backend));
        }
    }

    let results: Vec<Result<TimelineReport, String>> = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .iter()
            .map(|&(index, backend)| {
                scope.spawn(move || {
                    let spec = chaos_timeline(config.master_seed, index, config.horizon);
                    let seed = spec.seed;
                    let mut with = spec.clone();
                    with.watchdog = Some(utilbp_baselines::WatchdogConfig::default());

                    let serial = EngineConfig::new(backend).guarded();
                    let rayon = EngineConfig {
                        parallelism: Parallelism::Rayon,
                        ..serial
                    };
                    let reference = run_scenario(with.clone(), serial, &factory)
                        .map_err(|e| format!("timeline seed {seed} on {backend}: {e}"))?;
                    let on_pool = run_scenario(with.clone(), rayon, &factory)
                        .map_err(|e| format!("timeline seed {seed} on {backend}: {e}"))?;
                    if on_pool != reference {
                        return Err(format!(
                            "timeline seed {seed} on {backend}: Rayon outcome diverges from Serial"
                        ));
                    }
                    let repeat = run_scenario(with.clone(), serial, &factory)
                        .map_err(|e| format!("timeline seed {seed} on {backend}: {e}"))?;
                    if repeat != reference {
                        return Err(format!(
                            "timeline seed {seed} on {backend}: repeat run diverges"
                        ));
                    }

                    // Run 5: the crash-recovery round (see the module
                    // docs). Period horizon/6 guarantees at least two
                    // captures exist by the 5/8-horizon kill, so there
                    // is a valid fallback behind the torn newest.
                    let mut doomed = ScenarioEngine::new(with, serial, &factory)
                        .map_err(|e| format!("timeline seed {seed} on {backend}: {e}"))?;
                    doomed.enable_checkpoints(CheckpointPolicy::every(config.horizon / 6));
                    for _ in 0..5 * config.horizon / 8 {
                        doomed.step();
                    }
                    let mut store = doomed.checkpoints().to_vec();
                    drop(doomed);
                    let newest = store.last_mut().expect("two captures by the kill tick");
                    let keep = newest.1.len() * 2 / 3;
                    newest.1.truncate(keep);
                    let (mut recovered, resumed_at, rejected) =
                        recover_newest_valid(&store, serial, &factory)
                            .map_err(|e| format!("timeline seed {seed} on {backend}: {e}"))?;
                    if rejected.len() != 1 {
                        return Err(format!(
                            "timeline seed {seed} on {backend}: torn checkpoint was not \
                             rejected exactly once ({rejected:?})"
                        ));
                    }
                    if resumed_at.index() >= 5 * config.horizon / 8 {
                        return Err(format!(
                            "timeline seed {seed} on {backend}: recovery resumed at \
                             tick {resumed_at:?}, past the kill"
                        ));
                    }
                    recovered.run_to_end();
                    if recovered.outcome() != reference {
                        return Err(format!(
                            "timeline seed {seed} on {backend}: recovered run diverges \
                             from the uninterrupted reference"
                        ));
                    }

                    let without = run_scenario(spec, serial, &factory)
                        .map_err(|e| format!("timeline seed {seed} on {backend}: {e}"))?;
                    Ok(TimelineReport {
                        index,
                        seed,
                        backend,
                        with_fallback: reference,
                        without_fallback: without,
                    })
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("chaos timeline must not panic"))
            .collect()
    });

    let timelines: Vec<TimelineReport> = results.into_iter().collect::<Result<_, _>>()?;

    // The aggregate degradation bound, per backend: waiting with the
    // fallback must not exceed waiting without it by more than the
    // tolerance.
    for &backend in &config.backends {
        let (mut with, mut without) = (0.0, 0.0);
        for report in timelines.iter().filter(|t| t.backend == backend) {
            with += report.with_fallback.avg_queuing_time_s;
            without += report.without_fallback.avg_queuing_time_s;
        }
        if with > without * DEGRADATION_TOLERANCE {
            return Err(format!(
                "degradation bound breached on {backend}: waiting with fallback {with:.2}s \
                 exceeds {DEGRADATION_TOLERANCE}x waiting without {without:.2}s"
            ));
        }
    }

    Ok(ChaosReport { timelines })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timelines_are_pure_functions_of_their_seed() {
        let a = chaos_timeline(7, 3, 200);
        let b = chaos_timeline(7, 3, 200);
        assert_eq!(a, b, "same seed, same timeline");
        let c = chaos_timeline(7, 4, 200);
        assert_ne!(a.seed, c.seed, "different index, different seed");
        a.validate().expect("generated timelines validate");
        c.validate().expect("generated timelines validate");
    }

    #[test]
    fn a_small_chaos_run_passes_and_renders() {
        let config = ChaosConfig {
            timelines: 2,
            horizon: 120,
            master_seed: 11,
            backends: vec![Backend::Queueing],
        };
        let report = run_chaos(&config).expect("chaos run passes");
        assert_eq!(report.timelines.len(), 2);
        let rendered = report.render();
        assert!(rendered.contains("Wait (fallback)"), "{rendered}");
    }
}
