//! Scenario and controller descriptions (serializable experiment recipes).

use serde::{Deserialize, Serialize};
use utilbp_baselines::{
    Actuated, ActuatedConfig, CapBp, FixedLengthUtilBp, FixedTime, LongestQueueFirst, OriginalBp,
};
use utilbp_core::{GStarPolicy, GainMode, SignalController, Ticks, UtilBp, UtilBpConfig};
use utilbp_microsim::MicroSimConfig;
use utilbp_netgen::{DemandSchedule, GridSpec, TurningProbabilities};

// The substrate selector lives in `utilbp-scenario` (the scenario engine
// needs it below this crate in the dependency graph); re-exported here so
// every experiment keeps addressing `utilbp_experiments::Backend`.
pub use utilbp_scenario::Backend;

/// A controller recipe: enough to build one fresh controller instance per
/// intersection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ControllerKind {
    /// The paper's Algorithm 1 with its Section V parameters.
    UtilBp,
    /// UTIL-BP with an explicit configuration (ablations).
    UtilBpWith(UtilBpConfig),
    /// CAP-BP (the paper's reference \[4\]) with the given fixed period
    /// (in ticks).
    CapBp {
        /// Green period in ticks.
        period: u64,
    },
    /// Original back-pressure (the paper's reference \[3\]) with the
    /// given fixed period.
    OriginalBp {
        /// Green period in ticks.
        period: u64,
    },
    /// Pre-timed round-robin.
    FixedTime {
        /// Green period in ticks.
        period: u64,
    },
    /// Greedy longest-queue-first.
    LongestQueueFirst {
        /// Green period in ticks.
        period: u64,
    },
    /// UTIL-BP's gain on fixed-length slots (ablation).
    FixedLengthUtilBp {
        /// Green period in ticks.
        period: u64,
    },
    /// Vehicle-actuated gap-out/max-out control (industry baseline).
    Actuated {
        /// Minimum green in ticks.
        min_green: u64,
        /// Maximum green in ticks.
        max_green: u64,
    },
}

impl ControllerKind {
    /// Builds one controller instance.
    pub fn build(&self) -> Box<dyn SignalController> {
        match *self {
            ControllerKind::UtilBp => Box::new(UtilBp::paper()),
            ControllerKind::UtilBpWith(config) => Box::new(UtilBp::new(config)),
            ControllerKind::CapBp { period } => Box::new(CapBp::new(Ticks::new(period))),
            ControllerKind::OriginalBp { period } => Box::new(OriginalBp::new(Ticks::new(period))),
            ControllerKind::FixedTime { period } => {
                Box::new(FixedTime::new(Ticks::new(period), Ticks::new(4)))
            }
            ControllerKind::LongestQueueFirst { period } => {
                Box::new(LongestQueueFirst::new(Ticks::new(period)))
            }
            ControllerKind::FixedLengthUtilBp { period } => {
                Box::new(FixedLengthUtilBp::new(Ticks::new(period)))
            }
            ControllerKind::Actuated {
                min_green,
                max_green,
            } => Box::new(Actuated::with_config(ActuatedConfig {
                min_green: Ticks::new(min_green),
                max_green: Ticks::new(max_green),
                transition: Ticks::new(4),
            })),
        }
    }

    /// Builds `n` controller instances (one per intersection).
    pub fn build_n(&self, n: usize) -> Vec<Box<dyn SignalController>> {
        (0..n).map(|_| self.build()).collect()
    }

    /// A display label including the period where applicable.
    pub fn label(&self) -> String {
        match *self {
            ControllerKind::UtilBp => "UTIL-BP".to_string(),
            ControllerKind::UtilBpWith(config) => match (config.gain_mode, config.g_star) {
                (GainMode::UtilizationAware, GStarPolicy::AlwaysReevaluate) => {
                    "UTIL-BP (no hysteresis)".to_string()
                }
                (GainMode::PlainModified, _) => "UTIL-BP (no special cases)".to_string(),
                (GainMode::PerRoadPressure, _) => "UTIL-BP (per-road pressure)".to_string(),
                _ => "UTIL-BP (custom)".to_string(),
            },
            ControllerKind::CapBp { period } => format!("CAP-BP (T={period}s)"),
            ControllerKind::OriginalBp { period } => format!("BP (T={period}s)"),
            ControllerKind::FixedTime { period } => format!("fixed-time (T={period}s)"),
            ControllerKind::LongestQueueFirst { period } => format!("LQF (T={period}s)"),
            ControllerKind::FixedLengthUtilBp { period } => {
                format!("UTIL-BP fixed (T={period}s)")
            }
            ControllerKind::Actuated {
                min_green,
                max_green,
            } => format!("actuated ({min_green}-{max_green}s)"),
        }
    }
}

/// A complete experiment scenario: network, demand, substrate, and seed.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Scenario {
    /// Grid network parameters.
    pub grid: GridSpec,
    /// Arrival schedule (Table II pattern or the mixed sequence).
    pub schedule: DemandSchedule,
    /// Turning probabilities (Table I).
    pub turning: TurningProbabilities,
    /// Demand RNG seed.
    pub seed: u64,
    /// Simulation substrate.
    pub backend: Backend,
    /// Microscopic parameters (used when `backend` is
    /// [`Backend::Microscopic`]).
    pub micro: MicroSimConfig,
}

impl Scenario {
    /// The paper's setup for the given schedule on the chosen backend.
    pub fn paper(schedule: DemandSchedule, backend: Backend, seed: u64) -> Self {
        Scenario {
            grid: GridSpec::paper(),
            schedule,
            turning: TurningProbabilities::PAPER,
            seed,
            backend,
            micro: MicroSimConfig::default(),
        }
    }

    /// The scheduled horizon in ticks.
    pub fn horizon(&self) -> Ticks {
        self.schedule.total_duration()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_netgen::Pattern;

    #[test]
    fn controller_kinds_build_and_label() {
        let kinds = [
            ControllerKind::UtilBp,
            ControllerKind::CapBp { period: 16 },
            ControllerKind::OriginalBp { period: 20 },
            ControllerKind::FixedTime { period: 15 },
            ControllerKind::LongestQueueFirst { period: 10 },
            ControllerKind::FixedLengthUtilBp { period: 16 },
        ];
        for kind in &kinds {
            let c = kind.build();
            assert!(!c.name().is_empty());
            assert!(!kind.label().is_empty());
        }
        assert_eq!(kinds[1].label(), "CAP-BP (T=16s)");
        assert_eq!(ControllerKind::UtilBp.label(), "UTIL-BP");
        assert_eq!(ControllerKind::UtilBp.build_n(9).len(), 9);
    }

    #[test]
    fn ablation_labels_are_distinct() {
        let no_hyst = ControllerKind::UtilBpWith(UtilBpConfig {
            g_star: GStarPolicy::AlwaysReevaluate,
            ..UtilBpConfig::default()
        });
        let no_special = ControllerKind::UtilBpWith(UtilBpConfig {
            gain_mode: GainMode::PlainModified,
            ..UtilBpConfig::default()
        });
        assert_ne!(no_hyst.label(), no_special.label());
        assert!(no_hyst.label().contains("hysteresis"));
    }

    #[test]
    fn scenario_horizon_follows_schedule() {
        let s = Scenario::paper(
            DemandSchedule::constant(Pattern::I, Ticks::new(3600)),
            Backend::Queueing,
            1,
        );
        assert_eq!(s.horizon(), Ticks::new(3600));
        let mixed = Scenario::paper(
            DemandSchedule::mixed(Ticks::new(3600)),
            Backend::Microscopic,
            1,
        );
        assert_eq!(mixed.horizon(), Ticks::new(14_400));
    }
}
