//! Operator-facing error paths of the `scenarios`, `chaos`, and `trace`
//! binaries: bad input gets a one-line stderr diagnostic and a non-zero
//! exit, never a panic (no `RUST_BACKTRACE` noise, no abort).

use std::process::{Command, Output};

fn scenarios(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_scenarios"))
        .args(args)
        .output()
        .expect("binary spawns")
}

fn chaos(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_chaos"))
        .args(args)
        .output()
        .expect("binary spawns")
}

fn trace(args: &[&str]) -> Output {
    Command::new(env!("CARGO_BIN_EXE_trace"))
        .args(args)
        .output()
        .expect("binary spawns")
}

/// The failure contract: exit code 1, a single-line diagnostic on stderr
/// with the binary's name prefix, and no panic markers.
fn assert_clean_failure(output: &Output, binary: &str, needle: &str) {
    let stderr = String::from_utf8_lossy(&output.stderr);
    assert_eq!(
        output.status.code(),
        Some(1),
        "exit code 1, not a panic abort: {stderr}"
    );
    assert!(
        stderr.contains(&format!("{binary}: ")),
        "diagnostic carries the binary name: {stderr}"
    );
    assert!(stderr.contains(needle), "diagnostic says why: {stderr}");
    assert!(
        !stderr.contains("panicked"),
        "user errors never panic: {stderr}"
    );
}

#[test]
fn scenarios_rejects_an_unknown_flag() {
    assert_clean_failure(
        &scenarios(&["--frobnicate"]),
        "scenarios",
        "unknown flag `--frobnicate`",
    );
}

#[test]
fn scenarios_rejects_an_unknown_builtin() {
    assert_clean_failure(
        &scenarios(&["--builtin", "no-such-scenario"]),
        "scenarios",
        "no built-in scenario `no-such-scenario`",
    );
}

#[test]
fn scenarios_rejects_a_missing_flag_value() {
    assert_clean_failure(
        &scenarios(&["--builtin"]),
        "scenarios",
        "--builtin needs a scenario name",
    );
    assert_clean_failure(
        &scenarios(&["--parallelism"]),
        "scenarios",
        "--parallelism needs serial|rayon",
    );
    assert_clean_failure(
        &scenarios(&["--parallelism", "osmosis"]),
        "scenarios",
        "unknown parallelism `osmosis`",
    );
}

#[test]
fn scenarios_rejects_an_unreadable_file() {
    assert_clean_failure(
        &scenarios(&["/no/such/dir/missing.scn"]),
        "scenarios",
        "cannot read /no/such/dir/missing.scn",
    );
}

#[test]
fn scenarios_rejects_a_malformed_scenario_file() {
    let path = std::env::temp_dir().join("utilbp-cli-errors-malformed.scn");
    std::fs::write(&path, "scenario broken\nnot-a-directive yes\n").expect("temp file writes");
    let output = scenarios(&[path.to_str().expect("utf-8 temp path")]);
    std::fs::remove_file(&path).ok();
    assert_clean_failure(&output, "scenarios", "");
}

#[test]
fn scenarios_rejects_mixing_builtins_and_files() {
    assert_clean_failure(
        &scenarios(&["--builtin", "paper-grid", "whatever.scn"]),
        "scenarios",
        "not both",
    );
}

#[test]
fn trace_rejects_bad_arguments() {
    assert_clean_failure(
        &trace(&["--frobnicate"]),
        "trace",
        "unknown flag `--frobnicate`",
    );
    assert_clean_failure(&trace(&["--builtin"]), "trace", "--builtin needs a value");
    assert_clean_failure(
        &trace(&[]),
        "trace",
        "pass a scenario: --builtin NAME or a scenario file",
    );
    assert_clean_failure(
        &trace(&["--builtin", "no-such-scenario"]),
        "trace",
        "no built-in scenario `no-such-scenario`",
    );
    assert_clean_failure(
        &trace(&["--builtin", "paper-grid", "whatever.scn"]),
        "trace",
        "not both",
    );
    assert_clean_failure(
        &trace(&["one.scn", "two.scn"]),
        "trace",
        "exactly one scenario file",
    );
    assert_clean_failure(
        &trace(&["/no/such/dir/missing.scn"]),
        "trace",
        "cannot read /no/such/dir/missing.scn",
    );
    assert_clean_failure(
        &trace(&["--builtin", "paper-grid", "--capacity", "0"]),
        "trace",
        "--capacity must be at least 1",
    );
    assert_clean_failure(
        &trace(&["--builtin", "paper-grid", "--every", "0"]),
        "trace",
        "--every must be at least 1",
    );
    assert_clean_failure(
        &trace(&["--builtin", "paper-grid", "--backend", "imaginary"]),
        "trace",
        "unknown backend `imaginary`",
    );
}

#[test]
fn chaos_rejects_bad_arguments() {
    assert_clean_failure(&chaos(&["--frobnicate"]), "chaos", "unknown flag");
    assert_clean_failure(
        &chaos(&["--timelines"]),
        "chaos",
        "--timelines needs a value",
    );
    assert_clean_failure(&chaos(&["--timelines", "zero"]), "chaos", "--timelines");
    assert_clean_failure(&chaos(&["--timelines", "0"]), "chaos", "at least 1");
    assert_clean_failure(&chaos(&["--horizon", "10"]), "chaos", "at least 40");
    assert_clean_failure(
        &chaos(&["--backend", "imaginary"]),
        "chaos",
        "unknown backend `imaginary`",
    );
}
