//! # utilbp-substrate
//!
//! The **unified plant layer** of the adaptive back-pressure workspace:
//! one [`TrafficSubstrate`] trait covering the full road-network API that
//! both simulators expose, so every driver — the scenario engine, the
//! experiments runner, the `scenarios` binary, the perf harness — steps,
//! probes, and disrupts a simulation through a single generic code path
//! instead of hand-dispatching over a per-crate substrate enum.
//!
//! In the paper's CPS framing the *control plane* (decentralized adaptive
//! back-pressure signal decisions) is separate from the *plant* (the road
//! network). This crate is the plant's contract. Its two implementations
//! are [`QueueSim`] (the paper's Section II store-and-forward model,
//! exact and fast) and [`MicroSim`] (the microscopic SUMO substitute:
//! Krauss car-following, junction boxes, ambers).
//!
//! ## The substrate contract
//!
//! Every implementation guarantees:
//!
//! - **Determinism.** The same topology, controllers, configuration, and
//!   arrival stream produce bit-identical step reports, ledgers, and
//!   metrics — across repeated runs *and* across execution modes
//!   (`Parallelism::Serial` vs `Parallelism::Rayon`): sharded phases use
//!   per-road RNG streams and touch no cross-shard state.
//! - **Closure semantics.** [`set_road_closed`](TrafficSubstrate::set_road_closed)
//!   closes a road *to entering traffic*: junctions stop serving vehicles
//!   onto it and boundary insertions onto it stay backlogged, while
//!   vehicles already on the road keep moving and may leave it (a street
//!   closed at its upstream end). Reopening restores normal admission.
//! - **Waiting accounting.** Waiting time accumulates per vehicle inside
//!   the step path (simulator-side accumulators that ride through
//!   junctions) and is flushed to the [`WaitingLedger`] once, at journey
//!   completion;
//!   [`mean_waiting_including_active`](TrafficSubstrate::mean_waiting_including_active)
//!   folds the live accumulators — including backlog dwell — into the
//!   completed statistics at query time. Nothing scans the fleet per tick.
//! - **Allocation-free stepping.** [`step_into`](TrafficSubstrate::step_into)
//!   reuses the caller's [`SubstrateScratch`] and drains the arrival
//!   buffer in place; the steady-state hot path performs no heap
//!   allocation (bounded by the workspace's counting-allocator test).
//! - **Route-cursor access.** [`replan_routes`](TrafficSubstrate::replan_routes)
//!   walks every vehicle that still has junctions ahead of it in a
//!   deterministic order and lets the caller rewrite its remaining route —
//!   the hook en-route replanning ([`ReplanPolicy`]) is built on.
//!
//! ## Routing response (en-route replanning)
//!
//! [`ReplanPolicy`] describes how vehicles already in the network react
//! to its live state; the scenario engine executes the policy through
//! [`replan_routes`](TrafficSubstrate::replan_routes) and the sensor
//! surface above.
//!
//! - **Closure diversion** ([`ReplanPolicy::AtNextJunction`]): when a
//!   closure fires, the engine rewrites the route of every upstream
//!   vehicle whose remaining journey would enter the closed road, using
//!   `utilbp-netgen`'s bounded-turn route enumeration from the first road
//!   the vehicle has not yet committed to.
//! - **Reopen-restore**: when a closed road reopens, vehicles a closure
//!   diverted (tracked by id through the `replan_routes` callback) are
//!   rewritten back onto a strictly better open continuation when one now
//!   dominates their detour; undominated detours are kept.
//! - **Congestion replanning** ([`ReplanPolicy::Congestion`]): every
//!   `period` ticks the engine reads
//!   [`occupancy_snapshot`](TrafficSubstrate::occupancy_snapshot),
//!   maintains a hysteresis-banded congested-road set, and diverts
//!   journeys headed into congestion through a congestion-weighted view
//!   of the network's edge weights (emptier roads weigh more, congested
//!   roads are inadmissible — so reroutes cannot oscillate while the
//!   congested set is unchanged).
//!
//! In every case the committed prefix — each hop up to and including the
//! vehicle's next crossing — is never touched, because the microscopic
//! substrate binds a vehicle's current lane (and a crossing vehicle's
//! destination lane) to that movement. Replanning happens in the serial
//! event/monitor phase and draws no randomness; decisions read only
//! deterministic sensor state, so Serial/Rayon bit-identity is preserved
//! under every policy. With [`ReplanPolicy::Off`] (the default) no route
//! is ever rewritten and all fixed-seed results are unchanged.
//!
//! ## The invariant guard
//!
//! [`InvariantGuard`] is an **opt-in** wrapper over any substrate that
//! re-derives the contract's bookkeeping invariants after every step and
//! panics with a tick-stamped diagnostic on the first violation:
//!
//! - **Vehicle conservation** — every vehicle the demand layer injected
//!   is exactly one of *completed*, *on the network* (road occupancy,
//!   which includes junction-box reservations on the microscopic
//!   substrate), or *backlogged* outside an entry:
//!   `ledger.active() == Σ occupancy + backlog`.
//! - **Sensor consistency** — the incrementally maintained queue/sensor
//!   counters equal a from-scratch rescan
//!   ([`verify_sensors`](TrafficSubstrate::verify_sensors)), which also
//!   implies every queue length is a well-formed non-negative count.
//! - **Closure monotonicity** — a closed road only drains: its
//!   occupancy never increases while it stays closed, and no road's
//!   cumulative `entered` counter ever decreases.
//!
//! The guard is a plain wrapper: when it is not installed nothing in the
//! step path changes (zero cost), and because every check is read-only
//! the guarded run produces bit-identical metrics to the unguarded one —
//! fixed-seed goldens are unchanged. The checks rescan the network, so
//! install the guard in tests, chaos harnesses, and debugging sessions
//! rather than benchmark loops.
//!
//! Besides the default abort-on-violation mode
//! ([`InvariantGuard::new`]), the guard has a non-panicking **observe**
//! mode ([`InvariantGuard::observing`]) that appends every violation to
//! a shared [`GuardLog`] and keeps stepping — the `utilbp-telemetry`
//! flight recorder drains that log into tick-stamped `guard_violation`
//! events so traces can show near-misses without killing the run. Chaos
//! harnesses keep the panicking mode.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use serde::{Deserialize, Serialize};
use utilbp_core::state::{StateError, StateReader, StateWriter};
use utilbp_core::{IncomingId, PhaseDecision, SignalController};
use utilbp_metrics::WaitingLedger;
use utilbp_microsim::{MicroSim, MicroSimConfig, PhaseTimings};
use utilbp_netgen::{Arrival, IntersectionId, NetworkTopology, RoadId, RouteRewrite};
use utilbp_queueing::{QueueSim, QueueSimConfig, StepPhaseTimings};

/// Which simulation substrate drives the plant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Backend {
    /// The mesoscopic queueing-network simulator (`utilbp-queueing`) —
    /// fast, exactly the paper's Section II model.
    Queueing,
    /// The microscopic simulator (`utilbp-microsim`) — the SUMO
    /// substitute used for the headline results.
    Microscopic,
}

impl Backend {
    /// Both substrates, queueing first.
    pub const ALL: [Backend; 2] = [Backend::Queueing, Backend::Microscopic];

    /// The backend's canonical lowercase name (what [`Display`] prints
    /// and what tables/JSON rows record).
    ///
    /// [`Display`]: std::fmt::Display
    pub fn name(self) -> &'static str {
        match self {
            Backend::Queueing => "queueing",
            Backend::Microscopic => "microscopic",
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// How vehicles already en route react to the live state of the network
/// (closures, reopenings, congestion).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum ReplanPolicy {
    /// Routes are fixed at entry: a journey through a road that closes
    /// later queues upstream until the reopening (the congestion
    /// spill-back the adaptive controllers must absorb).
    #[default]
    Off,
    /// When a closure fires, every vehicle whose remaining route would
    /// enter the closed road diverts at the next junction it has not yet
    /// committed to, via bounded-turn route enumeration over the open
    /// network. Vehicles with no open detour (or already committed to
    /// enter the closed road) keep their route and wait, as under
    /// [`ReplanPolicy::Off`]. When the road reopens, diverted vehicles
    /// whose remaining detour is strictly dominated by an open
    /// continuation are rewritten back (reopen-restore).
    AtNextJunction,
    /// Everything [`ReplanPolicy::AtNextJunction`] does, plus periodic
    /// congestion-aware replanning: every `period` ticks the driver
    /// snapshots per-road occupancy, maintains a congested-road set (a
    /// road enters it when `occupancy / capacity >= threshold` and leaves
    /// when the ratio falls below `threshold - hysteresis`), and diverts
    /// vehicles whose uncommitted suffix would enter a congested road —
    /// scoring detours through a congestion-weighted view of the network
    /// in which emptier roads weigh more and congested roads are
    /// inadmissible, so a diverted journey cannot oscillate back while
    /// the congested set is unchanged.
    Congestion {
        /// Ticks between congestion checks (≥ 1).
        period: u64,
        /// Occupancy/capacity ratio at which a road becomes congested
        /// (positive).
        threshold: f64,
        /// How far below `threshold` the ratio must fall before the road
        /// is considered clear again (in `[0, threshold)`); the band that
        /// prevents reroute oscillation when occupancy hovers at the
        /// threshold.
        hysteresis: f64,
    },
}

impl ReplanPolicy {
    /// Checks the policy's parameters.
    ///
    /// # Errors
    ///
    /// Returns a message describing the first invalid parameter.
    pub fn validate(&self) -> Result<(), String> {
        if let ReplanPolicy::Congestion {
            period,
            threshold,
            hysteresis,
        } = *self
        {
            if period == 0 {
                return Err("congestion replan period must be at least 1 tick".to_string());
            }
            if !(threshold.is_finite() && threshold > 0.0) {
                return Err("congestion threshold must be positive".to_string());
            }
            if !(hysteresis.is_finite() && (0.0..threshold).contains(&hysteresis)) {
                return Err(
                    "congestion hysteresis must be in [0, threshold) so the clear level \
                     stays positive"
                        .to_string(),
                );
            }
        }
        Ok(())
    }

    /// Whether the policy reacts to closure/reopen events.
    pub fn responds_to_closures(&self) -> bool {
        !matches!(self, ReplanPolicy::Off)
    }
}

impl std::fmt::Display for ReplanPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ReplanPolicy::Off => f.write_str("off"),
            ReplanPolicy::AtNextJunction => f.write_str("at-next-junction"),
            ReplanPolicy::Congestion {
                period,
                threshold,
                hysteresis,
            } => write!(
                f,
                "congestion period={period} threshold={threshold} hysteresis={hysteresis}"
            ),
        }
    }
}

/// Reusable per-tick report scratch for whichever substrate is active.
/// Holding both report types costs a few empty `Vec`s and keeps
/// [`TrafficSubstrate::step_into`] allocation-free for every caller,
/// whichever backend is behind the trait object.
#[derive(Debug, Clone)]
pub struct SubstrateScratch {
    /// The queueing substrate's step report.
    pub queueing: utilbp_queueing::StepReport,
    /// The microscopic substrate's step report.
    pub micro: utilbp_microsim::StepReport,
}

impl SubstrateScratch {
    /// Empty scratch, ready to be reused across ticks.
    pub fn new() -> Self {
        SubstrateScratch {
            queueing: utilbp_queueing::StepReport::empty(),
            micro: utilbp_microsim::StepReport::empty(),
        }
    }
}

impl Default for SubstrateScratch {
    fn default() -> Self {
        SubstrateScratch::new()
    }
}

/// The plant interface both simulators implement — see the crate docs for
/// the cross-substrate contract (determinism, closure semantics, waiting
/// accounting) every implementation upholds.
pub trait TrafficSubstrate {
    /// Which backend this substrate is.
    fn backend(&self) -> Backend;

    /// Simulates one mini-slot, draining `arrivals` (produced for this
    /// tick by a demand generator) and reusing `scratch`'s buffers.
    /// Returns the per-intersection decisions of the tick, borrowed from
    /// the scratch.
    fn step_into<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
    ) -> &'a [PhaseDecision];

    /// [`step_into`](Self::step_into) with per-phase wall-clock
    /// attribution added to `timings`. Substrates without phase
    /// instrumentation (the queueing model's step is a single phase)
    /// leave `timings` untouched.
    fn step_into_timed<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
        timings: &mut PhaseTimings,
    ) -> &'a [PhaseDecision];

    /// Closes or reopens a road (a disruption event); see the crate docs
    /// for the closure semantics.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    fn set_road_closed(&mut self, road: RoadId, closed: bool);

    /// Whether `road` is currently closed to entering traffic.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    fn road_closed(&self, road: RoadId) -> bool;

    /// Vehicles currently on `road` (including, for the microscopic
    /// substrate, inbound junction-box reservations).
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    fn road_occupancy(&self, road: RoadId) -> u32;

    /// Cumulative count of vehicles that have entered `road` since the
    /// start (boundary insertions plus junction transfers).
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    fn road_entered(&self, road: RoadId) -> u64;

    /// The per-movement queue sensor `q_i^{i'}` a controller observes for
    /// `link` at `intersection`.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    fn movement_queue_len(&self, intersection: IntersectionId, link: utilbp_core::LinkId) -> u32;

    /// Total sensed queue `q_i` (Eq. 1) at an incoming arm — the paper's
    /// Fig. 5 quantity.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    fn incoming_queue_len(&self, intersection: IntersectionId, arm: IncomingId) -> u32;

    /// Fills `out` with the current occupancy of every road, indexed by
    /// `RoadId` (clearing whatever was in the buffer). One call costs
    /// O(roads) counter reads — the occupancy counters are maintained
    /// incrementally — so periodic congestion monitoring is cheap and
    /// allocation-free once the buffer has grown to the road count.
    fn occupancy_snapshot(&self, out: &mut Vec<u32>);

    /// Vehicles waiting outside full or closed boundary entries.
    fn backlog_len(&self) -> usize;

    /// Per-vehicle journey accounting over completed vehicles.
    fn ledger(&self) -> &WaitingLedger;

    /// Mean waiting ticks per vehicle including vehicles still in the
    /// network and backlogged outside it — the paper's "average queuing
    /// time of a vehicle", folded from the live accumulators at query
    /// time.
    fn mean_waiting_including_active(&self) -> f64;

    /// Visits every vehicle that still has junction crossings ahead of it
    /// (on-road, queued, in transit, in a junction box, or backlogged
    /// outside an entry), in a deterministic substrate-defined order, and
    /// lets `replan` rewrite its route. The callback receives the
    /// vehicle's id (so drivers can track per-vehicle routing state, e.g.
    /// which vehicles a closure diverted), its current route, and the
    /// number of leading hops that are **committed** (the vehicle's lane
    /// or queue is already bound to them); a returned replacement must
    /// preserve exactly that prefix and keep the same entry road. Returns
    /// the number of vehicles whose route was rewritten. Draws no
    /// randomness.
    fn replan_routes(&mut self, replan: &mut RouteRewrite<'_>) -> u64;

    /// Re-derives the substrate's incrementally maintained sensor
    /// counters from scratch and compares them — the internal
    /// consistency check behind the regression suite and the
    /// [`InvariantGuard`]. O(network); not meant for benchmark loops.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first divergent counter.
    fn verify_sensors(&self) -> Result<(), String>;

    /// Serializes the substrate's full dynamic state — clock, vehicles,
    /// queues, RNG stream positions, incremental counters, ledger, and
    /// every controller's state — into a durable word stream. Together
    /// with [`load_state`](Self::load_state) this is the plant half of
    /// the checkpoint/restore contract: a substrate restored into a
    /// freshly built twin (same topology, configuration, controllers)
    /// continues **bit-identically** to the original, under either
    /// `Parallelism` mode.
    fn save_state(&self, writer: &mut StateWriter);

    /// Restores the dynamic state written by
    /// [`save_state`](Self::save_state) into a substrate built over the
    /// same topology, configuration, and controller stack.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a truncated stream or a shape mismatch
    /// with this substrate's topology; on error the substrate may be left
    /// partially overwritten and must be discarded.
    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError>;
}

impl<S: TrafficSubstrate + ?Sized> TrafficSubstrate for Box<S> {
    fn backend(&self) -> Backend {
        (**self).backend()
    }

    fn step_into<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
    ) -> &'a [PhaseDecision] {
        (**self).step_into(arrivals, scratch)
    }

    fn step_into_timed<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
        timings: &mut PhaseTimings,
    ) -> &'a [PhaseDecision] {
        (**self).step_into_timed(arrivals, scratch, timings)
    }

    fn set_road_closed(&mut self, road: RoadId, closed: bool) {
        (**self).set_road_closed(road, closed);
    }

    fn road_closed(&self, road: RoadId) -> bool {
        (**self).road_closed(road)
    }

    fn road_occupancy(&self, road: RoadId) -> u32 {
        (**self).road_occupancy(road)
    }

    fn road_entered(&self, road: RoadId) -> u64 {
        (**self).road_entered(road)
    }

    fn movement_queue_len(&self, intersection: IntersectionId, link: utilbp_core::LinkId) -> u32 {
        (**self).movement_queue_len(intersection, link)
    }

    fn incoming_queue_len(&self, intersection: IntersectionId, arm: IncomingId) -> u32 {
        (**self).incoming_queue_len(intersection, arm)
    }

    fn occupancy_snapshot(&self, out: &mut Vec<u32>) {
        (**self).occupancy_snapshot(out);
    }

    fn backlog_len(&self) -> usize {
        (**self).backlog_len()
    }

    fn ledger(&self) -> &WaitingLedger {
        (**self).ledger()
    }

    fn mean_waiting_including_active(&self) -> f64 {
        (**self).mean_waiting_including_active()
    }

    fn replan_routes(&mut self, replan: &mut RouteRewrite<'_>) -> u64 {
        (**self).replan_routes(replan)
    }

    fn verify_sensors(&self) -> Result<(), String> {
        (**self).verify_sensors()
    }

    fn save_state(&self, writer: &mut StateWriter) {
        (**self).save_state(writer);
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        (**self).load_state(reader)
    }
}

impl TrafficSubstrate for QueueSim {
    fn backend(&self) -> Backend {
        Backend::Queueing
    }

    fn step_into<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
    ) -> &'a [PhaseDecision] {
        QueueSim::step_into(self, arrivals, &mut scratch.queueing);
        &scratch.queueing.decisions
    }

    fn step_into_timed<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
        timings: &mut PhaseTimings,
    ) -> &'a [PhaseDecision] {
        // The queueing pipeline has its own section names; map them onto
        // the shared axes: sensing+deciding -> decide, serving activated
        // links -> car_following (vehicle advancement), transit arrivals
        // landing -> landings, injection+bookkeeping -> waiting.
        let mut slot = StepPhaseTimings::default();
        QueueSim::step_into_timed(self, arrivals, &mut scratch.queueing, &mut slot);
        timings.decide += slot.decide;
        timings.car_following += slot.serve;
        timings.landings += slot.transit;
        timings.waiting += slot.inject;
        &scratch.queueing.decisions
    }

    fn set_road_closed(&mut self, road: RoadId, closed: bool) {
        QueueSim::set_road_closed(self, road, closed);
    }

    fn road_closed(&self, road: RoadId) -> bool {
        QueueSim::road_closed(self, road)
    }

    fn road_occupancy(&self, road: RoadId) -> u32 {
        QueueSim::road_occupancy(self, road)
    }

    fn road_entered(&self, road: RoadId) -> u64 {
        QueueSim::road_entered(self, road)
    }

    fn movement_queue_len(&self, intersection: IntersectionId, link: utilbp_core::LinkId) -> u32 {
        QueueSim::movement_queue_len(self, intersection, link)
    }

    fn incoming_queue_len(&self, intersection: IntersectionId, arm: IncomingId) -> u32 {
        QueueSim::incoming_queue_len(self, intersection, arm)
    }

    fn occupancy_snapshot(&self, out: &mut Vec<u32>) {
        QueueSim::occupancy_snapshot(self, out);
    }

    fn backlog_len(&self) -> usize {
        QueueSim::backlog_len(self)
    }

    fn ledger(&self) -> &WaitingLedger {
        QueueSim::ledger(self)
    }

    fn mean_waiting_including_active(&self) -> f64 {
        QueueSim::mean_waiting_including_active(self)
    }

    fn replan_routes(&mut self, replan: &mut RouteRewrite<'_>) -> u64 {
        QueueSim::replan_routes(self, replan)
    }

    fn verify_sensors(&self) -> Result<(), String> {
        QueueSim::verify_sensors(self)
    }

    fn save_state(&self, writer: &mut StateWriter) {
        QueueSim::save_state(self, writer);
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        QueueSim::load_state(self, reader)
    }
}

impl TrafficSubstrate for MicroSim {
    fn backend(&self) -> Backend {
        Backend::Microscopic
    }

    fn step_into<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
    ) -> &'a [PhaseDecision] {
        MicroSim::step_into(self, arrivals, &mut scratch.micro);
        &scratch.micro.decisions
    }

    fn step_into_timed<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
        timings: &mut PhaseTimings,
    ) -> &'a [PhaseDecision] {
        MicroSim::step_into_timed(self, arrivals, &mut scratch.micro, timings);
        &scratch.micro.decisions
    }

    fn set_road_closed(&mut self, road: RoadId, closed: bool) {
        MicroSim::set_road_closed(self, road, closed);
    }

    fn road_closed(&self, road: RoadId) -> bool {
        MicroSim::road_closed(self, road)
    }

    fn road_occupancy(&self, road: RoadId) -> u32 {
        MicroSim::road_occupancy(self, road)
    }

    fn road_entered(&self, road: RoadId) -> u64 {
        MicroSim::road_entered(self, road)
    }

    fn movement_queue_len(&self, intersection: IntersectionId, link: utilbp_core::LinkId) -> u32 {
        MicroSim::movement_queue_len(self, intersection, link)
    }

    fn incoming_queue_len(&self, intersection: IntersectionId, arm: IncomingId) -> u32 {
        MicroSim::incoming_queue_len(self, intersection, arm)
    }

    fn occupancy_snapshot(&self, out: &mut Vec<u32>) {
        MicroSim::occupancy_snapshot(self, out);
    }

    fn backlog_len(&self) -> usize {
        MicroSim::backlog_len(self)
    }

    fn ledger(&self) -> &WaitingLedger {
        MicroSim::ledger(self)
    }

    fn mean_waiting_including_active(&self) -> f64 {
        MicroSim::mean_waiting_including_active(self)
    }

    fn replan_routes(&mut self, replan: &mut RouteRewrite<'_>) -> u64 {
        MicroSim::replan_routes(self, replan)
    }

    fn verify_sensors(&self) -> Result<(), String> {
        MicroSim::verify_sensors(self)
    }

    fn save_state(&self, writer: &mut StateWriter) {
        MicroSim::save_state(self, writer);
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        MicroSim::load_state(self, reader)
    }
}

/// An opt-in runtime checker over any substrate: after every step it
/// re-derives the plant's bookkeeping invariants — vehicle conservation,
/// sensor-counter consistency, closure monotonicity — and panics with a
/// tick-stamped diagnostic on the first violation (see the crate docs
/// for the exact invariant statements).
///
/// The guard is a plain wrapper: it draws no randomness, mutates nothing
/// in the wrapped substrate, and reads only query-side state, so a
/// guarded run produces bit-identical metrics to an unguarded one. When
/// the guard is not installed, nothing in the step path changes.
///
/// # Examples
///
/// ```
/// use utilbp_core::{SignalController, UtilBp};
/// use utilbp_microsim::MicroSimConfig;
/// use utilbp_netgen::{GridNetwork, GridSpec};
/// use utilbp_substrate::{build_substrate, Backend, InvariantGuard};
///
/// let grid = GridNetwork::new(GridSpec::paper());
/// let controllers = (0..9)
///     .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
///     .collect();
/// let plant = build_substrate(
///     Backend::Queueing,
///     grid.topology().clone(),
///     controllers,
///     MicroSimConfig::default(),
/// );
/// let mut guarded = InvariantGuard::new(plant);
/// // step `guarded` exactly like the unguarded substrate…
/// # let _ = &mut guarded;
/// ```
#[derive(Debug)]
pub struct InvariantGuard<S> {
    inner: S,
    /// Steps taken so far (the tick stamp of the *next* diagnostic).
    ticks: u64,
    /// Reusable occupancy snapshot buffer.
    occ: Vec<u32>,
    /// Last observed occupancy of each road *while closed*; `None` for
    /// open roads.
    closed_occ: Vec<Option<u32>>,
    /// Last observed cumulative `entered` counter per road.
    prev_entered: Vec<u64>,
    /// Where violations go: abort the run, or log and keep stepping.
    sink: GuardSink,
}

/// One invariant violation recorded by an observe-mode guard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct GuardViolation {
    /// The step the violation was detected after (0-based).
    pub tick: u64,
    /// Which check fired: `"conservation"`, `"sensors"`,
    /// `"entered_monotonic"`, or `"closure_drain"`.
    pub check: &'static str,
    /// The guard's full diagnostic.
    pub message: String,
}

/// How many violations an observe-mode [`GuardLog`] retains verbatim;
/// later ones still count toward [`GuardLog::total`] but their messages
/// are discarded (a broken invariant tends to re-fire every tick).
const GUARD_LOG_CAP: usize = 256;

#[derive(Debug, Default)]
struct GuardLogInner {
    violations: Vec<GuardViolation>,
    total: u64,
}

/// A shared, cloneable sink for observe-mode guard violations. The
/// driver keeps one clone and hands the other to
/// [`InvariantGuard::observing`]; after each step it drains newly
/// recorded violations with [`drain_into`](Self::drain_into).
#[derive(Debug, Clone, Default)]
pub struct GuardLog(std::sync::Arc<std::sync::Mutex<GuardLogInner>>);

impl GuardLog {
    /// An empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Violations recorded over the log's lifetime (drained or not,
    /// including any beyond the retention cap).
    pub fn total(&self) -> u64 {
        self.0.lock().expect("guard log poisoned").total
    }

    /// Moves all retained violations into `out` (appending), oldest
    /// first, leaving the log empty.
    pub fn drain_into(&self, out: &mut Vec<GuardViolation>) {
        let mut inner = self.0.lock().expect("guard log poisoned");
        out.append(&mut inner.violations);
    }

    fn record(&self, violation: GuardViolation) {
        let mut inner = self.0.lock().expect("guard log poisoned");
        inner.total += 1;
        if inner.violations.len() < GUARD_LOG_CAP {
            inner.violations.push(violation);
        }
    }
}

#[derive(Debug)]
enum GuardSink {
    /// Abort the run with a tick-stamped diagnostic (the default).
    Panic,
    /// Append to the shared log and keep stepping.
    Observe(GuardLog),
}

impl GuardSink {
    fn fail(&self, tick: u64, check: &'static str, message: String) {
        match self {
            GuardSink::Panic => panic!("invariant violated at tick {tick}: {message}"),
            GuardSink::Observe(log) => log.record(GuardViolation {
                tick,
                check,
                message,
            }),
        }
    }
}

impl<S: TrafficSubstrate> InvariantGuard<S> {
    /// Wraps `inner`; checks run after every step from now on and panic
    /// on the first violation.
    pub fn new(inner: S) -> Self {
        Self::with_sink(inner, GuardSink::Panic)
    }

    /// Wraps `inner` in **observe** mode: checks still run after every
    /// step, but violations are appended to `log` instead of aborting
    /// the run. A violated invariant does not stop later checks, so one
    /// step can log several violations.
    pub fn observing(inner: S, log: GuardLog) -> Self {
        Self::with_sink(inner, GuardSink::Observe(log))
    }

    fn with_sink(inner: S, sink: GuardSink) -> Self {
        InvariantGuard {
            inner,
            ticks: 0,
            occ: Vec::new(),
            closed_occ: Vec::new(),
            prev_entered: Vec::new(),
            sink,
        }
    }

    /// The wrapped substrate.
    pub fn inner(&self) -> &S {
        &self.inner
    }

    /// Unwraps the guard, returning the substrate.
    pub fn into_inner(self) -> S {
        self.inner
    }

    /// How many steps the guard has checked.
    pub fn ticks_checked(&self) -> u64 {
        self.ticks
    }

    /// Runs every invariant check against the current state.
    ///
    /// # Panics
    ///
    /// In the default mode, panics with a tick-stamped diagnostic on
    /// the first violation; in observe mode, logs every violation and
    /// returns normally.
    fn check(&mut self) {
        let tick = self.ticks;
        self.ticks += 1;
        // Vehicle conservation: each injected vehicle is exactly one of
        // completed, on the network, or backlogged. The ledger enters
        // every injection (backlogged included) and retires completions,
        // so its active count must equal on-network plus backlog.
        self.inner.occupancy_snapshot(&mut self.occ);
        let on_network: u64 = self.occ.iter().map(|&o| u64::from(o)).sum();
        let backlog = self.inner.backlog_len() as u64;
        let active = self.inner.ledger().active() as u64;
        if active != on_network + backlog {
            self.sink.fail(
                tick,
                "conservation",
                format!(
                    "vehicle conservation: ledger holds {active} uncompleted vehicles but \
                     the plant accounts for {on_network} on-network + {backlog} backlogged"
                ),
            );
        }
        // Sensor consistency (also proves every queue length is a
        // well-formed non-negative count): incremental counters must
        // equal a from-scratch rescan.
        if let Err(msg) = self.inner.verify_sensors() {
            self.sink
                .fail(tick, "sensors", format!("sensor consistency: {msg}"));
        }
        // Closure monotonicity: a closed road only drains, and entered
        // counters never run backwards.
        if self.closed_occ.len() != self.occ.len() {
            self.closed_occ.resize(self.occ.len(), None);
            self.prev_entered.resize(self.occ.len(), 0);
        }
        for r in 0..self.occ.len() {
            let road = RoadId::new(r as u32);
            let entered = self.inner.road_entered(road);
            if entered < self.prev_entered[r] {
                self.sink.fail(
                    tick,
                    "entered_monotonic",
                    format!(
                        "road {road} entered counter went backwards ({} -> {entered})",
                        self.prev_entered[r]
                    ),
                );
            }
            self.prev_entered[r] = entered;
            if self.inner.road_closed(road) {
                if let Some(before) = self.closed_occ[r] {
                    if self.occ[r] > before {
                        self.sink.fail(
                            tick,
                            "closure_drain",
                            format!(
                                "closed road {road} admitted traffic (occupancy {before} -> {})",
                                self.occ[r]
                            ),
                        );
                    }
                }
                self.closed_occ[r] = Some(self.occ[r]);
            } else {
                self.closed_occ[r] = None;
            }
        }
    }
}

impl<S: TrafficSubstrate> TrafficSubstrate for InvariantGuard<S> {
    fn backend(&self) -> Backend {
        self.inner.backend()
    }

    fn step_into<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
    ) -> &'a [PhaseDecision] {
        let decisions = self.inner.step_into(arrivals, scratch);
        self.check();
        decisions
    }

    fn step_into_timed<'a>(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        scratch: &'a mut SubstrateScratch,
        timings: &mut PhaseTimings,
    ) -> &'a [PhaseDecision] {
        let decisions = self.inner.step_into_timed(arrivals, scratch, timings);
        self.check();
        decisions
    }

    fn set_road_closed(&mut self, road: RoadId, closed: bool) {
        self.inner.set_road_closed(road, closed);
        // Restart the drain watermark on any closure transition so a
        // close→reopen→close sequence is not compared across windows.
        if let Some(slot) = self.closed_occ.get_mut(road.index()) {
            *slot = None;
        }
    }

    fn road_closed(&self, road: RoadId) -> bool {
        self.inner.road_closed(road)
    }

    fn road_occupancy(&self, road: RoadId) -> u32 {
        self.inner.road_occupancy(road)
    }

    fn road_entered(&self, road: RoadId) -> u64 {
        self.inner.road_entered(road)
    }

    fn movement_queue_len(&self, intersection: IntersectionId, link: utilbp_core::LinkId) -> u32 {
        self.inner.movement_queue_len(intersection, link)
    }

    fn incoming_queue_len(&self, intersection: IntersectionId, arm: IncomingId) -> u32 {
        self.inner.incoming_queue_len(intersection, arm)
    }

    fn occupancy_snapshot(&self, out: &mut Vec<u32>) {
        self.inner.occupancy_snapshot(out);
    }

    fn backlog_len(&self) -> usize {
        self.inner.backlog_len()
    }

    fn ledger(&self) -> &WaitingLedger {
        self.inner.ledger()
    }

    fn mean_waiting_including_active(&self) -> f64 {
        self.inner.mean_waiting_including_active()
    }

    fn replan_routes(&mut self, replan: &mut RouteRewrite<'_>) -> u64 {
        self.inner.replan_routes(replan)
    }

    fn verify_sensors(&self) -> Result<(), String> {
        self.inner.verify_sensors()
    }

    fn save_state(&self, writer: &mut StateWriter) {
        // The guard's own watermarks (checked-tick count, per-road
        // closure-drain and entered watermarks) are durable: a restored
        // guarded run must keep enforcing monotonicity across the
        // checkpoint boundary exactly as the uninterrupted run does. The
        // occupancy scratch buffer is rewritten every check and is not
        // state.
        writer.push(self.ticks);
        writer.push_usize(self.closed_occ.len());
        for slot in &self.closed_occ {
            match slot {
                Some(occ) => {
                    writer.push_bool(true);
                    writer.push_u32(*occ);
                }
                None => writer.push_bool(false),
            }
        }
        writer.push_usize(self.prev_entered.len());
        for &entered in &self.prev_entered {
            writer.push(entered);
        }
        self.inner.save_state(writer);
    }

    fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.ticks = reader.take()?;
        let closed = reader.take_usize()?;
        self.closed_occ.clear();
        for _ in 0..closed {
            let watermark = if reader.take_bool()? {
                Some(reader.take_u32()?)
            } else {
                None
            };
            self.closed_occ.push(watermark);
        }
        let entered = reader.take_usize()?;
        self.prev_entered.clear();
        for _ in 0..entered {
            self.prev_entered.push(reader.take()?);
        }
        self.inner.load_state(reader)
    }
}

/// Builds the substrate for `backend` over `topology`, one controller per
/// intersection.
///
/// `micro` supplies the full microscopic configuration; the queueing
/// substrate derives its `Δt`, free-flow speed, and execution mode from
/// it (on the paper-exact instant-transfer model), so both backends
/// simulate the same physical setup under the same `Parallelism`. This is
/// the one construction path every driver shares — the scenario engine,
/// the experiments runner, and the perf harness all build through here.
///
/// # Panics
///
/// Panics if the controller count does not match the intersection count
/// or the configuration is invalid (see [`QueueSim::new`] /
/// [`MicroSim::new`]).
pub fn build_substrate(
    backend: Backend,
    topology: NetworkTopology,
    controllers: Vec<Box<dyn SignalController>>,
    micro: MicroSimConfig,
) -> Box<dyn TrafficSubstrate> {
    match backend {
        Backend::Queueing => Box::new(QueueSim::new(
            topology,
            controllers,
            QueueSimConfig {
                dt_seconds: micro.dt_seconds,
                free_speed_mps: micro.free_speed_mps,
                parallelism: micro.parallelism,
                ..QueueSimConfig::paper_exact()
            },
        )),
        Backend::Microscopic => Box::new(MicroSim::new(topology, controllers, micro)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_core::{Tick, UtilBp};
    use utilbp_netgen::{GridNetwork, GridSpec, Network, Pattern};

    fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
        (0..n)
            .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
            .collect()
    }

    #[test]
    fn both_backends_build_and_step_through_the_trait() {
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::II);
        for backend in Backend::ALL {
            let n = grid.topology().num_intersections();
            let mut substrate = build_substrate(
                backend,
                grid.topology().clone(),
                controllers(n),
                MicroSimConfig::default(),
            );
            assert_eq!(substrate.backend(), backend);
            let mut demand = utilbp_netgen::DemandGenerator::new(
                &grid,
                utilbp_netgen::DemandConfig::new(utilbp_netgen::DemandSchedule::constant(
                    Pattern::II,
                    utilbp_core::Ticks::new(200),
                )),
                7,
            );
            let mut arrivals = Vec::new();
            let mut scratch = SubstrateScratch::new();
            for k in 0..200u64 {
                arrivals.clear();
                demand.poll_into(&grid, Tick::new(k), &mut arrivals);
                let decisions = substrate.step_into(&mut arrivals, &mut scratch);
                assert_eq!(decisions.len(), n);
                assert!(arrivals.is_empty(), "step must drain the arrivals");
            }
            assert!(substrate.ledger().completed() > 0, "{backend}");
            assert!(substrate.mean_waiting_including_active() >= 0.0);
            // Entered counters: every road entry shows cumulative traffic.
            let total_entered: u64 = net
                .topology()
                .road_ids()
                .map(|r| substrate.road_entered(r))
                .sum();
            assert!(total_entered > 0, "{backend}: entered counters track");
            // Closure round-trips through the trait.
            let internal = net
                .topology()
                .road_ids()
                .find(|&r| net.topology().road(r).is_internal())
                .unwrap();
            substrate.set_road_closed(internal, true);
            assert!(substrate.road_closed(internal));
            substrate.set_road_closed(internal, false);
            assert!(!substrate.road_closed(internal));
        }
    }

    #[test]
    fn guarded_runs_match_unguarded_runs_on_both_backends() {
        // The guard reads, never writes: stepping the same seed through
        // a guarded and an unguarded substrate (with a mid-run closure
        // and reopen) must produce identical ledgers and metrics, and no
        // check may fire on a healthy plant.
        let grid = GridNetwork::new(GridSpec::paper());
        let net = Network::from_grid(&grid, Pattern::II);
        let closed = net
            .topology()
            .road_ids()
            .find(|&r| net.topology().road(r).is_internal())
            .unwrap();
        for backend in Backend::ALL {
            let n = grid.topology().num_intersections();
            let run = |guard: bool| -> (u64, f64, usize) {
                let plant = build_substrate(
                    backend,
                    grid.topology().clone(),
                    controllers(n),
                    MicroSimConfig::default(),
                );
                let mut plain;
                let mut guarded;
                let substrate: &mut dyn TrafficSubstrate = if guard {
                    guarded = InvariantGuard::new(plant);
                    &mut guarded
                } else {
                    plain = plant;
                    &mut plain
                };
                let mut demand = utilbp_netgen::DemandGenerator::new(
                    &grid,
                    utilbp_netgen::DemandConfig::new(utilbp_netgen::DemandSchedule::constant(
                        Pattern::II,
                        utilbp_core::Ticks::new(300),
                    )),
                    11,
                );
                let mut arrivals = Vec::new();
                let mut scratch = SubstrateScratch::new();
                for k in 0..300u64 {
                    if k == 80 {
                        substrate.set_road_closed(closed, true);
                    }
                    if k == 200 {
                        substrate.set_road_closed(closed, false);
                    }
                    arrivals.clear();
                    demand.poll_into(&grid, Tick::new(k), &mut arrivals);
                    substrate.step_into(&mut arrivals, &mut scratch);
                }
                (
                    substrate.ledger().completed(),
                    substrate.mean_waiting_including_active(),
                    substrate.backlog_len(),
                )
            };
            assert_eq!(run(true), run(false), "{backend}");
        }
    }

    #[test]
    fn replan_walk_reports_committed_prefixes() {
        // Every visited vehicle must present a committed prefix that is
        // consistent with its route (at least the next crossing when in
        // the network, nothing when backlogged), and a `None`-returning
        // callback must rewrite nobody.
        let grid = GridNetwork::new(GridSpec::paper());
        for backend in Backend::ALL {
            let n = grid.topology().num_intersections();
            let mut substrate = build_substrate(
                backend,
                grid.topology().clone(),
                controllers(n),
                MicroSimConfig::default(),
            );
            let mut demand = utilbp_netgen::DemandGenerator::new(
                &grid,
                utilbp_netgen::DemandConfig::new(utilbp_netgen::DemandSchedule::constant(
                    Pattern::II,
                    utilbp_core::Ticks::new(150),
                )),
                9,
            );
            let mut arrivals = Vec::new();
            let mut scratch = SubstrateScratch::new();
            for k in 0..150u64 {
                arrivals.clear();
                demand.poll_into(&grid, Tick::new(k), &mut arrivals);
                substrate.step_into(&mut arrivals, &mut scratch);
            }
            let mut visited = 0u64;
            let mut last_id = None;
            let rewritten = substrate.replan_routes(&mut |id, route, fixed| {
                visited += 1;
                assert!(fixed <= route.len() + 1, "{backend}: prefix out of range");
                assert_ne!(
                    Some(id),
                    last_id,
                    "{backend}: each visit is a distinct vehicle"
                );
                last_id = Some(id);
                None
            });
            assert_eq!(rewritten, 0);
            assert!(visited > 0, "{backend}: a loaded network has vehicles");
        }
    }
}
