//! Property-based tests of the queueing-network simulator's invariants.

use proptest::prelude::*;
use utilbp_core::{SignalController, Tick, Ticks, UtilBp};
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};
use utilbp_queueing::{QueueSim, QueueSimConfig, TransitModel};

fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

fn transit_strategy() -> impl Strategy<Value = TransitModel> {
    prop_oneof![Just(TransitModel::Instant), Just(TransitModel::FreeFlow)]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Vehicles are conserved and capacities are respected for arbitrary
    /// seeds, patterns, grid sizes, capacities, and transit models.
    #[test]
    fn conservation_and_capacity(
        seed in 0u64..10_000,
        pattern_idx in 0usize..4,
        rows in 1u32..=3,
        cols in 1u32..=3,
        capacity in 5u32..=120,
        transit in transit_strategy(),
    ) {
        let spec = GridSpec { capacity, ..GridSpec::with_size(rows, cols) };
        let grid = GridNetwork::new(spec);
        let n = grid.topology().num_intersections();
        let mut sim = QueueSim::new(
            grid.topology().clone(),
            controllers(n),
            QueueSimConfig { transit, ..QueueSimConfig::default() },
        );
        let mut demand = DemandGenerator::new(
            &grid,
            DemandConfig::new(DemandSchedule::constant(
                Pattern::ALL[pattern_idx],
                Ticks::new(300),
            )),
            seed,
        );
        let mut injected = 0u64;
        for k in 0..300u64 {
            let arrivals = demand.poll(&grid, Tick::new(k));
            injected += arrivals.len() as u64;
            sim.step(arrivals);

            let on_roads: u64 = grid
                .topology()
                .road_ids()
                .map(|r| sim.road_occupancy(r) as u64)
                .sum();
            prop_assert_eq!(
                injected,
                on_roads + sim.backlog_len() as u64 + sim.ledger().completed(),
                "conservation violated at tick {}", k
            );
            for r in grid.topology().road_ids() {
                prop_assert!(sim.road_occupancy(r) <= capacity);
                prop_assert!(sim.road_queue(r) <= sim.road_occupancy(r));
            }
        }
    }

    /// Waiting and journey statistics are always physically sensible:
    /// waiting ≤ journey for every completed population mean, and both
    /// non-negative.
    #[test]
    fn waiting_never_exceeds_journey(seed in 0u64..10_000) {
        let grid = GridNetwork::new(GridSpec::paper());
        let mut sim = QueueSim::new(
            grid.topology().clone(),
            controllers(9),
            QueueSimConfig::paper_exact(),
        );
        let mut demand = DemandGenerator::new(
            &grid,
            DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(400))),
            seed,
        );
        for k in 0..400u64 {
            sim.step(demand.poll(&grid, Tick::new(k)));
        }
        let ledger = sim.ledger();
        if ledger.completed() > 0 {
            prop_assert!(ledger.waiting_stats().mean() >= 0.0);
            prop_assert!(
                ledger.waiting_stats().mean() <= ledger.journey_stats().mean() + 1e-9,
                "mean waiting {} exceeds mean journey {}",
                ledger.waiting_stats().mean(),
                ledger.journey_stats().mean()
            );
        }
    }

    /// The step report's decision vector always matches the intersection
    /// count, and served counts are bounded by the network's total
    /// service capacity per tick.
    #[test]
    fn step_reports_are_bounded(seed in 0u64..10_000, rows in 1u32..=3) {
        let grid = GridNetwork::new(GridSpec::with_size(rows, 2));
        let n = grid.topology().num_intersections();
        let mut sim = QueueSim::new(
            grid.topology().clone(),
            controllers(n),
            QueueSimConfig::paper_exact(),
        );
        let mut demand = DemandGenerator::new(
            &grid,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(200))),
            seed,
        );
        // µ = 1 per link, at most 4 links active per intersection (c1/c3).
        let service_bound = (n * 4) as u32;
        for k in 0..200u64 {
            let report = sim.step(demand.poll(&grid, Tick::new(k)));
            prop_assert_eq!(report.decisions.len(), n);
            prop_assert!(report.served <= service_bound);
        }
    }
}
