//! The discrete-time queueing-network simulator.
//!
//! Implements the paper's Section II dynamics exactly, on a whole network:
//!
//! - per-movement FIFO queues `q_i^{i'}(k)` at every intersection
//!   (dedicated turning lanes);
//! - queueing evolution `q(k+1) = q(k) + A(k,k+1) − S(k,k+1)` (Eq. 2);
//! - per-link service bounded by `µ_i^{i'}·Δt`, the movement queue, and the
//!   residual capacity `W_{i'} − q_{i'}` of the outgoing road;
//! - free-flow transit delays between intersections (a delay line per
//!   road), so downstream queues see arrivals later, as in the real
//!   network;
//! - boundary backlogs: vehicles arriving at a full entry road wait
//!   outside the network (their wait counts as queuing time).
//!
//! Controllers are invoked once per mini-slot per intersection with purely
//! local observations, mirroring the decentralized deployment the paper
//! assumes.

use std::collections::VecDeque;
use std::sync::Arc;

use utilbp_core::state::{StateError, StateReader, StateWriter};
use utilbp_core::{
    parallel, parallel::ControllerSlot, IncomingId, LinkId, ObservationBuffer, Parallelism,
    PhaseDecision, PhaseId, QueueObservation, SignalController, Tick, Ticks,
};
use utilbp_metrics::{VehicleId, WaitingLedger};
use utilbp_netgen::{Arrival, IntersectionId, NetworkTopology, RoadId, Route};

/// How vehicles travel between a junction's exit and the next queue.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TransitModel {
    /// Served vehicles join the downstream movement queue at the next
    /// mini-slot — exactly the paper's store-and-forward dynamics
    /// (Eq. 2): `q(k+1) = q(k) + A(k,k+1) − S(k,k+1)`.
    Instant,
    /// Served vehicles spend the road's free-flow travel time in a delay
    /// line before joining the downstream queue (a realism refinement; the
    /// in-transit vehicles still count toward road occupancy and toward
    /// the movement counts controllers observe).
    #[default]
    FreeFlow,
}

/// Configuration of a [`QueueSim`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct QueueSimConfig {
    /// Wall-clock seconds per mini-slot (`Δt`, 1 s in the paper).
    pub dt_seconds: f64,
    /// Free-flow speed used to turn road lengths into transit delays
    /// (13.89 m/s = 50 km/h). Ignored under [`TransitModel::Instant`].
    pub free_speed_mps: f64,
    /// Transit model between junctions.
    pub transit: TransitModel,
    /// Execution mode of the per-step controller-decide phase. Serial by
    /// default; [`Parallelism::Rayon`] shards the decide phase across
    /// threads and is step-for-step identical to serial (decisions depend
    /// only on each intersection's own observation and controller state).
    pub parallelism: Parallelism,
}

impl Default for QueueSimConfig {
    fn default() -> Self {
        QueueSimConfig {
            dt_seconds: 1.0,
            free_speed_mps: 13.89,
            transit: TransitModel::FreeFlow,
            parallelism: Parallelism::Serial,
        }
    }
}

impl QueueSimConfig {
    /// The paper's exact discrete-time model: instantaneous transfer into
    /// downstream queues.
    pub fn paper_exact() -> Self {
        QueueSimConfig {
            transit: TransitModel::Instant,
            ..QueueSimConfig::default()
        }
    }
}

/// A vehicle waiting in a movement queue.
#[derive(Debug, Clone)]
struct QueuedVehicle {
    id: VehicleId,
    route: Arc<Route>,
    /// Index of the *current* hop (the intersection this queue belongs to).
    hop: usize,
    joined: Tick,
    /// Waiting ticks accumulated at *previous* queues (the dwell in this
    /// queue is credited when the vehicle is served). Flushed to the
    /// ledger once, at journey completion.
    waited: u64,
}

/// A vehicle in free-flow transit along a road.
#[derive(Debug, Clone)]
struct TransitVehicle {
    id: VehicleId,
    route: Arc<Route>,
    /// Index of the hop at the road's downstream end (meaningless for
    /// boundary exit roads).
    hop: usize,
    arrives: Tick,
    /// Waiting ticks accumulated so far, riding along to the next queue.
    waited: u64,
}

#[derive(Debug, Clone, Default)]
struct RoadState {
    /// Whether the road is closed to *entering* traffic (scenario events).
    /// Vehicles already on a closed road keep moving and may leave it;
    /// nothing new is served or injected onto it while closed.
    closed: bool,
    /// Vehicles physically on the road: in transit plus queued at its head.
    occupancy: u32,
    /// Cumulative vehicles that have entered the road (injections,
    /// backlog drains, junction transfers) — a monotone counter that lets
    /// callers observe where traffic actually went (e.g. detour roads
    /// after a replanned closure).
    entered: u64,
    /// Vehicles queued at the road's downstream junction (the `q_{i'}`
    /// the controllers observe) — maintained incrementally as vehicles
    /// join and leave the head queues, so the outgoing-road sensor is an
    /// O(1) read instead of a per-arm sum.
    queued: u32,
    /// Delay line, FIFO by arrival tick.
    transit: VecDeque<TransitVehicle>,
    /// Transit delay in ticks.
    travel: Ticks,
    /// Storage capacity `W` (copied from the topology for borrow-free
    /// access).
    capacity: u32,
    /// Destination intersection index, if the road feeds one.
    dest_intersection: Option<usize>,
}

#[derive(Debug, Clone)]
struct IntersectionState {
    /// One FIFO per feasible link, indexed by `LinkId`.
    queues: Vec<VecDeque<QueuedVehicle>>,
    /// Fractional service credit per link (supports non-integer `µ·Δt`).
    credit: Vec<f64>,
}

/// Precomputed per-link service lookup (avoids re-borrowing the topology in
/// the hot loop).
#[derive(Debug, Clone, Copy)]
struct LinkService {
    mu: f64,
    in_road: RoadId,
    out_road: RoadId,
}

/// Cumulative wall-clock seconds attributed to each section of the
/// queueing step pipeline by [`QueueSim::step_into_timed`]. Fields are
/// **added onto** across ticks, so one instance accumulates a whole
/// run's profile.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct StepPhaseTimings {
    /// Transit arrivals landing on queues + boundary backlog drains.
    pub transit: f64,
    /// Sensing (observation rewrite) + controller decisions.
    pub decide: f64,
    /// Serving activated links.
    pub serve: f64,
    /// Exogenous arrival injection + report bookkeeping.
    pub inject: f64,
}

impl StepPhaseTimings {
    /// Total attributed seconds.
    pub fn total(&self) -> f64 {
        self.transit + self.decide + self.serve + self.inject
    }
}

/// Lap timer for [`QueueSim::step_into_timed`]: when disabled (`None`
/// timings) every call is a no-op the optimizer removes, so the untimed
/// hot path pays nothing.
struct SlotStopwatch<'a> {
    timings: Option<&'a mut StepPhaseTimings>,
    last: Option<std::time::Instant>,
}

impl<'a> SlotStopwatch<'a> {
    fn new(timings: Option<&'a mut StepPhaseTimings>) -> Self {
        let last = timings.as_ref().map(|_| std::time::Instant::now());
        SlotStopwatch { timings, last }
    }

    /// Adds the time since the previous lap onto the picked field.
    fn lap(&mut self, pick: fn(&mut StepPhaseTimings) -> &mut f64) {
        if let (Some(timings), Some(last)) = (self.timings.as_deref_mut(), self.last.as_mut()) {
            let now = std::time::Instant::now();
            *pick(timings) += now.duration_since(*last).as_secs_f64();
            *last = now;
        }
    }
}

/// What happened during one simulation step.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StepReport {
    /// The instant that was simulated.
    pub tick: Tick,
    /// The decision applied at each intersection, indexed by
    /// `IntersectionId`.
    pub decisions: Vec<PhaseDecision>,
    /// Vehicles served (moved through a junction) this step.
    pub served: u32,
    /// Vehicles that completed their journey this step.
    pub completed: u32,
    /// Vehicles injected into the network this step (excluding those pushed
    /// to a boundary backlog).
    pub injected: u32,
}

impl StepReport {
    /// An empty report, ready to be passed to
    /// [`QueueSim::step_into`] — its buffers are reused across ticks.
    pub fn empty() -> Self {
        StepReport {
            tick: Tick::ZERO,
            decisions: Vec::new(),
            served: 0,
            completed: 0,
            injected: 0,
        }
    }
}

/// The mesoscopic network simulator.
///
/// # Examples
///
/// ```
/// use utilbp_core::{Tick, Ticks, UtilBp};
/// use utilbp_netgen::{
///     DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec,
///     Pattern,
/// };
/// use utilbp_queueing::{QueueSim, QueueSimConfig};
///
/// let grid = GridNetwork::new(GridSpec::paper());
/// let controllers = (0..9)
///     .map(|_| Box::new(UtilBp::paper()) as Box<dyn utilbp_core::SignalController>)
///     .collect();
/// let mut sim = QueueSim::new(
///     grid.topology().clone(),
///     controllers,
///     QueueSimConfig::default(),
/// );
/// let mut demand = DemandGenerator::new(
///     &grid,
///     DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(300))),
///     7,
/// );
/// for k in 0..300 {
///     let arrivals = demand.poll(&grid, Tick::new(k));
///     sim.step(arrivals);
/// }
/// assert!(sim.ledger().completed() > 0);
/// ```
pub struct QueueSim {
    topology: NetworkTopology,
    config: QueueSimConfig,
    controllers: Vec<ControllerSlot>,
    intersections: Vec<IntersectionState>,
    roads: Vec<RoadState>,
    /// Reusable per-step observation scratch (no steady-state allocation).
    obs_buf: ObservationBuffer,
    /// `[intersection][link]` service lookup.
    links: Vec<Vec<LinkService>>,
    /// `[intersection][phase]` → activated link ids.
    phase_links: Vec<Vec<Vec<LinkId>>>,
    /// `[intersection][link]` → vehicles in transit on the incoming road
    /// destined for this movement (they count toward the controller's
    /// `q_i^{i'}` observation — every vehicle on a road is queued in the
    /// paper's store-and-forward model).
    transit_by_link: Vec<Vec<u32>>,
    /// Vehicles waiting outside full boundary entry roads, FIFO.
    backlogs: Vec<VecDeque<(VehicleId, Arc<Route>, Tick)>>,
    ledger: WaitingLedger,
    now: Tick,
    total_served: u64,
}

impl std::fmt::Debug for QueueSim {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("QueueSim")
            .field("now", &self.now)
            .field("intersections", &self.intersections.len())
            .field("roads", &self.roads.len())
            .field("total_served", &self.total_served)
            .field(
                "controllers",
                &self
                    .controllers
                    .iter()
                    .map(|slot| slot.controller.name())
                    .collect::<Vec<_>>(),
            )
            .finish_non_exhaustive()
    }
}

impl QueueSim {
    /// Creates a simulator over `topology`, one controller per
    /// intersection (indexed by [`IntersectionId`]).
    ///
    /// # Panics
    ///
    /// Panics if the controller count does not match the intersection
    /// count, or if `config` has non-positive `dt_seconds` /
    /// `free_speed_mps`.
    pub fn new(
        topology: NetworkTopology,
        controllers: Vec<Box<dyn SignalController>>,
        config: QueueSimConfig,
    ) -> Self {
        assert_eq!(
            controllers.len(),
            topology.num_intersections(),
            "one controller per intersection"
        );
        assert!(
            config.dt_seconds.is_finite() && config.dt_seconds > 0.0,
            "dt_seconds must be positive"
        );
        assert!(
            config.free_speed_mps.is_finite() && config.free_speed_mps > 0.0,
            "free_speed_mps must be positive"
        );

        let mut intersections = Vec::with_capacity(topology.num_intersections());
        let mut links = Vec::with_capacity(topology.num_intersections());
        let mut phase_links = Vec::with_capacity(topology.num_intersections());
        let mut transit_by_link = Vec::with_capacity(topology.num_intersections());
        for i in topology.intersection_ids() {
            let node = topology.intersection(i);
            let layout = node.layout();
            intersections.push(IntersectionState {
                queues: vec![VecDeque::new(); layout.num_links()],
                credit: vec![0.0; layout.num_links()],
            });
            transit_by_link.push(vec![0u32; layout.num_links()]);
            links.push(
                layout
                    .link_ids()
                    .map(|lid| {
                        let link = layout.link(lid);
                        LinkService {
                            mu: link.service_rate(),
                            in_road: node.incoming_road(link.from()),
                            out_road: node.outgoing_road(link.to()),
                        }
                    })
                    .collect(),
            );
            phase_links.push(
                layout
                    .phase_ids()
                    .map(|p| layout.phase(p).links().to_vec())
                    .collect(),
            );
        }

        let roads = topology
            .road_ids()
            .map(|r| {
                let road = topology.road(r);
                let travel = match config.transit {
                    TransitModel::Instant => Ticks::ZERO,
                    TransitModel::FreeFlow => {
                        let ticks = (road.length_m() / config.free_speed_mps / config.dt_seconds)
                            .ceil() as u64;
                        Ticks::new(ticks.max(1))
                    }
                };
                RoadState {
                    closed: false,
                    occupancy: 0,
                    entered: 0,
                    queued: 0,
                    transit: VecDeque::new(),
                    travel,
                    capacity: road.capacity(),
                    dest_intersection: road.dest().map(|(i, _)| i.index()),
                }
            })
            .collect();
        let backlogs = vec![VecDeque::new(); topology.num_roads()];

        let mut obs_buf = ObservationBuffer::new();
        obs_buf.shape_for(
            topology
                .intersection_ids()
                .map(|i| topology.intersection(i).layout()),
        );

        QueueSim {
            topology,
            config,
            controllers: ControllerSlot::wrap_all(controllers),
            intersections,
            roads,
            obs_buf,
            links,
            phase_links,
            transit_by_link,
            backlogs,
            ledger: WaitingLedger::new(),
            now: Tick::ZERO,
            total_served: 0,
        }
    }

    /// The simulated network.
    pub fn topology(&self) -> &NetworkTopology {
        &self.topology
    }

    /// The simulator configuration.
    pub fn config(&self) -> &QueueSimConfig {
        &self.config
    }

    /// The current instant (the next tick to be simulated).
    pub fn now(&self) -> Tick {
        self.now
    }

    /// Per-vehicle journey accounting and completed-vehicle waiting
    /// statistics. Active vehicles carry their waiting in simulator-side
    /// accumulators; use
    /// [`mean_waiting_including_active`](Self::mean_waiting_including_active)
    /// for the paper's headline metric.
    pub fn ledger(&self) -> &WaitingLedger {
        &self.ledger
    }

    /// Average waiting time per vehicle including vehicles still in the
    /// network — the paper's "average queuing time of a vehicle". Folds
    /// the per-vehicle accumulators carried by queued and in-transit
    /// vehicles into the ledger's completed statistics at query time;
    /// vehicles still waiting outside a full boundary entry contribute
    /// their backlog dwell so far (`now − since`, the amount that will be
    /// credited when they are admitted), matching the microscopic
    /// substrate — without it, congested runs would *understate* waiting
    /// by exactly their stuck vehicles.
    pub fn mean_waiting_including_active(&self) -> f64 {
        let now = self.now;
        let queued = self
            .intersections
            .iter()
            .flat_map(|i| i.queues.iter().flat_map(|q| q.iter().map(|v| v.waited)));
        let transit = self
            .roads
            .iter()
            .flat_map(|r| r.transit.iter().map(|v| v.waited));
        let backlogged = self.backlogs.iter().flat_map(move |b| {
            b.iter()
                .map(move |&(_, _, since)| now.saturating_since(since).count())
        });
        self.ledger
            .mean_waiting_including_active(queued.chain(transit).chain(backlogged))
    }

    /// Total vehicles served through junctions so far.
    pub fn total_served(&self) -> u64 {
        self.total_served
    }

    /// The number of vehicles physically queued at the junction head for
    /// `link` at `intersection` (the servable part of `q_i^{i'}`).
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn movement_queue_len(&self, intersection: IntersectionId, link: LinkId) -> u32 {
        self.intersections[intersection.index()].queues[link.index()].len() as u32
    }

    /// The full movement count `q_i^{i'}` a controller observes: queued
    /// vehicles plus those still in transit on the incoming road but
    /// destined for this movement. In the paper's store-and-forward model
    /// every vehicle on a road is queued; under
    /// [`TransitModel::Instant`] this equals [`Self::movement_queue_len`]
    /// at decision time.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn movement_count(&self, intersection: IntersectionId, link: LinkId) -> u32 {
        self.movement_queue_len(intersection, link)
            + self.transit_by_link[intersection.index()][link.index()]
    }

    /// Total queue `q_i` (Eq. 1) at an incoming arm of an intersection —
    /// the quantity plotted in the paper's Fig. 5.
    ///
    /// # Panics
    ///
    /// Panics if the ids are out of range.
    pub fn incoming_queue_len(&self, intersection: IntersectionId, arm: IncomingId) -> u32 {
        let layout = self.topology.intersection(intersection).layout();
        layout
            .links_from(arm)
            .iter()
            .map(|&l| self.movement_queue_len(intersection, l))
            .sum()
    }

    /// The current occupancy of a road (transit + queued at its head).
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_occupancy(&self, road: RoadId) -> u32 {
        self.roads[road.index()].occupancy
    }

    /// Cumulative vehicles that have entered `road` since the start
    /// (injections, backlog drains, and junction transfers).
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_entered(&self, road: RoadId) -> u64 {
        self.roads[road.index()].entered
    }

    /// The number of vehicles *queued* on a road (waiting at its
    /// downstream junction; zero for boundary exit roads) — the `q_{i'}`
    /// the controllers observe, an O(1) read of the road's incrementally
    /// maintained counter. Under [`TransitModel::Instant`] this equals
    /// the occupancy.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_queue(&self, road: RoadId) -> u32 {
        self.roads[road.index()].queued
    }

    /// Vehicles currently waiting outside full boundary entry roads.
    pub fn backlog_len(&self) -> usize {
        self.backlogs.iter().map(|b| b.len()).sum()
    }

    /// Closes or reopens a road (a disruption event). A closed road admits
    /// no new traffic — junctions do not serve vehicles onto it and
    /// boundary arrivals on a closed entry road wait in the backlog — but
    /// vehicles already on it keep moving and may leave it, exactly like a
    /// street closed at its upstream end.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn set_road_closed(&mut self, road: RoadId, closed: bool) {
        self.roads[road.index()].closed = closed;
    }

    /// Whether `road` is currently closed to entering traffic.
    ///
    /// # Panics
    ///
    /// Panics if `road` is out of range.
    pub fn road_closed(&self, road: RoadId) -> bool {
        self.roads[road.index()].closed
    }

    /// The queue observation a controller at `intersection` would see now.
    ///
    /// Allocates a fresh observation; the step pipeline itself uses
    /// [`observe_into`](Self::observe_into) over a reused
    /// [`ObservationBuffer`].
    ///
    /// # Panics
    ///
    /// Panics if `intersection` is out of range.
    pub fn observe(&self, intersection: IntersectionId) -> QueueObservation {
        let layout = self.topology.intersection(intersection).layout();
        let mut obs = QueueObservation::zeros(layout);
        self.observe_into(intersection, &mut obs);
        obs
    }

    /// Writes the observation for `intersection` into `obs` (shaped for
    /// the intersection's layout) without allocating. All reads are O(1)
    /// per field: movement queues are deque lengths, outgoing occupancies
    /// the incremental per-road queue counters.
    ///
    /// # Panics
    ///
    /// Panics if `intersection` is out of range or `obs` has the wrong
    /// shape.
    pub fn observe_into(&self, intersection: IntersectionId, obs: &mut QueueObservation) {
        let node = self.topology.intersection(intersection);
        let layout = node.layout();
        for link in layout.link_ids() {
            obs.set_movement(link, self.movement_queue_len(intersection, link));
        }
        for out in layout.outgoing_ids() {
            let road = node.outgoing_road(out);
            obs.set_outgoing(out, self.road_queue(road));
        }
    }

    /// Validates the incremental-sensing invariant: every road's `queued`
    /// counter must equal the sum of the movement queues at its
    /// downstream arm. Debug/test facility backing the regression suite.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first divergent road.
    pub fn verify_sensors(&self) -> Result<(), String> {
        for r in self.topology.road_ids() {
            let expected = match self.topology.road(r).dest() {
                Some((i, arm)) => self
                    .topology
                    .intersection(i)
                    .layout()
                    .links_from(arm)
                    .iter()
                    .map(|&l| self.movement_queue_len(i, l))
                    .sum(),
                None => 0,
            };
            if self.roads[r.index()].queued != expected {
                return Err(format!(
                    "road {r}: incremental queued {} != rescan {expected}",
                    self.roads[r.index()].queued
                ));
            }
        }
        Ok(())
    }

    /// Simulates one mini-slot, injecting `arrivals` (produced for this
    /// tick by a demand generator).
    ///
    /// Step order within the slot: transit arrivals join queues → boundary
    /// backlogs drain → controllers decide on the state `Q(k)` → activated
    /// links serve → new exogenous arrivals are injected (Eq. 2's
    /// `A(k, k+1)`).
    pub fn step(&mut self, arrivals: Vec<Arrival>) -> StepReport {
        let mut arrivals = arrivals;
        let mut report = StepReport::empty();
        self.step_into(&mut arrivals, &mut report);
        report
    }

    /// Allocation-free variant of [`step`](Self::step): drains `arrivals`
    /// and overwrites `report` in place, reusing its buffers. This is the
    /// steady-state hot path — callers that reuse the same `Vec<Arrival>`
    /// and [`StepReport`] across ticks incur no per-tick heap allocation
    /// from the stepping machinery.
    pub fn step_into(&mut self, arrivals: &mut Vec<Arrival>, report: &mut StepReport) {
        self.step_impl(arrivals, report, None);
    }

    /// [`step_into`](Self::step_into) with per-section wall-clock
    /// attribution: each pipeline section's elapsed time is **added**
    /// onto the matching [`StepPhaseTimings`] field. Timing reads are
    /// measurements, not inputs — the simulated outcome is identical to
    /// the untimed path.
    pub fn step_into_timed(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        report: &mut StepReport,
        timings: &mut StepPhaseTimings,
    ) {
        self.step_impl(arrivals, report, Some(timings));
    }

    fn step_impl(
        &mut self,
        arrivals: &mut Vec<Arrival>,
        report: &mut StepReport,
        timings: Option<&mut StepPhaseTimings>,
    ) {
        let mut watch = SlotStopwatch::new(timings);
        let now = self.now;

        let completed = self.move_transit_arrivals(now);
        self.drain_backlogs(now);
        watch.lap(|t| &mut t.transit);

        // Sense: rewrite the reusable observation buffer (O(1) reads per
        // field from deque lengths and the incremental road counters).
        let mut obs_buf = std::mem::take(&mut self.obs_buf);
        for i in self.topology.intersection_ids() {
            self.observe_into(i, obs_buf.get_mut(i.index()));
        }

        // Decide, per intersection, from purely local observations — one
        // controller per slot, sharded across threads under
        // [`Parallelism::Rayon`].
        {
            let topology = &self.topology;
            parallel::decide_all(
                self.config.parallelism,
                &mut self.controllers,
                &obs_buf,
                now,
                |idx| {
                    topology
                        .intersection(IntersectionId::new(idx as u32))
                        .layout()
                },
            );
        }
        self.obs_buf = obs_buf;
        watch.lap(|t| &mut t.decide);

        // Serve activated links.
        let mut served = 0u32;
        for i in 0..self.controllers.len() {
            if let PhaseDecision::Control(phase) = self.controllers[i].decision {
                served += self.serve_phase(i, phase, now);
            }
        }
        watch.lap(|t| &mut t.serve);

        // Inject this slot's exogenous arrivals.
        let mut injected = 0u32;
        for arrival in arrivals.drain(..) {
            if self.inject(arrival, now) {
                injected += 1;
            }
        }

        self.total_served += served as u64;
        self.now = now.next();
        report.tick = now;
        report.decisions.clear();
        report
            .decisions
            .extend(self.controllers.iter().map(|slot| slot.decision));
        report.served = served;
        report.completed = completed;
        report.injected = injected;
        watch.lap(|t| &mut t.inject);
    }

    /// Runs `horizon` steps with no exogenous demand (useful to drain the
    /// network at the end of an experiment).
    pub fn run_empty(&mut self, horizon: Ticks) {
        for _ in 0..horizon.count() {
            self.step(Vec::new());
        }
    }

    /// Moves vehicles whose transit delay has elapsed into their movement
    /// queue (internal roads) or out of the network (exit roads); returns
    /// the number of journeys completed.
    fn move_transit_arrivals(&mut self, now: Tick) -> u32 {
        let mut completed = 0u32;
        for r in 0..self.roads.len() {
            let dest = self.roads[r].dest_intersection;
            loop {
                match self.roads[r].transit.front() {
                    Some(front) if front.arrives <= now => {}
                    _ => break,
                }
                let v = self.roads[r].transit.pop_front().expect("checked front");
                match dest {
                    Some(intersection) => {
                        let (_, link) = v
                            .route
                            .hop(v.hop)
                            .expect("route hop exists for internal road");
                        self.transit_by_link[intersection][link.index()] =
                            self.transit_by_link[intersection][link.index()].saturating_sub(1);
                        self.intersections[intersection].queues[link.index()].push_back(
                            QueuedVehicle {
                                id: v.id,
                                route: v.route,
                                hop: v.hop,
                                joined: now,
                                waited: v.waited,
                            },
                        );
                        // Occupancy unchanged: the queue is the head of the
                        // same road. The queued counter tracks the join.
                        self.roads[r].queued += 1;
                    }
                    None => {
                        // Boundary exit: the vehicle leaves the network,
                        // flushing its accumulated waiting to the ledger.
                        self.roads[r].occupancy = self.roads[r].occupancy.saturating_sub(1);
                        self.ledger.complete(v.id, now, v.waited);
                        completed += 1;
                    }
                }
            }
        }
        completed
    }

    /// Moves backlogged vehicles onto their entry road while space lasts.
    fn drain_backlogs(&mut self, now: Tick) {
        for r in 0..self.roads.len() {
            while !self.backlogs[r].is_empty()
                && !self.roads[r].closed
                && self.roads[r].occupancy < self.roads[r].capacity
            {
                let (id, route, queued_since) =
                    self.backlogs[r].pop_front().expect("checked non-empty");
                // The whole backlog dwell counts as waiting, credited to
                // the vehicle's accumulator in one shot.
                let waited = now.saturating_since(queued_since).count();
                self.enter_road(RoadId::new(r as u32), id, route, 0, now, waited);
            }
        }
    }

    /// Serves every link of `phase` at intersection index `i`; returns the
    /// number of vehicles served.
    fn serve_phase(&mut self, i: usize, phase: PhaseId, now: Tick) -> u32 {
        let dt = self.config.dt_seconds;
        let mut served = 0u32;
        let link_ids = std::mem::take(&mut self.phase_links[i][phase.index()]);

        for &link_id in &link_ids {
            let service = self.links[i][link_id.index()];
            // Fractional service credit supports µ·Δt < 1. The cap keeps
            // the per-slot budget at the service rate: a link cannot bank
            // green time it could not use (no queue or no space) to serve
            // a burst above µ later.
            let mu_dt = service.mu * dt;
            let credit = &mut self.intersections[i].credit[link_id.index()];
            *credit = (*credit + mu_dt).min(mu_dt.max(1.0));
            let mut budget = self.intersections[i].credit[link_id.index()].floor() as u32;

            while budget > 0 {
                let out = &self.roads[service.out_road.index()];
                if out.closed || out.occupancy >= out.capacity {
                    break;
                }
                let Some(vehicle) = self.intersections[i].queues[link_id.index()].pop_front()
                else {
                    break;
                };
                self.intersections[i].credit[link_id.index()] -= 1.0;
                budget -= 1;
                served += 1;

                // Queue dwell is waiting time, accumulated on the vehicle.
                let waited = vehicle.waited + now.saturating_since(vehicle.joined).count();
                // Leave the incoming road…
                let in_road = &mut self.roads[service.in_road.index()];
                in_road.occupancy = in_road.occupancy.saturating_sub(1);
                in_road.queued = in_road.queued.saturating_sub(1);
                // …and enter the outgoing one toward the next hop.
                self.enter_road(
                    service.out_road,
                    vehicle.id,
                    vehicle.route,
                    vehicle.hop + 1,
                    now,
                    waited,
                );
            }
        }
        self.phase_links[i][phase.index()] = link_ids;
        served
    }

    /// Puts a vehicle onto `road` with `waited` accumulated waiting ticks,
    /// scheduling its transit arrival.
    fn enter_road(
        &mut self,
        road: RoadId,
        id: VehicleId,
        route: Arc<Route>,
        hop: usize,
        now: Tick,
        waited: u64,
    ) {
        let state = &mut self.roads[road.index()];
        state.occupancy += 1;
        state.entered += 1;
        let arrives = now + state.travel;
        if let Some(i) = state.dest_intersection {
            let (_, link) = route.hop(hop).expect("internal road implies a further hop");
            self.transit_by_link[i][link.index()] += 1;
        }
        state.transit.push_back(TransitVehicle {
            id,
            route,
            hop,
            arrives,
            waited,
        });
    }

    /// Visits every vehicle that still has junction crossings ahead of it
    /// and lets `replan` rewrite its remaining route (en-route
    /// replanning; part of the `TrafficSubstrate` contract in
    /// `utilbp-substrate`).
    ///
    /// The walk order is deterministic: movement queues in intersection /
    /// link / FIFO order, then transit delay lines in road / FIFO order,
    /// then backlogs in road / FIFO order. The callback receives the
    /// vehicle's id, its route, and the number of committed leading hops —
    /// `hop + 1` for queued and in-transit vehicles, whose movement queue
    /// (and the incremental `transit_by_link` counter) is bound to the
    /// cursor's movement, and `0` for backlogged vehicles that have not
    /// entered yet. A returned replacement must preserve exactly that
    /// prefix. Returns the number of vehicles rewritten; draws no
    /// randomness.
    pub fn replan_routes(&mut self, replan: &mut utilbp_netgen::RouteRewrite<'_>) -> u64 {
        let mut diverted = 0u64;
        for intersection in &mut self.intersections {
            for queue in &mut intersection.queues {
                for v in queue.iter_mut() {
                    if let Some(route) = replan(v.id, &v.route, v.hop + 1) {
                        v.route = route;
                        diverted += 1;
                    }
                }
            }
        }
        for road in &mut self.roads {
            // Exit-road transit: the journey has no further crossings.
            if road.dest_intersection.is_none() {
                continue;
            }
            for v in road.transit.iter_mut() {
                if let Some(route) = replan(v.id, &v.route, v.hop + 1) {
                    v.route = route;
                    diverted += 1;
                }
            }
        }
        for backlog in &mut self.backlogs {
            for (id, route, _) in backlog.iter_mut() {
                if let Some(new_route) = replan(*id, route, 0) {
                    *route = new_route;
                    diverted += 1;
                }
            }
        }
        diverted
    }

    /// Fills `out` with every road's current occupancy, indexed by
    /// [`RoadId`] (the `TrafficSubstrate` occupancy-snapshot contract).
    /// O(roads) reads of the incrementally maintained counters.
    pub fn occupancy_snapshot(&self, out: &mut Vec<u32>) {
        out.clear();
        out.extend(self.roads.iter().map(|r| r.occupancy));
    }

    /// Serializes the full dynamic state into a durable word stream:
    /// clock, counters, per-road flags/counters/transit lines, movement
    /// queues with fractional credits, boundary backlogs, the waiting
    /// ledger, and every controller's state (in intersection order).
    ///
    /// Construction-time shape (topology, service lookups, phase→link
    /// tables, transit delays) and intra-step scratch (the observation
    /// buffer, per-slot decisions — rewritten by the next step's decide
    /// phase) are *not* state and are not written. The incremental
    /// `transit_by_link` counters are derived from the transit lines and
    /// are recomputed on load.
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.push(self.now.index());
        writer.push(self.total_served);
        writer.push_usize(self.roads.len());
        for road in &self.roads {
            writer.push_bool(road.closed);
            writer.push_u32(road.occupancy);
            writer.push(road.entered);
            writer.push_u32(road.queued);
            writer.push_usize(road.transit.len());
            for v in &road.transit {
                writer.push(v.id.raw());
                v.route.save_state(writer);
                writer.push_usize(v.hop);
                writer.push(v.arrives.index());
                writer.push(v.waited);
            }
        }
        writer.push_usize(self.intersections.len());
        for inter in &self.intersections {
            writer.push_usize(inter.queues.len());
            for queue in &inter.queues {
                writer.push_usize(queue.len());
                for v in queue {
                    writer.push(v.id.raw());
                    v.route.save_state(writer);
                    writer.push_usize(v.hop);
                    writer.push(v.joined.index());
                    writer.push(v.waited);
                }
            }
            for &credit in &inter.credit {
                writer.push_f64(credit);
            }
        }
        for backlog in &self.backlogs {
            writer.push_usize(backlog.len());
            for (id, route, since) in backlog {
                writer.push(id.raw());
                route.save_state(writer);
                writer.push(since.index());
            }
        }
        self.ledger.save_state(writer);
        for slot in &self.controllers {
            slot.controller.save_state(writer);
        }
    }

    /// Restores the state written by [`save_state`](Self::save_state)
    /// into a simulator built over the *same* topology, configuration,
    /// and controller stack. The restored simulator continues
    /// bit-identically to the original.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] if the stream is truncated, or if the
    /// saved shape (road / intersection / movement-queue counts) does not
    /// match this simulator's topology.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        self.now = Tick::new(reader.take()?);
        self.total_served = reader.take()?;

        let roads = reader.take_usize()?;
        if roads != self.roads.len() {
            return Err(StateError::Invalid {
                what: "queueing road count",
                word: roads as u64,
            });
        }
        for road in &mut self.roads {
            road.closed = reader.take_bool()?;
            road.occupancy = reader.take_u32()?;
            road.entered = reader.take()?;
            road.queued = reader.take_u32()?;
            let transit = reader.take_usize()?;
            road.transit.clear();
            for _ in 0..transit {
                let id = VehicleId::new(reader.take()?);
                let route = Arc::new(Route::load_state(reader)?);
                let hop = reader.take_usize()?;
                let arrives = Tick::new(reader.take()?);
                let waited = reader.take()?;
                road.transit.push_back(TransitVehicle {
                    id,
                    route,
                    hop,
                    arrives,
                    waited,
                });
            }
        }

        let intersections = reader.take_usize()?;
        if intersections != self.intersections.len() {
            return Err(StateError::Invalid {
                what: "queueing intersection count",
                word: intersections as u64,
            });
        }
        for inter in &mut self.intersections {
            let queues = reader.take_usize()?;
            if queues != inter.queues.len() {
                return Err(StateError::Invalid {
                    what: "queueing movement queue count",
                    word: queues as u64,
                });
            }
            for queue in &mut inter.queues {
                let len = reader.take_usize()?;
                queue.clear();
                for _ in 0..len {
                    let id = VehicleId::new(reader.take()?);
                    let route = Arc::new(Route::load_state(reader)?);
                    let hop = reader.take_usize()?;
                    let joined = Tick::new(reader.take()?);
                    let waited = reader.take()?;
                    queue.push_back(QueuedVehicle {
                        id,
                        route,
                        hop,
                        joined,
                        waited,
                    });
                }
            }
            for credit in &mut inter.credit {
                *credit = reader.take_f64()?;
            }
        }

        for backlog in &mut self.backlogs {
            let len = reader.take_usize()?;
            backlog.clear();
            for _ in 0..len {
                let id = VehicleId::new(reader.take()?);
                let route = Arc::new(Route::load_state(reader)?);
                let since = Tick::new(reader.take()?);
                backlog.push_back((id, route, since));
            }
        }

        self.ledger = WaitingLedger::load_state(reader)?;
        for slot in &mut self.controllers {
            slot.controller.load_state(reader)?;
        }

        // Rebuild the derived in-transit movement counters from the
        // restored delay lines.
        for counts in &mut self.transit_by_link {
            counts.iter_mut().for_each(|c| *c = 0);
        }
        for road in &self.roads {
            let Some(i) = road.dest_intersection else {
                continue;
            };
            for v in &road.transit {
                let (_, link) = v.route.hop(v.hop).ok_or(StateError::Invalid {
                    what: "queueing transit hop",
                    word: v.hop as u64,
                })?;
                self.transit_by_link[i][link.index()] += 1;
            }
        }
        Ok(())
    }

    /// Injects an exogenous arrival; returns `false` if it was backlogged.
    fn inject(&mut self, arrival: Arrival, now: Tick) -> bool {
        let road = arrival.route.entry();
        let route = arrival.route;
        self.ledger.enter(arrival.vehicle, now);
        if !self.roads[road.index()].closed
            && self.roads[road.index()].occupancy < self.roads[road.index()].capacity
        {
            self.enter_road(road, arrival.vehicle, route, 0, now, 0);
            true
        } else {
            self.backlogs[road.index()].push_back((arrival.vehicle, route, now));
            false
        }
    }
}
