//! # utilbp-queueing
//!
//! The mesoscopic simulation substrate of the adaptive back-pressure
//! workspace: a direct, network-wide implementation of the paper's
//! Section II discrete-time queueing model. Vehicles are individually
//! tracked (FIFO per dedicated turning lane), so average queuing times are
//! exact rather than estimated from Little's law.
//!
//! This substrate complements `utilbp-microsim` (the microscopic SUMO
//! substitute): it runs an order of magnitude faster and matches the
//! analytical model exactly, which makes it the right tool for property
//! tests, parameter sweeps, and cross-validation of the microscopic
//! results.
//!
//! Both simulators implement the workspace's unified plant interface —
//! the `TrafficSubstrate` trait in `utilbp-substrate` — which states the
//! cross-substrate contract (determinism across execution modes and
//! repeats, road-closure semantics, accumulator-based waiting
//! accounting, deterministic route-cursor access for en-route
//! replanning) once for both backends.
//!
//! See [`QueueSim`] for the step semantics and an end-to-end example.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod sim;

pub use sim::{QueueSim, QueueSimConfig, StepPhaseTimings, StepReport, TransitModel};

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_baselines::{CapBp, FixedTime};
    use utilbp_core::standard::{self, Approach, Turn};
    use utilbp_core::{PhaseDecision, SignalController, Tick, Ticks, UtilBp};
    use utilbp_metrics::VehicleId;
    use utilbp_netgen::{
        Arrival, DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
        RouteChoice,
    };

    fn grid() -> GridNetwork {
        GridNetwork::new(GridSpec::paper())
    }

    fn controllers_util(n: usize) -> Vec<Box<dyn SignalController>> {
        (0..n)
            .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
            .collect()
    }

    fn sim_with_util(grid: &GridNetwork) -> QueueSim {
        QueueSim::new(
            grid.topology().clone(),
            controllers_util(grid.topology().num_intersections()),
            QueueSimConfig::default(),
        )
    }

    /// Hand-built arrival: one vehicle entering from the given entry index
    /// with the given route choice.
    fn one_arrival(grid: &GridNetwork, entry_idx: usize, id: u64, choice: RouteChoice) -> Arrival {
        let entry = grid.entries()[entry_idx];
        Arrival {
            vehicle: VehicleId::new(id),
            tick: Tick::ZERO,
            route: std::sync::Arc::new(grid.route(&entry, choice)),
        }
    }

    #[test]
    fn single_vehicle_crosses_the_network() {
        let g = grid();
        let mut sim = sim_with_util(&g);
        let arrival = one_arrival(&g, 0, 0, RouteChoice::Straight);
        sim.step(vec![arrival]);
        // Drive long enough for 4 roads of transit plus services.
        for _ in 0..400 {
            sim.step(Vec::new());
        }
        assert_eq!(sim.ledger().completed(), 1, "the vehicle must exit");
        assert_eq!(sim.ledger().active(), 0);
        assert_eq!(sim.total_served(), 3, "three junctions crossed");
        // All roads empty again.
        for r in sim.topology().road_ids() {
            assert_eq!(sim.road_occupancy(r), 0, "road {r} must drain");
        }
    }

    #[test]
    fn transit_delay_defers_queue_visibility() {
        let g = grid();
        let mut sim = sim_with_util(&g);
        let entry = g.entries()[0];
        let first_hop = g.route(&entry, RouteChoice::Straight).hops()[0];
        sim.step(vec![one_arrival(&g, 0, 0, RouteChoice::Straight)]);
        // 300 m / 13.89 m/s ≈ 22 ticks of transit: queue stays empty until
        // then.
        assert_eq!(sim.movement_queue_len(first_hop.0, first_hop.1), 0);
        for _ in 1..22 {
            sim.step(Vec::new());
        }
        assert_eq!(sim.road_occupancy(entry.road), 1, "still on the entry road");
        let before = sim.movement_queue_len(first_hop.0, first_hop.1);
        sim.step(Vec::new());
        let after = sim.movement_queue_len(first_hop.0, first_hop.1);
        // The vehicle either queued or was served the same slot it arrived;
        // in both cases it became visible.
        assert!(before == 0 && (after <= 1), "before={before} after={after}");
    }

    #[test]
    fn full_entry_road_backlogs_arrivals() {
        let g = GridNetwork::new(GridSpec {
            capacity: 3,
            ..GridSpec::with_size(1, 1)
        });
        let mut sim = QueueSim::new(
            g.topology().clone(),
            // Fixed-time keeps cycling regardless of demand.
            vec![Box::new(FixedTime::new(Ticks::new(5), Ticks::new(4)))],
            QueueSimConfig::default(),
        );
        // Push 5 vehicles into a capacity-3 entry road in one slot.
        let arrivals: Vec<Arrival> = (0..5)
            .map(|i| one_arrival(&g, 0, i, RouteChoice::Straight))
            .collect();
        let report = sim.step(arrivals);
        assert_eq!(report.injected, 3);
        assert_eq!(sim.backlog_len(), 2);
        assert_eq!(sim.road_occupancy(g.entries()[0].road), 3);
        // As the junction serves, the backlog drains.
        for _ in 0..200 {
            sim.step(Vec::new());
        }
        assert_eq!(sim.backlog_len(), 0);
        assert_eq!(sim.ledger().completed(), 5);
    }

    /// A degenerate controller pinned to one phase, used to create
    /// blocking scenarios.
    struct HoldPhase(utilbp_core::PhaseId);

    impl SignalController for HoldPhase {
        fn decide(
            &mut self,
            _view: &utilbp_core::IntersectionView<'_>,
            _now: Tick,
        ) -> PhaseDecision {
            PhaseDecision::Control(self.0)
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "hold-phase"
        }
    }

    #[test]
    fn capacity_blocks_service_into_full_roads() {
        // 1×2 grid: saturate the internal road between the two
        // intersections and verify the upstream junction stops serving into
        // it.
        let g = GridNetwork::new(GridSpec {
            capacity: 2,
            ..GridSpec::with_size(1, 2)
        });
        let n = g.topology().num_intersections();
        let mut sim = QueueSim::new(
            g.topology().clone(),
            (0..n)
                .map(|i| -> Box<dyn SignalController> {
                    if i == 0 {
                        Box::new(UtilBp::paper())
                    } else {
                        // Phase c2 (N/S rights) never serves west-straight,
                        // so the downstream junction never drains.
                        Box::new(HoldPhase(standard::phase_id(2)))
                    }
                })
                .collect(),
            QueueSimConfig::default(),
        );

        // Feed a stream of west-entry straight-through vehicles.
        let entry_idx = g
            .entries()
            .iter()
            .position(|e| e.side == Approach::West && e.slot == 0)
            .unwrap();
        let mut next_id = 0u64;
        for k in 0..300u64 {
            let arrivals = if k % 2 == 0 {
                let a = one_arrival(&g, entry_idx, next_id, RouteChoice::Straight);
                next_id += 1;
                vec![a]
            } else {
                Vec::new()
            };
            sim.step(arrivals);
        }
        // The internal west→east road between I0 and I1:
        let i0 = g.intersection_at(utilbp_netgen::GridPos::new(0, 0));
        let internal = g
            .topology()
            .intersection(i0)
            .outgoing_road(Approach::East.outgoing());
        assert_eq!(
            sim.road_occupancy(internal),
            2,
            "internal road pinned at its capacity"
        );
        // Nothing ever exits (downstream holds a conflicting phase).
        assert_eq!(sim.ledger().completed(), 0);
    }

    #[test]
    fn work_conservation_of_utilbp_on_live_network() {
        // Section IV Q2: whenever some intersection has a servable vehicle
        // and is not in transition, the network serves at least one vehicle
        // in that mini-slot. Checked on the paper-exact substrate
        // (instant transfers), where the controller's observation equals
        // the physical queue state at decision time.
        let g = grid();
        let mut sim = QueueSim::new(
            g.topology().clone(),
            controllers_util(g.topology().num_intersections()),
            QueueSimConfig::paper_exact(),
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(1200))),
            11,
        );
        let mut exercised = 0u32;
        for k in 0..1200u64 {
            // Check servability *before* the step serves.
            let servable: Vec<bool> = g
                .topology()
                .intersection_ids()
                .map(|i| {
                    let obs = sim.observe(i);
                    let layout = g.topology().intersection(i).layout();
                    let view = utilbp_core::IntersectionView::new(layout, &obs).unwrap();
                    layout.link_ids().any(|l| view.link_servable(l))
                })
                .collect();
            let report = sim.step(demand.poll(&g, Tick::new(k)));
            let any_active_servable = g
                .topology()
                .intersection_ids()
                .any(|i| servable[i.index()] && !report.decisions[i.index()].is_transition());
            if any_active_servable {
                exercised += 1;
                assert!(
                    report.served > 0,
                    "tick {k}: servable intersection under a control phase served nobody"
                );
            }
        }
        assert!(exercised > 100, "the invariant must actually be exercised");
    }

    #[test]
    fn utilbp_outperforms_fixed_time_on_pattern_i() {
        let g = grid();
        let horizon = 1800u64;
        let run = |controllers: Vec<Box<dyn SignalController>>| -> f64 {
            let mut sim =
                QueueSim::new(g.topology().clone(), controllers, QueueSimConfig::default());
            let mut demand = DemandGenerator::new(
                &g,
                DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(horizon))),
                99,
            );
            for k in 0..horizon {
                let arrivals = demand.poll(&g, Tick::new(k));
                sim.step(arrivals);
            }
            sim.mean_waiting_including_active()
        };
        let n = g.topology().num_intersections();
        let util = run(controllers_util(n));
        let fixed = run((0..n)
            .map(|_| {
                Box::new(FixedTime::new(Ticks::new(20), Ticks::new(4))) as Box<dyn SignalController>
            })
            .collect());
        assert!(
            util < fixed,
            "UTIL-BP ({util:.1}) must beat fixed-time ({fixed:.1})"
        );
    }

    #[test]
    fn deterministic_given_seed() {
        let g = grid();
        let run = || -> (u64, f64) {
            let mut sim = sim_with_util(&g);
            let mut demand = DemandGenerator::new(
                &g,
                DemandConfig::new(DemandSchedule::constant(Pattern::III, Ticks::new(600))),
                1234,
            );
            for k in 0..600 {
                let arrivals = demand.poll(&g, Tick::new(k));
                sim.step(arrivals);
            }
            (sim.total_served(), sim.mean_waiting_including_active())
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn observation_matches_internal_state() {
        let g = grid();
        let mut sim = sim_with_util(&g);
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(300))),
            5,
        );
        for k in 0..300 {
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
        }
        for i in g.topology().intersection_ids() {
            let obs = sim.observe(i);
            let node = g.topology().intersection(i);
            for link in node.layout().link_ids() {
                assert_eq!(obs.movement(link), sim.movement_queue_len(i, link));
                assert!(
                    sim.movement_queue_len(i, link) <= sim.movement_count(i, link),
                    "queued is a subset of present"
                );
            }
            for out in node.layout().outgoing_ids() {
                let road = node.outgoing_road(out);
                assert_eq!(obs.outgoing(out), sim.road_queue(road));
                assert!(
                    sim.road_queue(road) <= sim.road_occupancy(road),
                    "queued is a subset of occupancy"
                );
            }
            // Eq. 1: incoming (queued) totals are movement-queue sums.
            for arm in node.layout().incoming_ids() {
                let total: u32 = node
                    .layout()
                    .links_from(arm)
                    .iter()
                    .map(|&l| sim.movement_queue_len(i, l))
                    .sum();
                assert_eq!(total, sim.incoming_queue_len(i, arm));
            }
        }
    }

    #[test]
    fn instant_transit_matches_eq2_timing() {
        // Under the paper-exact model, a vehicle served at tick k is in
        // the downstream queue at k+1.
        let g = GridNetwork::new(GridSpec::with_size(1, 2));
        let n = g.topology().num_intersections();
        let mut sim = QueueSim::new(
            g.topology().clone(),
            (0..n)
                .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
                .collect(),
            QueueSimConfig::paper_exact(),
        );
        let entry_idx = g
            .entries()
            .iter()
            .position(|e| e.side == Approach::West && e.slot == 0)
            .unwrap();
        sim.step(vec![one_arrival(&g, entry_idx, 0, RouteChoice::Straight)]);
        let i0 = g.intersection_at(utilbp_netgen::GridPos::new(0, 0));
        let i1 = g.intersection_at(utilbp_netgen::GridPos::new(0, 1));
        let link = utilbp_core::standard::link_id(Approach::West, Turn::Straight);
        // Injected at tick 0 → queued at I0 at tick 1.
        sim.step(Vec::new());
        assert_eq!(sim.movement_queue_len(i0, link), 1, "queued at I0 at k=1");
        // UTIL-BP switches to the serving phase through one 4-tick amber;
        // the slot after service, the vehicle is queued at I1 (Eq. 2
        // timing: served during (k, k+1) → counted in q(k+1)).
        let mut served_at = None;
        for k in 2..12u64 {
            sim.step(Vec::new());
            if sim.movement_queue_len(i0, link) == 0 && served_at.is_none() {
                served_at = Some(k);
            }
            if let Some(s) = served_at {
                if k == s + 1 {
                    assert_eq!(
                        sim.movement_queue_len(i1, link),
                        1,
                        "instant transit must reach I1's queue one slot after service"
                    );
                    return;
                }
            }
        }
        panic!("vehicle was never served at I0");
    }

    #[test]
    fn vehicle_conservation_invariant() {
        // injected = completed + on-roads + backlog at all times.
        let g = grid();
        let mut sim = sim_with_util(&g);
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::IV, Ticks::new(900))),
            21,
        );
        let mut injected_total = 0u64;
        for k in 0..900 {
            let arrivals = demand.poll(&g, Tick::new(k));
            injected_total += arrivals.len() as u64;
            sim.step(arrivals);
            let on_roads: u64 = g
                .topology()
                .road_ids()
                .map(|r| sim.road_occupancy(r) as u64)
                .sum();
            let backlog = sim.backlog_len() as u64;
            let completed = sim.ledger().completed();
            assert_eq!(
                injected_total,
                on_roads + backlog + completed,
                "conservation at tick {k}"
            );
        }
    }

    #[test]
    fn capbp_runs_on_the_network() {
        let g = grid();
        let n = g.topology().num_intersections();
        let mut sim = QueueSim::new(
            g.topology().clone(),
            (0..n)
                .map(|_| Box::new(CapBp::new(Ticks::new(16))) as Box<dyn SignalController>)
                .collect(),
            QueueSimConfig::default(),
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(900))),
            3,
        );
        for k in 0..900 {
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
        }
        assert!(sim.ledger().completed() > 100);
    }

    #[test]
    fn run_empty_advances_time() {
        let g = grid();
        let mut sim = sim_with_util(&g);
        sim.run_empty(Ticks::new(50));
        assert_eq!(sim.now(), Tick::new(50));
    }

    #[test]
    #[should_panic(expected = "one controller per intersection")]
    fn rejects_wrong_controller_count() {
        let g = grid();
        let _ = QueueSim::new(
            g.topology().clone(),
            controllers_util(3),
            QueueSimConfig::default(),
        );
    }

    #[test]
    fn turning_route_is_followed() {
        let g = grid();
        let mut sim = sim_with_util(&g);
        // Enter from north col 0, turn left at row 1 → exits east.
        let arrival = one_arrival(
            &g,
            0,
            0,
            RouteChoice::TurnAt {
                turn: Turn::Left,
                path_index: 1,
            },
        );
        let route_len = arrival.route.len();
        sim.step(vec![arrival]);
        for _ in 0..600 {
            sim.step(Vec::new());
        }
        assert_eq!(sim.ledger().completed(), 1);
        assert_eq!(sim.total_served() as usize, route_len);
    }

    #[test]
    fn closed_entry_road_backlogs_arrivals_until_reopened() {
        let g = grid();
        let mut sim = sim_with_util(&g);
        let entry_road = g.entries()[0].road;
        sim.set_road_closed(entry_road, true);
        assert!(sim.road_closed(entry_road));
        for id in 0..5 {
            sim.step(vec![one_arrival(&g, 0, id, RouteChoice::Straight)]);
        }
        assert_eq!(sim.backlog_len(), 5, "closed entry admits nobody");
        assert_eq!(sim.road_occupancy(entry_road), 0);
        sim.set_road_closed(entry_road, false);
        sim.step(Vec::new());
        assert_eq!(sim.backlog_len(), 0, "reopening drains the backlog");
        assert_eq!(sim.road_occupancy(entry_road), 5);
    }

    #[test]
    fn closed_internal_road_blocks_service_onto_it() {
        let g = grid();
        let mut sim = sim_with_util(&g);
        // The internal road a north-entry straight route takes out of its
        // first intersection.
        let first = g.entries()[0].intersection;
        let node = g.topology().intersection(first);
        let internal = node.outgoing_road(Turn::Straight.exit_from(Approach::North).outgoing());
        assert!(g.topology().road(internal).is_internal());
        sim.set_road_closed(internal, true);
        for id in 0..4 {
            sim.step(vec![one_arrival(&g, 0, id, RouteChoice::Straight)]);
        }
        for _ in 0..300 {
            sim.step(Vec::new());
        }
        // Nothing ever crossed onto the closed road; the queue persists.
        assert_eq!(sim.road_occupancy(internal), 0);
        assert_eq!(sim.ledger().completed(), 0);
        let link = standard::link_id(Approach::North, Turn::Straight);
        assert_eq!(sim.movement_queue_len(first, link), 4);
        // Reopen: traffic flows again and the journeys finish.
        sim.set_road_closed(internal, false);
        for _ in 0..600 {
            sim.step(Vec::new());
        }
        assert_eq!(sim.ledger().completed(), 4);
    }
}
