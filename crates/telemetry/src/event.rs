//! Typed, tick-stamped events and the recorders that capture them.

use utilbp_core::Tick;

/// What triggered a routing-response pass.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReplanTrigger {
    /// A road closed: journeys headed into it were offered a detour.
    Closure,
    /// A road reopened: diverted vehicles were offered their route back.
    Reopen,
    /// The periodic congestion monitor diverted journeys headed into
    /// congested roads.
    Congestion,
    /// The congested set emptied: congestion-diverted vehicles were
    /// offered their route back.
    CongestionCleared,
}

impl ReplanTrigger {
    /// The trigger's canonical name (what the JSONL sink records).
    pub fn name(self) -> &'static str {
        match self {
            ReplanTrigger::Closure => "closure",
            ReplanTrigger::Reopen => "reopen",
            ReplanTrigger::Congestion => "congestion",
            ReplanTrigger::CongestionCleared => "congestion_cleared",
        }
    }
}

/// One observable occurrence in a run (see the crate docs for the full
/// taxonomy). Road and intersection identities are raw indices so the
/// telemetry plane sits below the network layer in the dependency graph.
#[derive(Debug, Clone, PartialEq)]
pub enum EventKind {
    /// An intersection's signal decision changed. `phase` is the
    /// decision's trace value: 0 for a transition (amber / all-red),
    /// `1..=|C|` for a control phase.
    PhaseChange {
        /// Intersection index.
        intersection: u32,
        /// The new decision's trace value.
        phase: u32,
    },
    /// A road closed to entering traffic.
    RoadClosed {
        /// Road index.
        road: u32,
    },
    /// A closed road reopened.
    RoadReopened {
        /// Road index.
        road: u32,
    },
    /// The demand-surge multiplier changed (1 restores the baseline).
    Surge {
        /// The new multiplier.
        factor: f64,
    },
    /// The sensor-fault window opened (`active: true`) or shut.
    SensorFaultWindow {
        /// Whether faults are injected from this tick on.
        active: bool,
    },
    /// The actuation-fault window opened or shut.
    ActuationFaultWindow {
        /// Whether faults are injected from this tick on.
        active: bool,
    },
    /// An intersection's watchdog handed control to the fixed-time
    /// fallback.
    WatchdogActivated {
        /// Intersection index.
        intersection: u32,
    },
    /// An intersection's watchdog handed control back to the adaptive
    /// controller after a full plausible streak.
    WatchdogRecovered {
        /// Intersection index.
        intersection: u32,
    },
    /// A routing-response pass ran.
    Replan {
        /// What triggered the pass.
        trigger: ReplanTrigger,
        /// Vehicles diverted onto a detour by this pass.
        diverted: u64,
        /// Vehicles restored onto their dominating route by this pass.
        restored: u64,
    },
    /// An observe-mode invariant guard recorded a violation instead of
    /// panicking.
    GuardViolation {
        /// The violated check (`conservation`, `sensors`, …).
        check: String,
        /// The guard's diagnostic.
        message: String,
    },
    /// A durable checkpoint of the whole run was captured.
    Checkpoint {
        /// Snapshot size in bytes.
        bytes: u64,
        /// CRC-32 of the snapshot bytes (an end-to-end identity check:
        /// the restore drill logs the same value it verified).
        crc: u32,
    },
    /// The run was restored from a checkpoint (a recovery drill or a
    /// crash-recovery restart — not recorded for transparent resumes).
    Restore {
        /// Whether recovery had to fall back past a corrupted
        /// checkpoint to an older valid one.
        fallback: bool,
    },
}

impl EventKind {
    /// The kind's canonical snake-case name (the JSONL `kind` field).
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::PhaseChange { .. } => "phase_change",
            EventKind::RoadClosed { .. } => "road_closed",
            EventKind::RoadReopened { .. } => "road_reopened",
            EventKind::Surge { .. } => "surge",
            EventKind::SensorFaultWindow { .. } => "sensor_fault_window",
            EventKind::ActuationFaultWindow { .. } => "actuation_fault_window",
            EventKind::WatchdogActivated { .. } => "watchdog_activated",
            EventKind::WatchdogRecovered { .. } => "watchdog_recovered",
            EventKind::Replan { .. } => "replan",
            EventKind::GuardViolation { .. } => "guard_violation",
            EventKind::Checkpoint { .. } => "checkpoint",
            EventKind::Restore { .. } => "restore",
        }
    }
}

/// A tick-stamped [`EventKind`].
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// The tick the event was observed at.
    pub tick: Tick,
    /// What happened.
    pub kind: EventKind,
}

/// Escapes a string for inclusion in the hand-rolled JSON output.
fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

impl Event {
    /// The event as one compact JSON object (keys in fixed order, so
    /// equal event streams render to byte-identical text).
    pub fn to_json(&self) -> String {
        let tick = self.tick.index();
        let kind = self.kind.name();
        match &self.kind {
            EventKind::PhaseChange {
                intersection,
                phase,
            } => format!(
                "{{\"tick\":{tick},\"kind\":\"{kind}\",\"intersection\":{intersection},\"phase\":{phase}}}"
            ),
            EventKind::RoadClosed { road } | EventKind::RoadReopened { road } => {
                format!("{{\"tick\":{tick},\"kind\":\"{kind}\",\"road\":{road}}}")
            }
            EventKind::Surge { factor } => {
                format!("{{\"tick\":{tick},\"kind\":\"{kind}\",\"factor\":{factor}}}")
            }
            EventKind::SensorFaultWindow { active }
            | EventKind::ActuationFaultWindow { active } => {
                format!("{{\"tick\":{tick},\"kind\":\"{kind}\",\"active\":{active}}}")
            }
            EventKind::WatchdogActivated { intersection }
            | EventKind::WatchdogRecovered { intersection } => {
                format!("{{\"tick\":{tick},\"kind\":\"{kind}\",\"intersection\":{intersection}}}")
            }
            EventKind::Replan {
                trigger,
                diverted,
                restored,
            } => format!(
                "{{\"tick\":{tick},\"kind\":\"{kind}\",\"trigger\":\"{}\",\"diverted\":{diverted},\"restored\":{restored}}}",
                trigger.name()
            ),
            EventKind::GuardViolation { check, message } => format!(
                "{{\"tick\":{tick},\"kind\":\"{kind}\",\"check\":\"{}\",\"message\":\"{}\"}}",
                escape_json(check),
                escape_json(message)
            ),
            EventKind::Checkpoint { bytes, crc } => {
                format!("{{\"tick\":{tick},\"kind\":\"{kind}\",\"bytes\":{bytes},\"crc\":{crc}}}")
            }
            EventKind::Restore { fallback } => {
                format!("{{\"tick\":{tick},\"kind\":\"{kind}\",\"fallback\":{fallback}}}")
            }
        }
    }

    /// Serializes the event into a durable word stream.
    pub fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push(self.tick.index());
        match &self.kind {
            EventKind::PhaseChange {
                intersection,
                phase,
            } => {
                writer.push(0);
                writer.push_u32(*intersection);
                writer.push_u32(*phase);
            }
            EventKind::RoadClosed { road } => {
                writer.push(1);
                writer.push_u32(*road);
            }
            EventKind::RoadReopened { road } => {
                writer.push(2);
                writer.push_u32(*road);
            }
            EventKind::Surge { factor } => {
                writer.push(3);
                writer.push_f64(*factor);
            }
            EventKind::SensorFaultWindow { active } => {
                writer.push(4);
                writer.push_bool(*active);
            }
            EventKind::ActuationFaultWindow { active } => {
                writer.push(5);
                writer.push_bool(*active);
            }
            EventKind::WatchdogActivated { intersection } => {
                writer.push(6);
                writer.push_u32(*intersection);
            }
            EventKind::WatchdogRecovered { intersection } => {
                writer.push(7);
                writer.push_u32(*intersection);
            }
            EventKind::Replan {
                trigger,
                diverted,
                restored,
            } => {
                writer.push(8);
                writer.push(match trigger {
                    ReplanTrigger::Closure => 0,
                    ReplanTrigger::Reopen => 1,
                    ReplanTrigger::Congestion => 2,
                    ReplanTrigger::CongestionCleared => 3,
                });
                writer.push(*diverted);
                writer.push(*restored);
            }
            EventKind::GuardViolation { check, message } => {
                writer.push(9);
                writer.push_str(check);
                writer.push_str(message);
            }
            EventKind::Checkpoint { bytes, crc } => {
                writer.push(10);
                writer.push(*bytes);
                writer.push_u32(*crc);
            }
            EventKind::Restore { fallback } => {
                writer.push(11);
                writer.push_bool(*fallback);
            }
        }
    }

    /// Deserializes one event from a durable word stream.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`](utilbp_core::state::StateError) on a
    /// truncated stream or an unknown kind/trigger tag.
    pub fn load_state(
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<Self, utilbp_core::state::StateError> {
        use utilbp_core::state::StateError;
        let tick = Tick::new(reader.take()?);
        let kind = match reader.take()? {
            0 => EventKind::PhaseChange {
                intersection: reader.take_u32()?,
                phase: reader.take_u32()?,
            },
            1 => EventKind::RoadClosed {
                road: reader.take_u32()?,
            },
            2 => EventKind::RoadReopened {
                road: reader.take_u32()?,
            },
            3 => EventKind::Surge {
                factor: reader.take_f64()?,
            },
            4 => EventKind::SensorFaultWindow {
                active: reader.take_bool()?,
            },
            5 => EventKind::ActuationFaultWindow {
                active: reader.take_bool()?,
            },
            6 => EventKind::WatchdogActivated {
                intersection: reader.take_u32()?,
            },
            7 => EventKind::WatchdogRecovered {
                intersection: reader.take_u32()?,
            },
            8 => EventKind::Replan {
                trigger: match reader.take()? {
                    0 => ReplanTrigger::Closure,
                    1 => ReplanTrigger::Reopen,
                    2 => ReplanTrigger::Congestion,
                    3 => ReplanTrigger::CongestionCleared,
                    word => {
                        return Err(StateError::Invalid {
                            what: "replan trigger tag",
                            word,
                        })
                    }
                },
                diverted: reader.take()?,
                restored: reader.take()?,
            },
            9 => EventKind::GuardViolation {
                check: reader.take_string()?,
                message: reader.take_string()?,
            },
            10 => EventKind::Checkpoint {
                bytes: reader.take()?,
                crc: reader.take_u32()?,
            },
            11 => EventKind::Restore {
                fallback: reader.take_bool()?,
            },
            word => {
                return Err(StateError::Invalid {
                    what: "event kind tag",
                    word,
                })
            }
        };
        Ok(Event { tick, kind })
    }
}

/// An event sink. The contract that keeps recording zero-cost when off:
/// emitters must gate event *construction* on [`enabled`](Self::enabled)
/// (cache it — it never changes over a recorder's lifetime), so a
/// disabled recorder costs one boolean test per emission site and no
/// allocation.
pub trait Recorder {
    /// Whether this recorder wants events at all.
    fn enabled(&self) -> bool;

    /// Accepts one event. Events arrive in tick order; ties preserve
    /// emission order.
    fn record(&mut self, event: Event);

    /// The concrete ring buffer behind this recorder, when it is one —
    /// sinks that retain events expose themselves here so drivers can
    /// read the stream back through the trait object.
    fn flight(&self) -> Option<&FlightRecorder> {
        None
    }
}

/// The recording-off recorder: rejects every event without looking at
/// it. [`Recorder::enabled`] is `false`, so well-behaved emitters never
/// even construct the event.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct NullRecorder;

impl Recorder for NullRecorder {
    fn enabled(&self) -> bool {
        false
    }

    fn record(&mut self, _event: Event) {}
}

/// A bounded ring buffer of events: when full, the **oldest** event is
/// dropped (and counted), so the recorder keeps the most recent history
/// — flight-recorder semantics. Eviction depends only on the event
/// stream itself, so two identical runs drop identical events and
/// [`to_jsonl`](Self::to_jsonl) stays byte-deterministic.
///
/// # Examples
///
/// ```
/// use utilbp_core::Tick;
/// use utilbp_telemetry::{Event, EventKind, FlightRecorder, Recorder};
///
/// let mut rec = FlightRecorder::new(2);
/// for k in 0..3 {
///     rec.record(Event {
///         tick: Tick::new(k),
///         kind: EventKind::RoadClosed { road: 0 },
///     });
/// }
/// assert_eq!(rec.len(), 2);
/// assert_eq!(rec.dropped(), 1);
/// assert_eq!(rec.events().next().unwrap().tick, Tick::new(1));
/// ```
#[derive(Debug, Clone)]
pub struct FlightRecorder {
    buffer: std::collections::VecDeque<Event>,
    capacity: usize,
    recorded: u64,
    dropped: u64,
}

impl FlightRecorder {
    /// A recorder holding at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is 0.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "flight recorder capacity must be at least 1");
        FlightRecorder {
            buffer: std::collections::VecDeque::with_capacity(capacity),
            capacity,
            recorded: 0,
            dropped: 0,
        }
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> + '_ {
        self.buffer.iter()
    }

    /// Retained event count (≤ capacity).
    pub fn len(&self) -> usize {
        self.buffer.len()
    }

    /// Whether nothing is retained.
    pub fn is_empty(&self) -> bool {
        self.buffer.is_empty()
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events accepted over the recorder's lifetime (retained or not).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// Events evicted because the buffer was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Serializes the buffered stream and lifetime counters (capacity
    /// is construction-time configuration and is *not* saved — restore
    /// into a recorder built with the run's configured capacity).
    pub fn save_state(&self, writer: &mut utilbp_core::state::StateWriter) {
        writer.push(self.recorded);
        writer.push(self.dropped);
        writer.push_usize(self.buffer.len());
        for event in &self.buffer {
            event.save_state(writer);
        }
    }

    /// Restores the buffered stream and lifetime counters saved by
    /// [`save_state`](Self::save_state), replacing this recorder's
    /// current contents.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`](utilbp_core::state::StateError) on a
    /// truncated or corrupt stream, or when the saved buffer exceeds
    /// this recorder's capacity (the run was recorded with a larger
    /// ring, so restoring here would silently drop history).
    pub fn load_state(
        &mut self,
        reader: &mut utilbp_core::state::StateReader<'_>,
    ) -> Result<(), utilbp_core::state::StateError> {
        let recorded = reader.take()?;
        let dropped = reader.take()?;
        let len = reader.take_usize()?;
        if len > self.capacity {
            return Err(utilbp_core::state::StateError::Invalid {
                what: "flight recorder buffer exceeds capacity",
                word: len as u64,
            });
        }
        self.buffer.clear();
        for _ in 0..len {
            self.buffer.push_back(Event::load_state(reader)?);
        }
        self.recorded = recorded;
        self.dropped = dropped;
        Ok(())
    }

    /// The retained stream as JSON Lines: one object per event, oldest
    /// first, `\n`-terminated. Byte-deterministic for equal streams.
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for event in &self.buffer {
            out.push_str(&event.to_json());
            out.push('\n');
        }
        out
    }
}

impl Recorder for FlightRecorder {
    fn enabled(&self) -> bool {
        true
    }

    fn record(&mut self, event: Event) {
        if self.buffer.len() == self.capacity {
            self.buffer.pop_front();
            self.dropped += 1;
        }
        self.buffer.push_back(event);
        self.recorded += 1;
    }

    fn flight(&self) -> Option<&FlightRecorder> {
        Some(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tick: u64, kind: EventKind) -> Event {
        Event {
            tick: Tick::new(tick),
            kind,
        }
    }

    #[test]
    fn jsonl_renders_fixed_key_order() {
        let mut rec = FlightRecorder::new(16);
        rec.record(ev(
            3,
            EventKind::PhaseChange {
                intersection: 4,
                phase: 2,
            },
        ));
        rec.record(ev(5, EventKind::SensorFaultWindow { active: true }));
        rec.record(ev(
            7,
            EventKind::Replan {
                trigger: ReplanTrigger::Closure,
                diverted: 12,
                restored: 0,
            },
        ));
        assert_eq!(
            rec.to_jsonl(),
            "{\"tick\":3,\"kind\":\"phase_change\",\"intersection\":4,\"phase\":2}\n\
             {\"tick\":5,\"kind\":\"sensor_fault_window\",\"active\":true}\n\
             {\"tick\":7,\"kind\":\"replan\",\"trigger\":\"closure\",\"diverted\":12,\"restored\":0}\n"
        );
    }

    #[test]
    fn guard_violation_messages_are_escaped() {
        let event = ev(
            1,
            EventKind::GuardViolation {
                check: "conservation".to_string(),
                message: "say \"hi\"\nback\\slash".to_string(),
            },
        );
        assert_eq!(
            event.to_json(),
            "{\"tick\":1,\"kind\":\"guard_violation\",\"check\":\"conservation\",\
             \"message\":\"say \\\"hi\\\"\\nback\\\\slash\"}"
        );
    }

    #[test]
    fn ring_buffer_keeps_the_newest_events() {
        let mut rec = FlightRecorder::new(3);
        for k in 0..10 {
            rec.record(ev(k, EventKind::RoadClosed { road: k as u32 }));
        }
        assert_eq!(rec.len(), 3);
        assert_eq!(rec.recorded(), 10);
        assert_eq!(rec.dropped(), 7);
        let ticks: Vec<u64> = rec.events().map(|e| e.tick.index()).collect();
        assert_eq!(ticks, [7, 8, 9]);
    }

    #[test]
    fn null_recorder_reports_disabled() {
        let mut null = NullRecorder;
        assert!(!null.enabled());
        null.record(ev(0, EventKind::Surge { factor: 2.0 }));
        assert!(null.flight().is_none());
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_is_rejected() {
        let _ = FlightRecorder::new(0);
    }
}
