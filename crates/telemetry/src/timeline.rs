//! A diffable plain-text timeline rendered from an event stream.

use crate::event::{Event, EventKind};

/// Renders `events` (tick-ordered, as a [`FlightRecorder`] retains
/// them) as a plain-text timeline over `horizon` ticks, bucketed into
/// at most `width` columns.
///
/// The first lane aggregates disruptions; one lane per intersection
/// follows. Per bucket, each lane shows the highest-priority symbol:
///
/// - disruption lane: `!` guard violation > `R` replan pass > `C` a
///   road is closed > `S` sensor-fault window open > `A`
///   actuation-fault window open > `.` quiet;
/// - intersection lane: `!` fallback activation in this bucket > `x`
///   degraded (fixed-time fallback in control) at bucket end > the
///   phase digit at bucket end (`-` = transition, `#` = phase above 9,
///   blank = no decision recorded yet).
///
/// The output is pure text derived only from the events, so identical
/// streams render byte-identically — timelines are diffable artifacts.
///
/// [`FlightRecorder`]: crate::FlightRecorder
pub fn render_timeline(
    events: &[Event],
    intersections: usize,
    horizon: u64,
    width: usize,
) -> String {
    let width = width.max(1);
    let bucket_ticks = horizon.max(1).div_ceil(width as u64).max(1);
    let cols = (horizon.max(1).div_ceil(bucket_ticks) as usize).max(1);

    // Persistent state carried across buckets.
    let mut closed_roads: Vec<u32> = Vec::new();
    let mut sensor_window = false;
    let mut actuation_window = false;
    let mut phase: Vec<Option<u32>> = vec![None; intersections];
    let mut degraded = vec![false; intersections];

    let mut disruption_row = String::with_capacity(cols);
    let mut lane_rows: Vec<String> = vec![String::with_capacity(cols); intersections];

    let mut next = 0usize;
    for col in 0..cols {
        let bucket_end = (col as u64 + 1) * bucket_ticks;
        // Flags that only live for this bucket.
        let mut guard_hit = false;
        let mut replan_hit = false;
        let mut restore_hit = false;
        let mut checkpoint_hit = false;
        let mut activation = vec![false; intersections];

        while next < events.len() && events[next].tick.index() < bucket_end {
            match &events[next].kind {
                EventKind::PhaseChange {
                    intersection,
                    phase: value,
                } => {
                    if let Some(slot) = phase.get_mut(*intersection as usize) {
                        *slot = Some(*value);
                    }
                }
                EventKind::RoadClosed { road } => {
                    if !closed_roads.contains(road) {
                        closed_roads.push(*road);
                    }
                }
                EventKind::RoadReopened { road } => {
                    closed_roads.retain(|r| r != road);
                }
                EventKind::Surge { .. } => {}
                EventKind::SensorFaultWindow { active } => sensor_window = *active,
                EventKind::ActuationFaultWindow { active } => actuation_window = *active,
                EventKind::WatchdogActivated { intersection } => {
                    let i = *intersection as usize;
                    if i < intersections {
                        activation[i] = true;
                        degraded[i] = true;
                    }
                }
                EventKind::WatchdogRecovered { intersection } => {
                    if let Some(slot) = degraded.get_mut(*intersection as usize) {
                        *slot = false;
                    }
                }
                EventKind::Replan { .. } => replan_hit = true,
                EventKind::GuardViolation { .. } => guard_hit = true,
                EventKind::Checkpoint { .. } => checkpoint_hit = true,
                EventKind::Restore { .. } => restore_hit = true,
            }
            next += 1;
        }

        disruption_row.push(if guard_hit {
            '!'
        } else if restore_hit {
            '^'
        } else if replan_hit {
            'R'
        } else if !closed_roads.is_empty() {
            'C'
        } else if sensor_window {
            'S'
        } else if actuation_window {
            'A'
        } else if checkpoint_hit {
            'o'
        } else {
            '.'
        });

        for (i, row) in lane_rows.iter_mut().enumerate() {
            row.push(if activation[i] {
                '!'
            } else if degraded[i] {
                'x'
            } else {
                match phase[i] {
                    None => ' ',
                    Some(0) => '-',
                    Some(p @ 1..=9) => char::from(b'0' + p as u8),
                    Some(_) => '#',
                }
            });
        }
    }

    let label_width = format!("i{}", intersections.saturating_sub(1))
        .len()
        .max("faults".len());
    let mut out = String::new();
    out.push_str(&format!(
        "ticks 0..{horizon}, 1 column = {bucket_ticks} tick(s)\n"
    ));
    out.push_str(&format!("{:<label_width$} |{disruption_row}|\n", "faults"));
    for (i, row) in lane_rows.iter().enumerate() {
        out.push_str(&format!("{:<label_width$} |{row}|\n", format!("i{i}")));
    }
    out.push_str(
        "legend: faults lane  ! guard violation  ^ restore  R replan  C closure  \
         S sensor fault  A actuation fault  o checkpoint  . quiet\n",
    );
    out.push_str(
        "        phase lanes  digit = control phase  - transition  x degraded  \
         ! fallback activation\n",
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ReplanTrigger;
    use utilbp_core::Tick;

    fn ev(tick: u64, kind: EventKind) -> Event {
        Event {
            tick: Tick::new(tick),
            kind,
        }
    }

    #[test]
    fn phases_degradation_and_faults_render_in_their_lanes() {
        let events = vec![
            ev(
                0,
                EventKind::PhaseChange {
                    intersection: 0,
                    phase: 1,
                },
            ),
            ev(
                0,
                EventKind::PhaseChange {
                    intersection: 1,
                    phase: 2,
                },
            ),
            ev(20, EventKind::SensorFaultWindow { active: true }),
            ev(25, EventKind::WatchdogActivated { intersection: 1 }),
            ev(50, EventKind::SensorFaultWindow { active: false }),
            ev(55, EventKind::WatchdogRecovered { intersection: 1 }),
            ev(
                55,
                EventKind::PhaseChange {
                    intersection: 1,
                    phase: 3,
                },
            ),
        ];
        let rendered = render_timeline(&events, 2, 80, 8);
        let lines: Vec<&str> = rendered.lines().collect();
        assert_eq!(lines[1], "faults |..SSS...|");
        assert_eq!(lines[2], "i0     |11111111|");
        assert_eq!(lines[3], "i1     |22!xx333|");
    }

    #[test]
    fn disruption_priority_prefers_guard_over_replan_over_closure() {
        let events = vec![
            ev(0, EventKind::RoadClosed { road: 7 }),
            ev(
                10,
                EventKind::Replan {
                    trigger: ReplanTrigger::Closure,
                    diverted: 3,
                    restored: 0,
                },
            ),
            ev(
                20,
                EventKind::GuardViolation {
                    check: "conservation".to_string(),
                    message: "off by one".to_string(),
                },
            ),
            ev(30, EventKind::RoadReopened { road: 7 }),
        ];
        let rendered = render_timeline(&events, 0, 40, 4);
        assert!(rendered.contains("|CR!.|"), "got:\n{rendered}");
    }

    #[test]
    fn empty_stream_renders_quiet_lanes() {
        let rendered = render_timeline(&[], 1, 10, 10);
        assert!(rendered.contains("|..........|"));
        assert!(rendered.contains("i0     |          |"));
    }
}
