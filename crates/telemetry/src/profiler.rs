//! A tick-section profiler: streaming wall-clock statistics for the
//! step pipeline's sections.

use utilbp_metrics::{Histogram, SummaryStats, TextTable};

/// Histogram granularity: 2 µs bins, 256 of them, so percentile
/// resolution is 2 µs up to ~0.5 ms per section per tick (slower laps
/// land in the last bin and still count toward max/mean exactly via
/// the summary stats).
const BIN_WIDTH_US: f64 = 2.0;
const BINS: usize = 256;

/// One attributable section of a simulated tick.
///
/// The first four mirror the microscopic substrate's
/// `PhaseTimings` phases; `Replan` and `Monitor` cover the scenario
/// engine's routing-response and congestion-monitor work around the
/// plant step. The queueing substrate maps its own pipeline onto the
/// same axes (see `utilbp-substrate`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Section {
    /// Controller decisions (sense + decide across intersections).
    Decide,
    /// Vehicle advancement: car-following (microscopic) or phase
    /// service (queueing).
    CarFollowing,
    /// Arrivals landing on the network: transfers and backlog drains.
    Landings,
    /// Waiting-time bookkeeping and demand injection.
    Waiting,
    /// Routing-response passes (closure / reopen / congestion).
    Replan,
    /// Congestion-monitor scans and invariant-guard checks.
    Monitor,
}

impl Section {
    /// Every section, in rendering order.
    pub const ALL: [Section; 6] = [
        Section::Decide,
        Section::CarFollowing,
        Section::Landings,
        Section::Waiting,
        Section::Replan,
        Section::Monitor,
    ];

    /// The section's display name.
    pub fn name(self) -> &'static str {
        match self {
            Section::Decide => "decide",
            Section::CarFollowing => "car-following",
            Section::Landings => "landings",
            Section::Waiting => "waiting",
            Section::Replan => "replan",
            Section::Monitor => "monitor",
        }
    }

    fn index(self) -> usize {
        match self {
            Section::Decide => 0,
            Section::CarFollowing => 1,
            Section::Landings => 2,
            Section::Waiting => 3,
            Section::Replan => 4,
            Section::Monitor => 5,
        }
    }
}

/// Streaming per-[`Section`] wall-clock statistics. Each recorded lap
/// feeds a [`SummaryStats`] (exact mean/min/max) and a [`Histogram`]
/// (percentiles at 2 µs resolution). Laps are recorded in seconds (the
/// unit `Instant::elapsed().as_secs_f64()` hands out) and rendered in
/// microseconds.
///
/// Wall-clock readings are measurements of the run, never inputs to
/// it — profiling cannot perturb simulation results, only add time.
#[derive(Debug, Clone)]
pub struct TickProfiler {
    stats: [SummaryStats; 6],
    histograms: Vec<Histogram>,
}

impl Default for TickProfiler {
    fn default() -> Self {
        Self::new()
    }
}

impl TickProfiler {
    /// An empty profiler.
    pub fn new() -> Self {
        TickProfiler {
            stats: [SummaryStats::new(); 6],
            histograms: (0..6).map(|_| Histogram::new(BIN_WIDTH_US, BINS)).collect(),
        }
    }

    /// Records one lap of `seconds` wall-clock spent in `section`.
    pub fn record(&mut self, section: Section, seconds: f64) {
        let us = seconds * 1e6;
        let i = section.index();
        self.stats[i].record(us);
        self.histograms[i].record(us);
    }

    /// The exact streaming statistics for `section`, in microseconds.
    pub fn stats(&self, section: Section) -> &SummaryStats {
        &self.stats[section.index()]
    }

    /// The percentile histogram for `section`, in microseconds.
    pub fn histogram(&self, section: Section) -> &Histogram {
        &self.histograms[section.index()]
    }

    /// Total recorded wall-clock across all sections, in seconds.
    pub fn total_seconds(&self) -> f64 {
        self.stats
            .iter()
            .map(|s| s.mean() * s.count() as f64)
            .sum::<f64>()
            / 1e6
    }

    /// The profile as a table: one row per section with laps, mean,
    /// p50/p90/p99, max (all µs) and share of total recorded time.
    /// Sections with no laps are omitted.
    pub fn table(&self) -> TextTable {
        let total_us: f64 = self.stats.iter().map(|s| s.mean() * s.count() as f64).sum();
        let mut table = TextTable::new([
            "section", "laps", "mean µs", "p50 µs", "p90 µs", "p99 µs", "max µs", "share",
        ]);
        let pct = |h: &Histogram, p: f64| -> String {
            match h.percentile(p) {
                Some(v) => format!("{v:.1}"),
                None => "-".to_string(),
            }
        };
        for section in Section::ALL {
            let stats = self.stats(section);
            if stats.count() == 0 {
                continue;
            }
            let hist = self.histogram(section);
            let sum = stats.mean() * stats.count() as f64;
            let share = if total_us > 0.0 {
                100.0 * sum / total_us
            } else {
                0.0
            };
            table.push_row([
                section.name().to_string(),
                stats.count().to_string(),
                format!("{:.1}", stats.mean()),
                pct(hist, 50.0),
                pct(hist, 90.0),
                pct(hist, 99.0),
                format!("{:.1}", stats.max().unwrap_or(0.0)),
                format!("{share:.1}%"),
            ]);
        }
        table
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn laps_accumulate_per_section() {
        let mut profiler = TickProfiler::new();
        profiler.record(Section::Decide, 10e-6);
        profiler.record(Section::Decide, 30e-6);
        profiler.record(Section::Replan, 60e-6);
        let decide = profiler.stats(Section::Decide);
        assert_eq!(decide.count(), 2);
        assert!((decide.mean() - 20.0).abs() < 1e-9);
        assert!((profiler.total_seconds() - 100e-6).abs() < 1e-12);
    }

    #[test]
    fn table_omits_empty_sections_and_sums_shares() {
        let mut profiler = TickProfiler::new();
        profiler.record(Section::Decide, 75e-6);
        profiler.record(Section::Monitor, 25e-6);
        let rendered = profiler.table().render();
        assert!(rendered.contains("decide"));
        assert!(rendered.contains("monitor"));
        assert!(!rendered.contains("car-following"));
        assert!(rendered.contains("75.0%"));
        assert!(rendered.contains("25.0%"));
    }

    #[test]
    fn percentiles_come_from_the_histogram() {
        let mut profiler = TickProfiler::new();
        for k in 0..100 {
            profiler.record(Section::Waiting, k as f64 * 1e-6);
        }
        let p50 = profiler
            .histogram(Section::Waiting)
            .percentile(50.0)
            .unwrap();
        assert!((40.0..=60.0).contains(&p50), "p50 was {p50}");
    }
}
