//! # utilbp-telemetry
//!
//! The **flight recorder** of the adaptive back-pressure workspace: a
//! zero-cost-when-off, determinism-preserving observability plane for
//! the substrate stack. The scenario engine (and any other driver)
//! threads three instruments through a run:
//!
//! - a typed **event stream** — [`Event`] / [`EventKind`] — captured by
//!   anything implementing [`Recorder`]: [`FlightRecorder`] keeps a
//!   bounded ring buffer of tick-stamped events, [`NullRecorder`]
//!   compiles to a no-op;
//! - a **gauge registry** — [`GaugeRegistry`] — sampling named counters
//!   (per-intersection queue and peak-movement pressure, per-road
//!   occupancy, backlog depth, congestion-set size) on a configurable
//!   cadence into [`TimeSeries`](utilbp_metrics::TimeSeries);
//! - a **tick-section profiler** — [`TickProfiler`] — folding per-tick
//!   wall-clock laps for the step pipeline's [`Section`]s (decide,
//!   car-following, landings, waiting, replan, monitor) into streaming
//!   [`SummaryStats`](utilbp_metrics::SummaryStats) and
//!   [`Histogram`](utilbp_metrics::Histogram) percentiles.
//!
//! ## Event taxonomy
//!
//! Every event is an [`EventKind`] stamped with the [`Tick`] it was
//! observed at (the tick the engine just simulated):
//!
//! | kind | emitted when |
//! |---|---|
//! | `phase_change` | an intersection's signal decision changes (also once per intersection on the first recorded tick, so timelines know the initial phase) |
//! | `road_closed` / `road_reopened` | a closure event fires / clears |
//! | `surge` | a demand-surge multiplier changes |
//! | `sensor_fault_window` / `actuation_fault_window` | a fault window opens (`active: true`) or shuts |
//! | `watchdog_activated` / `watchdog_recovered` | an intersection's watchdog hands control to / back from the fixed-time fallback |
//! | `replan` | a routing-response pass ran (closure, reopen, congestion, or congestion-clearance trigger), with diverted/restored counts |
//! | `guard_violation` | an observe-mode invariant guard recorded a violation instead of panicking |
//!
//! ## Determinism / passivity contract
//!
//! The recorder is **strictly passive**. Instruments read only
//! deterministic simulation state, draw no randomness, and feed nothing
//! back into the run, so:
//!
//! - with recording **on**, scenario outcomes are bit-identical to
//!   recording-off runs, across `Parallelism::{Serial, Rayon}` and
//!   across repeats — and the event stream itself is byte-deterministic
//!   (same scenario ⇒ byte-identical [`FlightRecorder::to_jsonl`]);
//! - with recording **off** ([`NullRecorder`], the default), the hot
//!   path performs no event construction and no allocation — the
//!   workspace's counting-allocator test bounds the scenario engine's
//!   steady state with the null recorder installed.
//!
//! Wall-clock readings taken by the profiler never influence control
//! flow; they are measurements of the run, not inputs to it.
//!
//! ## Sink formats
//!
//! - [`FlightRecorder::to_jsonl`] — one hand-rolled JSON object per
//!   line (the workspace's offline `serde` shim does not serialize),
//!   e.g. `{"tick":184,"kind":"watchdog_activated","intersection":4}`.
//!   Keys are emitted in a fixed order; string payloads are escaped.
//! - [`render_timeline`] — a diffable plain-text timeline: one lane of
//!   bucketed phase digits per intersection (`x` while degraded, `!` at
//!   a fallback activation), over a shared disruption lane for fault
//!   windows, closures, replans, and guard violations.
//! - [`TickProfiler::table`] — a
//!   [`TextTable`](utilbp_metrics::TextTable) of per-section tick
//!   counts, mean/p50/p90/p99/max microseconds, and time share.
//!
//! The `trace` binary in `utilbp-experiments` composes all three sinks
//! into a scenario replay report; `scenarios`/`chaos` expose the same
//! plane behind `--trace`/`--profile` flags.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod event;
mod gauges;
mod profiler;
mod timeline;

pub use event::{Event, EventKind, FlightRecorder, NullRecorder, Recorder, ReplanTrigger};
pub use gauges::{GaugeId, GaugeRegistry};
pub use profiler::{Section, TickProfiler};
pub use timeline::render_timeline;

pub use utilbp_core::Tick;
