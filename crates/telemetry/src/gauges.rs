//! A registry of named gauges sampled on a fixed cadence into
//! [`TimeSeries`].

use utilbp_core::Tick;
use utilbp_metrics::TimeSeries;

/// Handle to one registered gauge. Cheap to copy; only valid for the
/// registry that issued it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct GaugeId(usize);

/// Named gauges sampled into per-gauge [`TimeSeries`] every `every`
/// ticks. The driver registers gauges up front, then on each tick asks
/// [`due`](Self::due) once and, when it answers `true`, pushes one
/// sample per gauge — so every series shares the same tick axis and
/// rendering them together needs no alignment.
///
/// # Examples
///
/// ```
/// use utilbp_core::Tick;
/// use utilbp_telemetry::GaugeRegistry;
///
/// let mut gauges = GaugeRegistry::new(10);
/// let backlog = gauges.register("backlog");
/// for t in 0..30 {
///     let tick = Tick::new(t);
///     if gauges.due(tick) {
///         gauges.sample(backlog, tick, t as f64);
///     }
/// }
/// assert_eq!(gauges.series()[0].points().len(), 3);
/// ```
#[derive(Debug, Clone)]
pub struct GaugeRegistry {
    every: u64,
    series: Vec<TimeSeries>,
}

impl GaugeRegistry {
    /// A registry sampling every `every` ticks (tick indices divisible
    /// by `every`, including tick 0).
    ///
    /// # Panics
    ///
    /// Panics if `every` is 0.
    pub fn new(every: u64) -> Self {
        assert!(every > 0, "gauge cadence must be at least 1 tick");
        GaugeRegistry {
            every,
            series: Vec::new(),
        }
    }

    /// The sampling cadence in ticks.
    pub fn every(&self) -> u64 {
        self.every
    }

    /// Registers a gauge under `name` and returns its handle.
    pub fn register(&mut self, name: impl Into<String>) -> GaugeId {
        let id = GaugeId(self.series.len());
        self.series.push(TimeSeries::new(name));
        id
    }

    /// Whether `tick` is a sampling tick.
    pub fn due(&self, tick: Tick) -> bool {
        tick.index().is_multiple_of(self.every)
    }

    /// Appends one sample to `id`'s series.
    pub fn sample(&mut self, id: GaugeId, tick: Tick, value: f64) {
        self.series[id.0].push(tick, value);
    }

    /// All registered series, in registration order.
    pub fn series(&self) -> &[TimeSeries] {
        &self.series
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cadence_gates_sampling_ticks() {
        let gauges = GaugeRegistry::new(25);
        assert!(gauges.due(Tick::new(0)));
        assert!(!gauges.due(Tick::new(24)));
        assert!(gauges.due(Tick::new(25)));
        assert!(gauges.due(Tick::new(250)));
    }

    #[test]
    fn gauges_keep_registration_order() {
        let mut gauges = GaugeRegistry::new(1);
        let a = gauges.register("alpha");
        let b = gauges.register("beta");
        gauges.sample(b, Tick::new(0), 2.0);
        gauges.sample(a, Tick::new(0), 1.0);
        assert_eq!(gauges.series()[0].name(), "alpha");
        assert_eq!(gauges.series()[1].name(), "beta");
        assert_eq!(gauges.series()[0].points(), [(Tick::new(0), 1.0)]);
    }

    #[test]
    #[should_panic(expected = "cadence")]
    fn zero_cadence_is_rejected() {
        let _ = GaugeRegistry::new(0);
    }
}
