//! Property-based tests of the microscopic simulator: car-following
//! safety and network-level invariants.

use proptest::prelude::*;
use utilbp_core::{SignalController, Tick, Ticks, UtilBp};
use utilbp_microsim::{next_speed, LeaderInfo, MicroSim, MicroSimConfig};
use utilbp_netgen::{
    DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
};

fn controllers(n: usize) -> Vec<Box<dyn SignalController>> {
    (0..n)
        .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
        .collect()
}

proptest! {
    /// Krauss safety: starting from any feasible two-vehicle state, the
    /// follower never hits a standing leader, whatever the dawdling noise.
    #[test]
    fn follower_never_hits_standing_leader(
        gap0 in 0.0f64..200.0,
        v0 in 0.0f64..14.0,
        xi in proptest::collection::vec(0.0f64..1.0, 60),
    ) {
        let cfg = MicroSimConfig::default();
        // Feasible start: the follower could already be too fast for a
        // tiny gap; admit only states from which a max-decel stop fits.
        prop_assume!(v0 * v0 / (2.0 * cfg.max_decel) <= gap0 + 1e-9);
        let mut gap = gap0;
        let mut v = v0;
        for &x in &xi {
            v = next_speed(
                v,
                LeaderInfo::Vehicle { net_gap_m: gap, speed_mps: 0.0 },
                x,
                &cfg,
            );
            gap -= v * cfg.dt_seconds;
            prop_assert!(gap >= -1e-6, "collision: gap {gap} after speed {v}");
        }
    }

    /// Speed updates always respect the physical envelope: bounded by the
    /// speed limit and by maximum acceleration per step.
    #[test]
    fn speed_envelope(
        v in 0.0f64..14.0,
        gap in -5.0f64..300.0,
        v_l in 0.0f64..14.0,
        xi in 0.0f64..1.0,
    ) {
        let cfg = MicroSimConfig::default();
        let v2 = next_speed(
            v,
            LeaderInfo::Vehicle { net_gap_m: gap, speed_mps: v_l },
            xi,
            &cfg,
        );
        prop_assert!(v2 >= 0.0);
        prop_assert!(v2 <= cfg.free_speed_mps + 1e-9);
        prop_assert!(v2 <= v + cfg.max_accel * cfg.dt_seconds + 1e-9);
    }

    #[test]
    fn free_road_speed_is_monotone_in_dawdle(v in 0.0f64..14.0, xi in 0.0f64..1.0) {
        let cfg = MicroSimConfig::default();
        let clean = next_speed(v, LeaderInfo::Free, 0.0, &cfg);
        let noisy = next_speed(v, LeaderInfo::Free, xi, &cfg);
        prop_assert!(noisy <= clean + 1e-12);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Network-level invariants hold for arbitrary seeds: conservation,
    /// capacity bounds, and sane detector readings.
    #[test]
    fn network_invariants(seed in 0u64..10_000) {
        let grid = GridNetwork::new(GridSpec::with_size(2, 2));
        let n = grid.topology().num_intersections();
        let mut sim = MicroSim::new(
            grid.topology().clone(),
            controllers(n),
            MicroSimConfig { seed, ..MicroSimConfig::default() },
        );
        let mut demand = DemandGenerator::new(
            &grid,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(250))),
            seed,
        );
        let mut injected = 0u64;
        for k in 0..250u64 {
            let arrivals = demand.poll(&grid, Tick::new(k));
            injected += arrivals.len() as u64;
            sim.step(arrivals);

            prop_assert_eq!(
                injected,
                sim.vehicles_in_network() as u64
                    + sim.backlog_len() as u64
                    + sim.ledger().completed(),
                "conservation violated at tick {}", k
            );
            for r in grid.topology().road_ids() {
                prop_assert!(sim.road_occupancy(r) <= 120);
                prop_assert!(sim.road_halted(r) <= sim.road_occupancy(r));
            }
            for i in grid.topology().intersection_ids() {
                let layout = grid.topology().intersection(i).layout();
                for link in layout.link_ids() {
                    prop_assert!(
                        sim.movement_queue_len(i, link) <= sim.movement_count(i, link)
                    );
                }
            }
        }
    }
}
