//! The Krauss car-following model (SUMO's default).
//!
//! Stefan Krauss' stochastic model computes, per step, the maximum *safe*
//! speed that lets the follower stop behind its leader under worst-case
//! braking, clamps desire by acceleration and the speed limit, and
//! subtracts a random dawdling term:
//!
//! ```text
//! v_safe = v_l + (g − v_l·τ) / (v̄/b + τ),   v̄ = (v + v_l)/2
//! v_des  = min(v_max, v + a·Δt, v_safe)
//! v'     = max(0, v_des − σ·a·Δt·ξ),         ξ ~ U[0,1)
//! x'     = x + v'·Δt
//! ```
//!
//! where `g` is the net gap to the leader (bumper to bumper, minus the
//! desired standstill gap), `τ` the reaction time, `a`/`b` the maximum
//! acceleration/deceleration.

use crate::config::MicroSimConfig;

/// The leader situation a vehicle reacts to.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum LeaderInfo {
    /// Open road: no obstacle within sight.
    Free,
    /// A standing obstacle (stop line / red light) at the given net
    /// distance ahead of the front bumper.
    Wall {
        /// Distance to the obstacle in meters (may be negative if already
        /// past it).
        distance_m: f64,
    },
    /// A leading vehicle with the given net gap and speed.
    Vehicle {
        /// Net gap in meters: leader rear bumper − follower front bumper −
        /// desired standstill gap.
        net_gap_m: f64,
        /// Leader speed in m/s.
        speed_mps: f64,
    },
}

/// Krauss safe speed for a follower at `speed` facing `leader`.
pub fn safe_speed(speed: f64, leader: LeaderInfo, cfg: &MicroSimConfig) -> f64 {
    let (gap, v_l) = match leader {
        LeaderInfo::Free => return f64::INFINITY,
        LeaderInfo::Wall { distance_m } => (distance_m, 0.0),
        LeaderInfo::Vehicle {
            net_gap_m,
            speed_mps,
        } => (net_gap_m, speed_mps),
    };
    let tau = cfg.reaction_time_s;
    let v_bar = (speed + v_l) / 2.0;
    v_l + (gap - v_l * tau) / (v_bar / cfg.max_decel + tau)
}

/// One Krauss speed update. `dawdle_xi` is the uniform sample `ξ ∈ [0, 1)`;
/// pass 0 for deterministic behavior.
pub fn next_speed(speed: f64, leader: LeaderInfo, dawdle_xi: f64, cfg: &MicroSimConfig) -> f64 {
    let v_safe = safe_speed(speed, leader, cfg);
    let v_des = cfg
        .free_speed_mps
        .min(speed + cfg.max_accel * cfg.dt_seconds)
        .min(v_safe);
    (v_des - cfg.sigma * cfg.max_accel * cfg.dt_seconds * dawdle_xi).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> MicroSimConfig {
        MicroSimConfig::deterministic()
    }

    #[test]
    fn free_road_accelerates_to_the_limit() {
        let c = cfg();
        let mut v = 0.0;
        for _ in 0..20 {
            v = next_speed(v, LeaderInfo::Free, 0.0, &c);
        }
        assert!((v - c.free_speed_mps).abs() < 1e-9, "v = {v}");
    }

    #[test]
    fn acceleration_is_bounded() {
        let c = cfg();
        let v1 = next_speed(0.0, LeaderInfo::Free, 0.0, &c);
        assert!(v1 <= c.max_accel * c.dt_seconds + 1e-12);
    }

    #[test]
    fn stops_before_a_wall() {
        let c = cfg();
        let mut pos: f64 = 0.0;
        let mut v: f64 = c.free_speed_mps;
        for _ in 0..60 {
            let leader = LeaderInfo::Wall {
                distance_m: 100.0 - pos,
            };
            v = next_speed(v, leader, 0.0, &c);
            pos += v * c.dt_seconds;
        }
        assert!(v < 0.05, "vehicle must come to rest, v = {v}");
        assert!(
            pos <= 100.0 + 1e-9,
            "front bumper at most at the wall, pos = {pos}"
        );
        assert!(pos > 90.0, "but close to it, pos = {pos}");
    }

    #[test]
    fn follower_never_collides_with_standing_leader() {
        let c = cfg();
        // Leader standing 50 m ahead; follower approaches at full speed.
        let mut pos: f64 = 0.0;
        let mut v: f64 = c.free_speed_mps;
        let leader_rear = 50.0;
        for _ in 0..60 {
            let net_gap = leader_rear - pos - c.min_gap_m;
            v = next_speed(
                v,
                LeaderInfo::Vehicle {
                    net_gap_m: net_gap,
                    speed_mps: 0.0,
                },
                0.0,
                &c,
            );
            pos += v * c.dt_seconds;
        }
        assert!(pos <= leader_rear - c.min_gap_m + 1e-9, "pos = {pos}");
        assert!(v < 0.05);
    }

    #[test]
    fn platoon_following_tracks_leader_speed() {
        let c = cfg();
        // Follower 30 m behind a leader cruising at 10 m/s reaches a
        // steady state near the leader's speed.
        let mut gap: f64 = 30.0;
        let mut v: f64 = 0.0;
        let v_l = 10.0;
        for _ in 0..120 {
            v = next_speed(
                v,
                LeaderInfo::Vehicle {
                    net_gap_m: gap,
                    speed_mps: v_l,
                },
                0.0,
                &c,
            );
            gap += (v_l - v) * c.dt_seconds;
            assert!(gap > 0.0, "no collision");
        }
        assert!((v - v_l).abs() < 0.5, "v = {v}");
    }

    #[test]
    fn dawdling_slows_but_never_reverses() {
        let c = MicroSimConfig::default(); // σ = 0.5
        let v_nodawdle = next_speed(5.0, LeaderInfo::Free, 0.0, &c);
        let v_dawdle = next_speed(5.0, LeaderInfo::Free, 1.0, &c);
        assert!(v_dawdle < v_nodawdle);
        assert!(v_dawdle >= 0.0);
        assert_eq!(
            next_speed(0.0, LeaderInfo::Wall { distance_m: 0.0 }, 1.0, &c),
            0.0
        );
    }

    #[test]
    fn safe_speed_is_negative_when_too_close() {
        let c = cfg();
        let v = safe_speed(
            10.0,
            LeaderInfo::Vehicle {
                net_gap_m: -1.0,
                speed_mps: 0.0,
            },
            &c,
        );
        assert!(v < 0.0, "overlap must demand braking, got {v}");
        // next_speed clamps it to 0.
        assert_eq!(
            next_speed(
                10.0,
                LeaderInfo::Vehicle {
                    net_gap_m: -1.0,
                    speed_mps: 0.0
                },
                0.0,
                &c
            ),
            0.0
        );
    }

    #[test]
    fn discharge_headway_is_realistic() {
        // A queue of standing vehicles discharging across a stop line
        // yields sub-second to ~2 s headways under plain Krauss (the model
        // has no explicit reaction-delay chain at startup). In the full
        // simulator the per-link service credit (`µ` = 1 veh/s in the
        // paper) is the binding limit on junction throughput; this test
        // pins the car-following contribution.
        let c = cfg();
        let spacing = c.jam_spacing_m();
        let n = 8usize;
        // Vehicle 0 at the line (pos = 0 means front at stop line).
        let mut pos: Vec<f64> = (0..n).map(|i| -(i as f64) * spacing).collect();
        let mut vel = vec![0.0f64; n];
        let mut cross_times = Vec::new();
        for step in 0..120u64 {
            for i in 0..n {
                let leader = if i == 0 || pos[i - 1] > 60.0 {
                    LeaderInfo::Free
                } else {
                    LeaderInfo::Vehicle {
                        net_gap_m: pos[i - 1] - pos[i] - c.vehicle_length_m - c.min_gap_m,
                        speed_mps: vel[i - 1],
                    }
                };
                vel[i] = next_speed(vel[i], leader, 0.0, &c);
                let before = pos[i];
                pos[i] += vel[i] * c.dt_seconds;
                if before <= 0.0 && pos[i] > 0.0 {
                    cross_times.push(step);
                }
            }
            if cross_times.len() == n {
                break;
            }
        }
        assert_eq!(cross_times.len(), n, "all vehicles must discharge");
        let headways: Vec<f64> = cross_times
            .windows(2)
            .map(|w| (w[1] - w[0]) as f64)
            .collect();
        let mean = headways.iter().sum::<f64>() / headways.len() as f64;
        assert!(
            (0.4..=3.0).contains(&mean),
            "mean saturation headway {mean} s outside the plausible range"
        );
    }
}
