//! # utilbp-microsim
//!
//! A from-scratch **microscopic traffic simulator** standing in for SUMO in
//! the reproduction of *Chang et al., DATE 2020*. Vehicles follow the
//! Krauss car-following model (SUMO's default) along dedicated
//! per-movement lanes; signalized junctions serve green links with
//! realistic discharge headways, a fixed junction-box traversal time, and
//! amber periods that let the box clear; queue detectors report
//! per-movement counts within a finite range of the stop line — the state
//! `Q(k)` the back-pressure controllers feed on.
//!
//! What this substitute preserves from the paper's SUMO setup (see
//! DESIGN.md for the substitution argument):
//!
//! - queues build and drain through car-following dynamics, with startup
//!   lost time and saturation headways — not instantaneous transfers;
//! - roads store a finite number of vehicles (`W = 120` at 300 m × 3
//!   lanes × 7.5 m jam spacing), so spillback blocks upstream service;
//! - ambers cost real green time, which is what makes the paper's
//!   phase-churn trade-off meaningful;
//! - SUMO's waiting-time definition (time at speed < 0.1 m/s) yields the
//!   "average queuing time of a vehicle" of Fig. 2 / Table III.
//!
//! See [`MicroSim`] for the step protocol and an end-to-end example.
//!
//! Together with `utilbp-queueing`, this simulator implements the
//! workspace's unified plant interface — the `TrafficSubstrate` trait in
//! `utilbp-substrate` — which states the cross-substrate contract
//! (determinism across execution modes and repeats, road-closure
//! semantics, accumulator-based waiting accounting, deterministic
//! route-cursor access for en-route replanning) once for both backends;
//! the notes below cover only what is specific to the microscopic model.
//!
//! ## Performance architecture
//!
//! The step path is built to run as fast as the hardware allows over
//! large grids; six mechanisms carry it:
//!
//! **Data-oriented vehicle layout.** Vehicle state is split by access
//! pattern (see the `road` module source for the full layout). Per-tick
//! hot state — interleaved `[position, speed]` pairs, a waiting-tick
//! accumulator, and the per-vehicle link/slot/id words — lives in one
//! *network-wide* struct-of-arrays arena (`NetworkLanes`): every road
//! is an index span into the same contiguous buffers, laid out
//! road-major then lane-major, so the car-following phase is a linear
//! sweep over packed storage instead of a pointer-chase across per-road
//! heap boxes. Per-journey cold state (external id, `Arc<Route>`, route
//! cursor) lives in a slab `VehicleArena` keyed by a compact `u32` slot
//! that only the serial phases dereference. Lanes dequeue crossed heads
//! by advancing a head offset inside their span (amortized compaction,
//! per-road strides pre-reserved at the geometric plateau; a road that
//! outgrows its stride triggers a one-off whole-arena re-layout), so
//! the steady-state fleet churns with no allocation and no element
//! shifts.
//!
//! **Occupancy-ordered iteration.** The arena keeps a sorted compact
//! list of *active* roads (live vehicle count > 0), maintained
//! incrementally at the only points occupancy can change — boundary
//! insertion, junction landing, head crossing, checkpoint load. Both
//! car-following phases and the batched kernel dispatch iterate that
//! list instead of all roads, so empty roads and empty lanes cost zero
//! cache lines — no metadata probe, no RNG draw, no branch per empty
//! lane. Skipping an empty road is exact (it mutates nothing and, in
//! exact mode, its dawdle stream is per-road and therefore undisturbed
//! by being unseeded for a tick), so the active list changes *which*
//! memory is touched, never a single trajectory byte. The list's
//! consistency with the spans' live counters is checkable at runtime
//! via [`MicroSim::verify_sensors`].
//!
//! **Incremental sensing.** Detector reads never rescan lanes. Each road
//! keeps dense per-lane counters — vehicles inside the configured
//! detection window, halted vehicles over the whole lane — plus their
//! road-level sums, maintained from deltas the car-following advance
//! returns and updated at the only other points where a vehicle's
//! position or speed can change (stop-line crossings, junction-box
//! landings, boundary insertions). `movement_queue_len` and
//! `road_sensor` are therefore O(1) reads of dense arrays — the sense
//! phase never touches lane storage. The invariant (*counter ≡
//! from-scratch rescan under the same sensor spec*) is checkable at
//! runtime via [`MicroSim::verify_sensors`] and enforced tick-by-tick in
//! the regression suite. The same idea gives `dest_lane_has_room` an
//! O(1) per-lane pending-reservation counter and the head phase a
//! per-lane green-with-credit flag precomputed in the signal-refresh
//! pass. The `SharedMixed` lane discipline keeps per-(road, link)
//! movement counters over lane-cached link indices, so even the
//! mixed-lane ablation never chases routes in the hot loop.
//!
//! **Accumulator-based waiting.** Waiting time (SUMO definition: ticks
//! below the waiting-speed threshold) accumulates per vehicle, in the
//! same pass that moves it; the accumulator rides through junction boxes
//! and is flushed to the `WaitingLedger` once, at journey completion.
//! Vehicles queued outside a full boundary entry are credited their
//! whole backlog dwell when they insert. Nothing scans the fleet or the
//! backlogs per tick;
//! [`MicroSim::mean_waiting_including_active`] folds the live
//! accumulators into the completed statistics at query time.
//!
//! **Reusable scratch.** One `ObservationBuffer` (one observation per
//! intersection) and the caller's `StepReport` are rewritten in place
//! every tick via [`MicroSim::step_into`] /
//! [`MicroSim::observe_into`], so the steady-state step path performs no
//! heap allocation (bounded by a counting-allocator regression test).
//! The allocating `step`/`observe` remain as thin convenience wrappers,
//! and [`MicroSim::step_into_timed`] attributes wall-clock time to the
//! pipeline's phase groups for the perf harness.
//!
//! **Shard-parallel stepping.** Two of the step's phases are
//! embarrassingly parallel and shard across threads under
//! `MicroSimConfig { parallelism: Parallelism::Rayon, .. }`: the
//! controller-decide phase (one controller per intersection, each
//! reading only its own observation) and the car-following phase for
//! non-head vehicles (per-road state, no cross-road reads — the network
//! arena is split into disjoint per-shard windows at road boundaries
//! with `split_at_mut`, no unsafe, and each shard walks only its
//! occupied roads). Head
//! release, landings, insertions, and ledger accounting mutate shared
//! state and stay serial. The fork-join runs on `rayon`'s persistent
//! worker pool (a channel handoff per step, not thread spawns), and
//! dawdling noise is drawn from per-road RNG streams, so `Serial` and
//! `Rayon` produce **bit-identical** step reports and ledgers —
//! asserted by the cross-mode determinism tests, including under
//! scenario disruption events. `Serial` is the default and the right
//! choice for small grids, where a step is cheaper than a fork-join;
//! `Rayon` pays off once per-step work dominates (large grids, heavy
//! traffic, many cores).
//!
//! **Fidelity contract.** The car-following phase runs under one of two
//! numerical contracts selected by `MicroSimConfig { fidelity, .. }`
//! (also a `fidelity exact|batched` scenario directive and a
//! `--fidelity` flag on the operator binaries):
//!
//! - [`Fidelity::Exact`] (the default): sequential per-road dawdle
//!   streams, per-lane advance, the mode every fixed-seed golden,
//!   checkpoint, and cross-backend comparison in the workspace pins.
//!   Its trajectories are part of the repository's bit-level history
//!   and must never drift — which the occupancy-ordered sweep respects
//!   by visiting occupied roads in ascending index order (the same
//!   relative order as a full scan) and never seeding or advancing an
//!   empty road's stream.
//! - [`Fidelity::Batched`]: the same Krauss recurrence driven by a
//!   *stateless counter RNG* keyed on `(seed, vehicle_id, tick)`, run
//!   as one road-granular kernel per road (coefficients hoisted once,
//!   short lanes paying no per-lane dispatch) with a queue-quiescence
//!   short-circuit: a stopped vehicle behind a stationary leader whose
//!   residual gap is below a half-meter threshold freezes — three
//!   compares and a waiting-tick increment instead of a hash, a
//!   divide, and the full bookkeeping — which is possible precisely
//!   because a skipped counter draw perturbs no other vehicle's noise.
//!   Batched runs are bit-identical to *themselves* across
//!   `Serial`/`Rayon`, repeats, and checkpoint restores, but not to
//!   exact mode; the two contracts are held together distributionally
//!   by the statistical-equivalence harness
//!   (`utilbp-experiments::equivalence`: relative-mean-gap and
//!   Kolmogorov–Smirnov gates on mean waiting, throughput, and queue
//!   length across ≥16 seeds × 3 scenarios, pinned as a tier-1
//!   regression at the workspace root). The opt-in `simd` cargo
//!   feature additionally hoists the batched kernel's dawdle draws
//!   into a vectorizable precompute over the packed id stream —
//!   bit-identical to the default build by construction (the
//!   `counter_rng` unit tests pin element equality) and off by
//!   default: on short urban lanes (mean occupied length ~4) the
//!   precompute has nothing to amortize over and measures as a wash.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod counter_rng;
mod krauss;
mod road;
mod sim;

pub use config::{Fidelity, LaneDiscipline, MicroSimConfig, OutgoingSensor};
pub use krauss::{next_speed, safe_speed, LeaderInfo};
pub use sim::{MicroSim, PhaseTimings, StepReport};

#[cfg(test)]
mod tests {
    use super::*;
    use utilbp_baselines::{CapBp, FixedTime};
    use utilbp_core::standard::Turn;
    use utilbp_core::{SignalController, Tick, Ticks, UtilBp};
    use utilbp_metrics::VehicleId;
    use utilbp_netgen::{
        Arrival, DemandConfig, DemandGenerator, DemandSchedule, GridNetwork, GridSpec, Pattern,
        RouteChoice,
    };

    fn grid() -> GridNetwork {
        GridNetwork::new(GridSpec::paper())
    }

    fn util_controllers(n: usize) -> Vec<Box<dyn SignalController>> {
        (0..n)
            .map(|_| Box::new(UtilBp::paper()) as Box<dyn SignalController>)
            .collect()
    }

    fn one_arrival(grid: &GridNetwork, entry_idx: usize, id: u64, choice: RouteChoice) -> Arrival {
        let entry = grid.entries()[entry_idx];
        Arrival {
            vehicle: VehicleId::new(id),
            tick: Tick::ZERO,
            route: std::sync::Arc::new(grid.route(&entry, choice)),
        }
    }

    #[test]
    fn single_vehicle_drives_through() {
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            util_controllers(9),
            MicroSimConfig::deterministic(),
        );
        sim.step(vec![one_arrival(&g, 0, 0, RouteChoice::Straight)]);
        let mut completed = 0;
        for _ in 0..600 {
            completed += sim.step(Vec::new()).completed;
        }
        assert_eq!(completed, 1, "the vehicle must traverse and exit");
        assert_eq!(sim.vehicles_in_network(), 0);
        assert_eq!(sim.total_crossings(), 3, "three junctions crossed");
        assert_eq!(sim.ledger().completed(), 1);
        // Straight through an empty UTIL-BP network: waiting should be
        // minimal (green chases the lone vehicle), certainly below 120 s.
        assert!(sim.ledger().waiting_stats().mean() < 120.0);
    }

    #[test]
    fn journey_time_is_physically_plausible() {
        // 4 roads × 300 m at ≤13.89 m/s plus 3 crossings: at least ~86 s +
        // 9 s of boxes. Anything faster means teleportation.
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            util_controllers(9),
            MicroSimConfig::deterministic(),
        );
        sim.step(vec![one_arrival(&g, 0, 0, RouteChoice::Straight)]);
        for _ in 0..600 {
            sim.step(Vec::new());
        }
        let journey = sim.ledger().journey_stats().mean();
        assert!(
            journey >= 90.0,
            "journey {journey} s implies faster-than-free-flow travel"
        );
        assert!(journey <= 400.0, "journey {journey} s implies a stall");
    }

    #[test]
    fn turning_vehicle_follows_its_route() {
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            util_controllers(9),
            MicroSimConfig::deterministic(),
        );
        let arrival = one_arrival(
            &g,
            0,
            0,
            RouteChoice::TurnAt {
                turn: Turn::Left,
                path_index: 1,
            },
        );
        let hops = arrival.route.len() as u64;
        sim.step(vec![arrival]);
        for _ in 0..900 {
            sim.step(Vec::new());
        }
        assert_eq!(sim.ledger().completed(), 1);
        assert_eq!(sim.total_crossings(), hops);
    }

    #[test]
    fn vehicle_conservation_under_load() {
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            util_controllers(9),
            MicroSimConfig::default(),
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(600))),
            42,
        );
        let mut injected_total = 0u64;
        for k in 0..600 {
            let arrivals = demand.poll(&g, Tick::new(k));
            injected_total += arrivals.len() as u64;
            sim.step(arrivals);
        }
        let accounted =
            sim.vehicles_in_network() as u64 + sim.backlog_len() as u64 + sim.ledger().completed();
        assert_eq!(injected_total, accounted, "no vehicle may vanish");
    }

    #[test]
    fn occupancies_never_exceed_capacity() {
        let g = GridNetwork::new(GridSpec {
            capacity: 15,
            ..GridSpec::with_size(2, 2)
        });
        let n = g.topology().num_intersections();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            // Slow fixed-time keeps everything congested.
            (0..n)
                .map(|_| {
                    Box::new(FixedTime::new(Ticks::new(30), Ticks::new(4)))
                        as Box<dyn SignalController>
                })
                .collect(),
            MicroSimConfig::default(),
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(900))),
            1,
        );
        for k in 0..900 {
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
            for r in g.topology().road_ids() {
                assert!(
                    sim.road_occupancy(r) <= 15,
                    "tick {k}: road {r} over capacity ({})",
                    sim.road_occupancy(r)
                );
            }
        }
    }

    #[test]
    fn deterministic_for_equal_seeds() {
        let g = grid();
        let run = |seed: u64| -> (u64, u64, f64) {
            let mut sim = MicroSim::new(
                g.topology().clone(),
                util_controllers(9),
                MicroSimConfig {
                    seed,
                    ..MicroSimConfig::default()
                },
            );
            let mut demand = DemandGenerator::new(
                &g,
                DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(400))),
                9,
            );
            for k in 0..400 {
                let arrivals = demand.poll(&g, Tick::new(k));
                sim.step(arrivals);
            }
            (
                sim.total_crossings(),
                sim.ledger().completed(),
                sim.mean_waiting_including_active(),
            )
        };
        assert_eq!(run(5), run(5));
        assert_ne!(run(5).0, run(6).0, "different seeds must diverge");
    }

    #[test]
    fn red_light_builds_a_detectable_queue() {
        let g = grid();
        let n = g.topology().num_intersections();
        // Long fixed-time slots: during the c3/c4 part of the cycle, north
        // approaches queue up.
        let mut sim = MicroSim::new(
            g.topology().clone(),
            (0..n)
                .map(|_| {
                    Box::new(FixedTime::new(Ticks::new(40), Ticks::new(4)))
                        as Box<dyn SignalController>
                })
                .collect(),
            MicroSimConfig::default(),
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(400))),
            3,
        );
        let mut max_queue = 0u32;
        for k in 0..400 {
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
            for i in g.topology().intersection_ids() {
                let layout = g.topology().intersection(i).layout();
                for arm in layout.incoming_ids() {
                    max_queue = max_queue.max(sim.incoming_queue_len(i, arm));
                }
            }
        }
        assert!(max_queue >= 3, "queues must form under fixed-time control");
    }

    #[test]
    fn observation_is_consistent_with_accessors() {
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            util_controllers(9),
            MicroSimConfig::default(),
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(300))),
            8,
        );
        for k in 0..300 {
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
        }
        for i in g.topology().intersection_ids() {
            let obs = sim.observe(i);
            let node = g.topology().intersection(i);
            for link in node.layout().link_ids() {
                assert_eq!(obs.movement(link), sim.movement_queue_len(i, link));
                assert!(
                    sim.movement_queue_len(i, link) <= sim.movement_count(i, link),
                    "halted is a subset of present"
                );
            }
            for out in node.layout().outgoing_ids() {
                let road = node.outgoing_road(out);
                assert_eq!(obs.outgoing(out), sim.road_sensor(road));
                assert!(
                    sim.road_halted(road) <= sim.road_occupancy(road),
                    "halted is a subset of occupancy"
                );
            }
        }
    }

    #[test]
    fn utilbp_beats_fixed_time_microscopically() {
        let g = grid();
        let horizon = 1200u64;
        let run = |controllers: Vec<Box<dyn SignalController>>| -> f64 {
            let mut sim =
                MicroSim::new(g.topology().clone(), controllers, MicroSimConfig::default());
            let mut demand = DemandGenerator::new(
                &g,
                DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(horizon))),
                77,
            );
            for k in 0..horizon {
                let arrivals = demand.poll(&g, Tick::new(k));
                sim.step(arrivals);
            }
            sim.mean_waiting_including_active()
        };
        let util = run(util_controllers(9));
        let fixed = run((0..9)
            .map(|_| {
                Box::new(FixedTime::new(Ticks::new(25), Ticks::new(4))) as Box<dyn SignalController>
            })
            .collect());
        assert!(
            util < fixed,
            "UTIL-BP ({util:.1}s) must beat fixed-time ({fixed:.1}s)"
        );
    }

    #[test]
    fn capbp_drives_the_microsim() {
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            (0..9)
                .map(|_| Box::new(CapBp::new(Ticks::new(16))) as Box<dyn SignalController>)
                .collect(),
            MicroSimConfig::default(),
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(900))),
            12,
        );
        for k in 0..900 {
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
        }
        assert!(
            sim.ledger().completed() > 50,
            "CAP-BP must move traffic, completed = {}",
            sim.ledger().completed()
        );
    }

    /// A controller pinned to one phase (test scaffolding).
    struct HoldPhase(utilbp_core::PhaseId);

    impl SignalController for HoldPhase {
        fn decide(
            &mut self,
            _view: &utilbp_core::IntersectionView<'_>,
            _now: Tick,
        ) -> utilbp_core::PhaseDecision {
            utilbp_core::PhaseDecision::Control(self.0)
        }
        fn reset(&mut self) {}
        fn name(&self) -> &'static str {
            "hold-phase"
        }
    }

    /// Runs the HOL scenario: phase pinned to c2 (rights only), vehicles
    /// from the north alternating straight/right. Returns completions.
    fn hol_scenario(discipline: LaneDiscipline) -> u64 {
        use utilbp_core::standard::{self, Approach};

        let g = GridNetwork::new(GridSpec::with_size(1, 1));
        let controllers: Vec<Box<dyn SignalController>> =
            vec![Box::new(HoldPhase(standard::phase_id(2)))];
        let mut sim = MicroSim::new(
            g.topology().clone(),
            controllers,
            MicroSimConfig {
                lane_discipline: discipline,
                ..MicroSimConfig::deterministic()
            },
        );
        let entry = g
            .entries()
            .iter()
            .copied()
            .find(|e| e.side == Approach::North)
            .unwrap();
        let mut id = 0u64;
        for k in 0..420u64 {
            let mut batch = Vec::new();
            if k % 6 == 0 {
                let choice = if (k / 6) % 2 == 0 {
                    RouteChoice::Straight
                } else {
                    RouteChoice::TurnAt {
                        turn: Turn::Right,
                        path_index: 0,
                    }
                };
                batch.push(Arrival {
                    vehicle: VehicleId::new(id),
                    tick: Tick::ZERO,
                    route: std::sync::Arc::new(g.route(&entry, choice)),
                });
                id += 1;
            }
            sim.step(batch);
        }
        sim.ledger().completed()
    }

    #[test]
    fn mixed_lanes_cause_head_of_line_blocking() {
        // Section IV Q4: with dedicated lanes, every right-turner clears
        // even though straights never get green; with mixed lanes, red
        // straight-bound heads trap right-turners behind them.
        let dedicated = hol_scenario(LaneDiscipline::DedicatedPerMovement);
        let shared = hol_scenario(LaneDiscipline::SharedMixed);
        assert!(
            dedicated >= 25,
            "dedicated lanes must clear the right-turners, got {dedicated}"
        );
        assert!(
            shared < dedicated,
            "mixed lanes must block some right-turners ({shared} vs {dedicated})"
        );
    }

    #[test]
    fn mixed_lanes_conserve_vehicles() {
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            util_controllers(9),
            MicroSimConfig {
                lane_discipline: LaneDiscipline::SharedMixed,
                ..MicroSimConfig::default()
            },
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(500))),
            13,
        );
        let mut injected = 0u64;
        for k in 0..500 {
            let arrivals = demand.poll(&g, Tick::new(k));
            injected += arrivals.len() as u64;
            sim.step(arrivals);
        }
        assert_eq!(
            injected,
            sim.vehicles_in_network() as u64 + sim.backlog_len() as u64 + sim.ledger().completed()
        );
        assert!(sim.ledger().completed() > 0, "traffic still flows");
    }

    #[test]
    #[should_panic(expected = "one controller per intersection")]
    fn rejects_wrong_controller_count() {
        let g = grid();
        let _ = MicroSim::new(
            g.topology().clone(),
            util_controllers(2),
            MicroSimConfig::default(),
        );
    }

    #[test]
    #[should_panic(expected = "invalid microsim config")]
    fn rejects_invalid_config() {
        let g = grid();
        let cfg = MicroSimConfig {
            sigma: 2.0,
            ..MicroSimConfig::default()
        };
        let _ = MicroSim::new(g.topology().clone(), util_controllers(9), cfg);
    }

    #[test]
    fn shared_mixed_movement_counters_match_rescan() {
        let g = grid();
        let cfg = MicroSimConfig {
            lane_discipline: LaneDiscipline::SharedMixed,
            ..MicroSimConfig::default()
        };
        let mut sim = MicroSim::new(g.topology().clone(), util_controllers(9), cfg);
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(400))),
            11,
        );
        for k in 0..400 {
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
            if k % 25 == 0 {
                sim.verify_sensors()
                    .unwrap_or_else(|e| panic!("tick {k}: {e}"));
            }
        }
        sim.verify_sensors()
            .expect("counters equal rescan at the end");
        // The counters actually observe traffic.
        let some_queue = g.topology().intersection_ids().any(|i| {
            g.topology()
                .intersection(i)
                .layout()
                .link_ids()
                .any(|l| sim.movement_count(i, l) > 0)
        });
        assert!(some_queue, "a loaded network shows movement counts");
    }

    #[test]
    fn shared_mixed_parallel_matches_serial() {
        let g = grid();
        let run = |parallelism| {
            let cfg = MicroSimConfig {
                lane_discipline: LaneDiscipline::SharedMixed,
                parallelism,
                ..MicroSimConfig::default()
            };
            let mut sim = MicroSim::new(g.topology().clone(), util_controllers(9), cfg);
            let mut demand = DemandGenerator::new(
                &g,
                DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(300))),
                5,
            );
            for k in 0..300 {
                let arrivals = demand.poll(&g, Tick::new(k));
                sim.step(arrivals);
            }
            (
                sim.total_crossings(),
                sim.ledger().completed(),
                sim.ledger().waiting_stats().mean(),
            )
        };
        assert_eq!(
            run(utilbp_core::Parallelism::Serial),
            run(utilbp_core::Parallelism::Rayon),
            "sharded stepping must be bit-identical under SharedMixed"
        );
    }

    #[test]
    fn closed_roads_block_insertion_and_release_until_reopened() {
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            util_controllers(9),
            MicroSimConfig::deterministic(),
        );
        // Close the entry road: arrivals backlog, nothing drives.
        let entry_road = g.entries()[0].road;
        sim.set_road_closed(entry_road, true);
        assert!(sim.road_closed(entry_road));
        for id in 0..3 {
            sim.step(vec![one_arrival(&g, 0, id, RouteChoice::Straight)]);
        }
        assert_eq!(sim.backlog_len(), 3);
        assert_eq!(sim.vehicles_in_network(), 0);
        // Also close the internal road their route continues on: once the
        // entry reopens, nobody is released through the first junction.
        let first = g.entries()[0].intersection;
        let node = g.topology().intersection(first);
        let internal = node.outgoing_road(
            Turn::Straight
                .exit_from(utilbp_core::standard::Approach::North)
                .outgoing(),
        );
        sim.set_road_closed(internal, true);
        sim.set_road_closed(entry_road, false);
        for _ in 0..300 {
            sim.step(Vec::new());
        }
        assert_eq!(sim.backlog_len(), 0, "reopened entry admits the backlog");
        assert_eq!(sim.road_occupancy(internal), 0, "closed road stays empty");
        assert_eq!(sim.total_crossings(), 0);
        // Reopen the internal road: the journeys complete.
        sim.set_road_closed(internal, false);
        for _ in 0..900 {
            sim.step(Vec::new());
        }
        assert_eq!(sim.ledger().completed(), 3);
    }

    /// Runs 400 ticks of Pattern II demand under `cfg`; returns the
    /// end-state signature used by the fidelity determinism tests.
    fn run_signature(cfg: MicroSimConfig) -> (u64, u64, f64, (usize, usize, f64, f64)) {
        let g = grid();
        let mut sim = MicroSim::new(g.topology().clone(), util_controllers(9), cfg);
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(400))),
            9,
        );
        for k in 0..400 {
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
        }
        (
            sim.total_crossings(),
            sim.ledger().completed(),
            sim.mean_waiting_including_active(),
            sim.fleet_digest(),
        )
    }

    #[test]
    fn batched_mode_is_bit_identical_with_itself() {
        // The batched contract: deterministic across repeats and across
        // Serial/Rayon sharding (counter draws are pure functions of the
        // key, so visitation order cannot matter).
        let batched = |parallelism| MicroSimConfig {
            fidelity: Fidelity::Batched,
            parallelism,
            ..MicroSimConfig::default()
        };
        let serial = run_signature(batched(utilbp_core::Parallelism::Serial));
        let repeat = run_signature(batched(utilbp_core::Parallelism::Serial));
        let rayon = run_signature(batched(utilbp_core::Parallelism::Rayon));
        assert_eq!(serial, repeat, "batched repeat must be bit-identical");
        assert_eq!(serial, rayon, "batched Serial/Rayon must be bit-identical");
    }

    #[test]
    fn batched_mode_diverges_from_exact_but_behaves() {
        let exact = run_signature(MicroSimConfig::default());
        let batched = run_signature(MicroSimConfig {
            fidelity: Fidelity::Batched,
            ..MicroSimConfig::default()
        });
        assert_ne!(
            exact.3, batched.3,
            "with σ > 0 the two fidelities draw different noise"
        );
        // Same macroscopic ballpark (the equivalence harness gates this
        // properly across seeds; this is a cheap sanity rail).
        let (tx, tb) = (exact.0 as f64, batched.0 as f64);
        assert!(
            (tx - tb).abs() / tx < 0.25,
            "crossings diverged wildly: exact {tx}, batched {tb}"
        );
    }

    #[test]
    fn batched_mode_conserves_vehicles_and_sensors() {
        // SharedMixed exercises the movement counters through the batched
        // kernel's bookkeeping pass as well.
        let g = grid();
        let mut sim = MicroSim::new(
            g.topology().clone(),
            util_controllers(9),
            MicroSimConfig {
                fidelity: Fidelity::Batched,
                lane_discipline: LaneDiscipline::SharedMixed,
                ..MicroSimConfig::default()
            },
        );
        let mut demand = DemandGenerator::new(
            &g,
            DemandConfig::new(DemandSchedule::constant(Pattern::I, Ticks::new(400))),
            11,
        );
        let mut injected = 0u64;
        for k in 0..400 {
            let arrivals = demand.poll(&g, Tick::new(k));
            injected += arrivals.len() as u64;
            sim.step(arrivals);
            if k % 25 == 0 {
                sim.verify_sensors()
                    .unwrap_or_else(|e| panic!("tick {k}: {e}"));
            }
        }
        sim.verify_sensors().expect("counters equal rescan");
        assert_eq!(
            injected,
            sim.vehicles_in_network() as u64 + sim.backlog_len() as u64 + sim.ledger().completed()
        );
        assert!(
            sim.ledger().completed() > 0,
            "traffic flows in batched mode"
        );
    }

    #[test]
    fn batched_state_roundtrip_resumes_bit_identically() {
        use utilbp_core::state::{StateReader, StateWriter};
        let g = grid();
        let cfg = MicroSimConfig {
            fidelity: Fidelity::Batched,
            ..MicroSimConfig::default()
        };
        let demand_for = || {
            DemandGenerator::new(
                &g,
                DemandConfig::new(DemandSchedule::constant(Pattern::II, Ticks::new(400))),
                9,
            )
        };
        // Uninterrupted reference run.
        let mut sim = MicroSim::new(g.topology().clone(), util_controllers(9), cfg);
        let mut demand = demand_for();
        let mut snapshot = StateWriter::new();
        for k in 0..400 {
            if k == 200 {
                sim.save_state(&mut snapshot);
            }
            let arrivals = demand.poll(&g, Tick::new(k));
            sim.step(arrivals);
        }
        // Restore at tick 200 into a fresh simulator and replay the rest
        // (the demand stream is deterministic, so re-polling it re-derives
        // the same arrivals).
        let words = snapshot.into_words();
        let mut resumed = MicroSim::new(g.topology().clone(), util_controllers(9), cfg);
        let mut reader = StateReader::new(&words);
        resumed
            .load_state(&mut reader)
            .expect("snapshot must restore");
        let mut demand = demand_for();
        for k in 0..400 {
            let arrivals = demand.poll(&g, Tick::new(k));
            if k < 200 {
                drop(arrivals); // consumed pre-snapshot by the reference run
                continue;
            }
            resumed.step(arrivals);
        }
        assert_eq!(resumed.fleet_digest(), sim.fleet_digest());
        assert_eq!(resumed.total_crossings(), sim.total_crossings());
        assert_eq!(
            resumed.mean_waiting_including_active(),
            sim.mean_waiting_including_active()
        );
        resumed.verify_sensors().expect("restored counters hold");
    }
}
