//! Microscopic simulation parameters.

use serde::{Deserialize, Serialize};
use utilbp_core::Parallelism;

/// How vehicles are assigned to lanes on a road.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum LaneDiscipline {
    /// One dedicated lane per turning movement (the paper's assumption,
    /// Section II-A): vehicles sort by destination, so a blocked movement
    /// never delays the others — head-of-line blocking is impossible
    /// (Section IV, Q4).
    #[default]
    DedicatedPerMovement,
    /// Mixed lanes (the paper's future-work scenario): vehicles pick the
    /// shortest lane regardless of destination, and a head vehicle whose
    /// movement is red blocks everyone behind it. Used by the
    /// `ablation_lanes` bench to quantify what dedicated lanes buy.
    SharedMixed,
}

/// What the outgoing-road sensor `q_{i'}` reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum OutgoingSensor {
    /// Halted vehicles over the whole road: free-flowing vehicles exert no
    /// back-pressure, and a fully jammed road reads ≈ `W` (Eq. 8's
    /// full-road case stays reachable).
    #[default]
    HaltedWholeRoad,
    /// Vehicles present within the detector range of the road's *own*
    /// downstream junction — the mirror image of the upstream movement
    /// sensor.
    PresenceNearJunction,
    /// Every vehicle on the road (occupancy) — the literal store-and-
    /// forward reading; includes free-flowing vehicles, which couples the
    /// pressure to the road's travel time.
    Occupancy,
}

/// The numerical contract the car-following phase runs under.
///
/// `Exact` is the default and the mode every golden, checkpoint, and
/// cross-backend comparison in the workspace was recorded in. `Batched`
/// trades bit-compatibility *with exact mode* for throughput: dawdling
/// noise comes from a counter-based per-vehicle stream keyed on
/// `(seed, vehicle_id, tick)` instead of the sequential per-road stream,
/// and the Krauss update runs as a road-granular batch kernel over the
/// contiguous lane segments — one dispatch per road, loop-invariant
/// coefficients hoisted once, and (because the counter stream consumes
/// no generator state) an exact short-circuit for parked queues, whose
/// update is the identity for every possible draw. Batched mode is
/// still fully deterministic — bit-identical across
/// `Serial`/`Rayon`/repeats *with itself* and checkpoint-safe — but its
/// trajectories differ from exact mode's and are validated
/// distributionally (the `equivalence` harness), not per-bit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Fidelity {
    /// Reference semantics: sequential per-road dawdle stream,
    /// leader-updated-first (Gauss–Seidel) gap reads, the mode all
    /// fixed-seed goldens pin.
    #[default]
    Exact,
    /// The batched car-following kernel: counter-based per-vehicle RNG,
    /// road-granular dispatch, queue-quiescence short-circuit. Opt-in;
    /// statistically equivalent to `Exact`, not bit-equal to it.
    Batched,
}

/// Parameters of the microscopic simulator. Defaults follow SUMO's default
/// Krauss passenger-car model and the paper's Section V setup.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MicroSimConfig {
    /// Wall-clock seconds per simulation step (`Δt`, SUMO's default 1 s —
    /// also the controller mini-slot).
    pub dt_seconds: f64,
    /// Free-flow / maximum speed in m/s (13.89 m/s = 50 km/h urban).
    pub free_speed_mps: f64,
    /// Vehicle length in meters (SUMO default 5 m).
    pub vehicle_length_m: f64,
    /// Minimum standstill gap in meters (SUMO default 2.5 m). Together
    /// with the length this sets the 7.5 m jam spacing that makes a 300 m
    /// lane hold 40 vehicles — the paper's `W = 120` across 3 dedicated
    /// lanes.
    pub min_gap_m: f64,
    /// Maximum acceleration in m/s² (SUMO default 2.6).
    pub max_accel: f64,
    /// Comfortable deceleration in m/s² (SUMO default 4.5).
    pub max_decel: f64,
    /// Driver reaction time `τ` in seconds (SUMO default 1.0).
    pub reaction_time_s: f64,
    /// Krauss dawdling factor `σ ∈ [0, 1]` (SUMO default 0.5). Set to 0
    /// for fully deterministic car-following.
    pub sigma: f64,
    /// Ticks a vehicle needs to traverse the junction box (3 s at urban
    /// speeds; must not exceed the amber duration or vehicles linger in
    /// the box into the next phase, as in reality).
    pub crossing_ticks: u64,
    /// Queue-detector range upstream of the stop line, in meters (default
    /// 50 m, a typical lane-area detector). Vehicles beyond the range are
    /// invisible to the controller: a movement whose detector reads zero
    /// is "empty" in the sense of the paper's `α`-case — activating it
    /// would serve only vehicles that still have to drive up to the
    /// junction. Short windows also make a green trickle movement read
    /// empty between arrivals, which is what lets the utilization-aware
    /// ranking hand green back to standing queues (see EXPERIMENTS.md for
    /// the calibration study).
    pub detection_range_m: f64,
    /// Speed below which a vehicle counts as waiting (SUMO's waiting-time
    /// definition uses 0.1 m/s).
    pub waiting_speed_mps: f64,
    /// Speed below which a vehicle counts as *queued* for the outgoing
    /// sensor (SUMO's lane-area jam threshold, 1.39 m/s = 5 km/h).
    pub halt_speed_mps: f64,
    /// What the outgoing-road sensor reports (see [`OutgoingSensor`]).
    pub outgoing_sensor: OutgoingSensor,
    /// Lane assignment discipline (see [`LaneDiscipline`]).
    pub lane_discipline: LaneDiscipline,
    /// Speed at which vehicles are inserted at boundary entries and leave
    /// the junction box, in m/s.
    pub insertion_speed_mps: f64,
    /// RNG seed for dawdling noise. Dawdling streams are per road (each
    /// road derives its own generator from this seed), which is what
    /// keeps serial and parallel stepping bit-identical.
    pub seed: u64,
    /// Execution mode of the controller-decide and car-following phases.
    /// Serial by default; [`Parallelism::Rayon`] shards both phases
    /// across threads, step-for-step identical to serial.
    pub parallelism: Parallelism,
    /// Numerical contract of the car-following phase (see [`Fidelity`]).
    /// `Exact` by default; `Batched` is strictly opt-in.
    pub fidelity: Fidelity,
}

impl Default for MicroSimConfig {
    fn default() -> Self {
        MicroSimConfig {
            dt_seconds: 1.0,
            free_speed_mps: 13.89,
            vehicle_length_m: 5.0,
            min_gap_m: 2.5,
            max_accel: 2.6,
            max_decel: 4.5,
            reaction_time_s: 1.0,
            sigma: 0.5,
            crossing_ticks: 3,
            detection_range_m: 50.0,
            waiting_speed_mps: 0.1,
            halt_speed_mps: 1.39,
            outgoing_sensor: OutgoingSensor::default(),
            lane_discipline: LaneDiscipline::default(),
            insertion_speed_mps: 8.0,
            seed: 0,
            parallelism: Parallelism::Serial,
            fidelity: Fidelity::default(),
        }
    }
}

impl MicroSimConfig {
    /// A deterministic configuration (no dawdling noise) — useful for
    /// regression tests.
    pub fn deterministic() -> Self {
        MicroSimConfig {
            sigma: 0.0,
            ..MicroSimConfig::default()
        }
    }

    /// Jam spacing: road length consumed per stopped vehicle.
    pub fn jam_spacing_m(&self) -> f64 {
        self.vehicle_length_m + self.min_gap_m
    }

    /// Validates parameter ranges.
    ///
    /// # Errors
    ///
    /// Returns a human-readable message naming the offending parameter.
    pub fn validate(&self) -> Result<(), String> {
        let positive = [
            ("dt_seconds", self.dt_seconds),
            ("free_speed_mps", self.free_speed_mps),
            ("vehicle_length_m", self.vehicle_length_m),
            ("max_accel", self.max_accel),
            ("max_decel", self.max_decel),
            ("reaction_time_s", self.reaction_time_s),
            ("insertion_speed_mps", self.insertion_speed_mps),
        ];
        for (name, v) in positive {
            if !(v.is_finite() && v > 0.0) {
                return Err(format!("{name} must be positive and finite, got {v}"));
            }
        }
        // Infinite = ideal whole-lane detection; otherwise must be positive.
        if self.detection_range_m.is_nan() || self.detection_range_m <= 0.0 {
            return Err(format!(
                "detection_range_m must be positive (may be infinite), got {}",
                self.detection_range_m
            ));
        }
        if !(self.min_gap_m.is_finite() && self.min_gap_m >= 0.0) {
            return Err(format!(
                "min_gap_m must be non-negative, got {}",
                self.min_gap_m
            ));
        }
        if !(0.0..=1.0).contains(&self.sigma) {
            return Err(format!("sigma must lie in [0,1], got {}", self.sigma));
        }
        if self.crossing_ticks == 0 {
            return Err("crossing_ticks must be at least 1".to_string());
        }
        if !(self.waiting_speed_mps.is_finite() && self.waiting_speed_mps >= 0.0) {
            return Err(format!(
                "waiting_speed_mps must be non-negative, got {}",
                self.waiting_speed_mps
            ));
        }
        if !(self.halt_speed_mps.is_finite() && self.halt_speed_mps > 0.0) {
            return Err(format!(
                "halt_speed_mps must be positive, got {}",
                self.halt_speed_mps
            ));
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_valid_and_sumo_like() {
        let c = MicroSimConfig::default();
        c.validate().expect("defaults must validate");
        assert_eq!(c.fidelity, Fidelity::Exact, "batched is strictly opt-in");
        assert_eq!(c.dt_seconds, 1.0);
        assert_eq!(c.jam_spacing_m(), 7.5);
        // 300 m lane → 40 vehicles → 3 lanes match W = 120.
        assert_eq!((300.0 / c.jam_spacing_m()) as u32, 40);
    }

    #[test]
    fn deterministic_config_disables_dawdling() {
        let c = MicroSimConfig::deterministic();
        assert_eq!(c.sigma, 0.0);
        c.validate().unwrap();
    }

    #[test]
    fn validation_catches_bad_parameters() {
        let bad = |patch: fn(&mut MicroSimConfig), needle: &str| {
            let mut c = MicroSimConfig::default();
            patch(&mut c);
            assert!(
                c.validate().unwrap_err().contains(needle),
                "expected error mentioning {needle}"
            );
        };
        bad(|c| c.dt_seconds = 0.0, "dt_seconds");
        bad(|c| c.sigma = 1.5, "sigma");
        bad(|c| c.crossing_ticks = 0, "crossing_ticks");
        bad(|c| c.min_gap_m = -1.0, "min_gap_m");
        bad(|c| c.waiting_speed_mps = f64::NAN, "waiting_speed_mps");
        bad(|c| c.halt_speed_mps = 0.0, "halt_speed_mps");
        bad(|c| c.detection_range_m = f64::NAN, "detection_range_m");
    }
}
