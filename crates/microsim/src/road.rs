//! The data-oriented vehicle arena, the network-wide segmented SoA lane
//! storage, and the per-lane car-following update.
//!
//! ## Layout
//!
//! Vehicle state is split by access pattern instead of being stored as an
//! array of `Vehicle` structs:
//!
//! - **Hot, per-tick state** — position, speed, and the waiting-tick
//!   accumulator — lives in parallel arrays owned by *the network*
//!   ([`NetworkLanes`]): one contiguous allocation per array for every
//!   road in the simulation, segmented into one fixed-stride span per
//!   lane, with each road owning a contiguous run of lane segments
//!   ([`RoadSpan`]). The Krauss car-following phase therefore streams
//!   the whole fleet through cache-linear storage, road after road and
//!   lane after lane, with no pointer hops between per-road heap
//!   allocations (the pre-arena layout paid ~5× its hot-cache cost in
//!   situ to exactly that pointer-chase).
//! - **Cold, per-journey state** — the external [`VehicleId`], the
//!   `Arc<Route>`, and the route cursor (`hop`) — lives in the
//!   [`VehicleArena`], a slab keyed by a compact `u32` slot carried in the
//!   lane arrays. Only the serial phases (head release, landings,
//!   insertions, completions) dereference it.
//! - The movement link a vehicle queues for is fixed while it is on a
//!   road, so each lane also caches it as a `u16` per vehicle — the
//!   `SharedMixed` movement counters never chase the `Arc<Route>` in the
//!   hot loop. The external id is cached alongside (a `u64` per vehicle)
//!   for the batched fidelity's counter-based dawdle streams, which key
//!   on `(seed, vehicle_id, tick)`.
//!
//! Lanes are FIFO (single file, no overtaking): index order *is* position
//! order, head first. Dequeuing a crossed head advances a per-lane `head`
//! offset instead of shifting the arrays; segments are compacted
//! amortizedly (and a road's lane segments re-laid-out in the cold case
//! of a lane outgrowing its span, which steady-state traffic never
//! triggers — spans are sized at the offset-dequeue plateau).
//!
//! ## Occupancy-ordered iteration
//!
//! [`NetworkLanes`] keeps a sorted **active-road list**: the indices of
//! roads with at least one vehicle on their lanes, maintained
//! incrementally at the only points where a road's on-lane population
//! changes (push on landing/insertion, pop on crossing, lane restore).
//! The head and follower phases walk this list instead of all roads, so
//! an empty road costs zero cache lines — not even its lane metadata is
//! touched. This is safe because an empty road draws no randomness and
//! mutates nothing in either phase, and the one piece of intra-step
//! scratch a skipped road could carry (a stale `head_crossed` flag on a
//! lane that emptied via a crossing) is reset by `advance_head` before
//! any follower pass can observe it once the road re-activates.
//!
//! ## Incremental sensing
//!
//! Sensor counters (vehicles inside the detection window, halted
//! vehicles) live as dense per-lane arrays on the *road* (see
//! `RoadSim` in the simulator), not in the lane storage: the sense phase
//! then reads short contiguous arrays instead of walking lane storage.
//! The advance functions here return per-step counter deltas — computed
//! at the *only* points where a vehicle's position or speed can change —
//! which the road folds into its arrays and sums; crossings, landings,
//! and insertions adjust them directly. The invariant (counter ≡ rescan
//! under the same [`SensorSpec`], via [`NetworkLanes::rescan_sensors`])
//! is enforced by `MicroSim::verify_sensors` and a dedicated regression
//! test.
//!
//! ## Waiting accumulators
//!
//! A vehicle's waiting ticks (speed below the SUMO threshold) accumulate
//! in the lane's `wait` array in the same pass that moves the vehicle,
//! ride along through junction boxes, and are flushed to the
//! `WaitingLedger` exactly once, at journey completion. Nothing scans the
//! fleet per tick to account waiting.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use utilbp_core::state::{StateError, StateReader, StateWriter};
use utilbp_core::LinkId;
use utilbp_metrics::VehicleId;
use utilbp_netgen::{IntersectionId, RoadId, Route};

use crate::config::MicroSimConfig;
use crate::counter_rng;
use crate::krauss::{next_speed, LeaderInfo};

/// Lane-cached movement link of vehicles on boundary exit roads (no
/// downstream junction, hence no movement).
pub(crate) const LINK_NONE: u16 = u16::MAX;

/// Slab of per-journey vehicle state, keyed by a compact `u32` slot.
///
/// Slots are recycled through a free list (LIFO), so the slab stays as
/// dense as the peak concurrent fleet. A freed slot keeps its stale
/// `Arc<Route>` in place until reuse — routes are shared from the demand
/// generators' caches, so the extra reference is a few bytes, and it
/// spares the slab an `Option` per entry.
#[derive(Debug, Clone, Default)]
pub(crate) struct VehicleArena {
    id: Vec<VehicleId>,
    route: Vec<Arc<Route>>,
    hop: Vec<u32>,
    free: Vec<u32>,
}

impl VehicleArena {
    /// An empty arena.
    pub fn new() -> Self {
        VehicleArena::default()
    }

    /// Admits a vehicle starting its route; returns its slot.
    pub fn insert(&mut self, id: VehicleId, route: Arc<Route>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.id[i] = id;
                self.route[i] = route;
                self.hop[i] = 0;
                slot
            }
            None => {
                self.id.push(id);
                self.route.push(route);
                self.hop.push(0);
                (self.id.len() - 1) as u32
            }
        }
    }

    /// Retires a slot (journey complete); returns the external id.
    pub fn release(&mut self, slot: u32) -> VehicleId {
        self.free.push(slot);
        self.id[slot as usize]
    }

    /// The external id of a live slot.
    pub fn id(&self, slot: u32) -> VehicleId {
        self.id[slot as usize]
    }

    /// The route of a live slot.
    pub fn route(&self, slot: u32) -> &Arc<Route> {
        &self.route[slot as usize]
    }

    /// The route cursor: index of the next intersection to cross
    /// (== route length once on a boundary exit road).
    pub fn hop(&self, slot: u32) -> usize {
        self.hop[slot as usize] as usize
    }

    /// Advances the route cursor past a crossed intersection.
    pub fn bump_hop(&mut self, slot: u32) {
        self.hop[slot as usize] += 1;
    }

    /// Replaces a live slot's route (en-route replanning). The caller
    /// must preserve every hop up to and including the current cursor —
    /// the vehicle's lane (and, while crossing, its destination lane) is
    /// bound to that movement, and the lanes cache its link index.
    pub fn set_route(&mut self, slot: u32, route: Arc<Route>) {
        let i = slot as usize;
        debug_assert!(
            route.hops()[..=self.hop[i] as usize] == self.route[i].hops()[..=self.hop[i] as usize],
            "replanned route must preserve the committed prefix"
        );
        self.route[i] = route;
    }

    /// Serializes the slab: the free list exactly (its LIFO order decides
    /// future slot assignment, hence determinism), live slots in full,
    /// and freed slots not at all — their stale ids and routes are
    /// allocator residue, so normalizing them away makes
    /// save → load → save a byte-level fixed point.
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.push_usize(self.id.len());
        writer.push_usize(self.free.len());
        for &slot in &self.free {
            writer.push_u32(slot);
        }
        let mut is_free = vec![false; self.id.len()];
        for &slot in &self.free {
            is_free[slot as usize] = true;
        }
        for (i, &freed) in is_free.iter().enumerate() {
            if freed {
                continue;
            }
            writer.push(self.id[i].raw());
            writer.push_u32(self.hop[i]);
            self.route[i].save_state(writer);
        }
    }

    /// Restores a slab saved by [`save_state`](Self::save_state). Freed
    /// slots come back holding a shared placeholder route until reuse.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a truncated stream or a free-list
    /// entry out of range.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let len = reader.take_usize()?;
        let free_len = reader.take_usize()?;
        let mut free = Vec::with_capacity(free_len);
        for _ in 0..free_len {
            let slot = reader.take_u32()?;
            if slot as usize >= len {
                return Err(StateError::Invalid {
                    what: "arena free slot",
                    word: u64::from(slot),
                });
            }
            free.push(slot);
        }
        let placeholder = Arc::new(Route::new(
            RoadId::new(0),
            vec![(IntersectionId::new(0), LinkId::new(0))],
        ));
        let mut is_free = vec![false; len];
        for &slot in &free {
            is_free[slot as usize] = true;
        }
        self.id.clear();
        self.route.clear();
        self.hop.clear();
        self.id.resize(len, VehicleId::new(0));
        self.route.resize(len, Arc::clone(&placeholder));
        self.hop.resize(len, 0);
        for (i, &freed) in is_free.iter().enumerate() {
            if freed {
                continue;
            }
            self.id[i] = VehicleId::new(reader.take()?);
            self.hop[i] = reader.take_u32()?;
            self.route[i] = Arc::new(Route::load_state(reader)?);
        }
        self.free = free;
        Ok(())
    }
}

/// The fixed sensor geometry of one road's lanes: everything needed to
/// classify a vehicle for the incremental counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SensorSpec {
    /// Stop-line-relative detector start: a vehicle at `pos >=
    /// detect_from` is inside the detection window. `NEG_INFINITY` for an
    /// infinite detector range.
    pub detect_from: f64,
    /// Speed below which a vehicle counts as halted.
    pub halt_speed: f64,
}

impl SensorSpec {
    /// The spec for a road of `length` under `cfg`.
    pub fn for_road(length: f64, cfg: &MicroSimConfig) -> Self {
        SensorSpec {
            detect_from: if cfg.detection_range_m.is_finite() {
                length - cfg.detection_range_m
            } else {
                f64::NEG_INFINITY
            },
            halt_speed: cfg.halt_speed_mps,
        }
    }
}

/// Bookkeeping of one lane's span inside [`NetworkLanes`]: a half-open
/// window `head..fill` of its fixed-stride segment holds the live
/// vehicles, head (closest to the stop line) first.
#[derive(Debug, Clone, Copy, Default)]
pub(crate) struct LaneMeta {
    /// Index of the current head vehicle within the segment (offset
    /// dequeue — popping the head does not shift the arrays).
    head: usize,
    /// One past the last occupied index within the segment.
    fill: usize,
    /// Whether this lane's head crossed the stop line in the current
    /// step's head phase — consumed by [`advance_followers`].
    head_crossed: bool,
}

/// One road's region inside the [`NetworkLanes`] arena: a contiguous run
/// of `num_lanes` fixed-stride lane segments starting at element
/// `start`, plus the road's live-vehicle count backing the active-road
/// list. Strides are per-road (`seg`), sized from the road's geometry at
/// construction, so a road outgrowing its stride re-lays-out the arena
/// without disturbing any other road's logical content.
#[derive(Debug, Clone, Copy)]
pub(crate) struct RoadSpan {
    /// Element offset of the road's first lane segment in every array.
    pub(crate) start: usize,
    /// Index of the road's first lane in the network-wide lane-meta
    /// array.
    pub(crate) lane0: usize,
    /// Number of lanes.
    pub(crate) num_lanes: usize,
    /// Fixed per-lane stride of this road's segments.
    pub(crate) seg: usize,
    /// Vehicles currently on the road's lanes (excludes junction-box
    /// reservations — this is lane storage occupancy, not road
    /// occupancy).
    pub(crate) live: u32,
}

/// Every lane of every road in a single network-wide segmented
/// struct-of-arrays arena.
///
/// Each parallel array is one contiguous allocation for the *whole
/// network*; road `r` owns the element range described by its
/// [`RoadSpan`], and lane `l` of road `r` owns the fixed-stride span
/// `span.start + l·seg .. span.start + (l+1)·seg` of every array. Within
/// its span a lane is single file (no overtaking): index order *is*
/// position order, positions strictly decreasing from the head. The
/// arrays, split by access pattern:
///
/// - `pv` — `[position, speed]` per vehicle, interleaved: the
///   car-following update always reads and writes both, so pairing them
///   halves the cache lines a short lane touches.
/// - `wait` — accumulated waiting ticks (flushed to the ledger at
///   completion). `u32` on purpose: 2³² waiting ticks is 136 simulated
///   years, and the narrower accumulator keeps the array out of the hot
///   loop's cache budget except when a vehicle is actually waiting.
/// - `slot` — [`VehicleArena`] slot per vehicle (untouched by the
///   follower phase).
/// - `link` — cached movement link index at the road's destination
///   intersection ([`LINK_NONE`] on exit-road lanes). Never changes
///   on-road.
/// - `id` — cached external [`VehicleId`] per vehicle, the batched
///   fidelity's dawdle-stream key. Maintained in exact mode too (one
///   store per admission) so switching fidelity never re-shapes storage.
///
/// The sorted `active` list holds the indices of roads with `live > 0`
/// and is what the head and follower phases iterate — empty roads cost
/// nothing. Its backing storage is reserved at `num_roads` up front, so
/// activation/deactivation never allocates.
///
/// Segments are sized at the offset-dequeue plateau (compaction keeps
/// `head` below `max(32, live)`, bounding occupancy at twice the
/// resident capacity), so pushes never allocate in steady state; a lane
/// outgrowing its span first compacts and, failing that, its road's
/// region re-segments at double the stride — a cold path that changes
/// only the representation, never the logical content.
#[derive(Debug, Clone, Default)]
pub(crate) struct NetworkLanes {
    pv: Vec<[f64; 2]>,
    wait: Vec<u32>,
    slot: Vec<u32>,
    link: Vec<u16>,
    id: Vec<u64>,
    lanes: Vec<LaneMeta>,
    spans: Vec<RoadSpan>,
    /// Sorted indices of roads with at least one on-lane vehicle.
    active: Vec<u32>,
}

impl NetworkLanes {
    /// Storage for a network whose road `r` has `shapes[r] = (num_lanes,
    /// capacity)` — `capacity` resident vehicles per lane, pre-sized at
    /// the offset-dequeue plateau so pushes never reallocate: a segment
    /// is compacted before `head` exceeds `max(32, fill - head)`,
    /// bounding occupancy at twice that (plus the entry in flight).
    pub fn new(shapes: &[(usize, usize)]) -> Self {
        let mut spans = Vec::with_capacity(shapes.len());
        let (mut start, mut lane0) = (0usize, 0usize);
        for &(num_lanes, capacity) in shapes {
            let seg = 2 * capacity.max(32) + 2;
            spans.push(RoadSpan {
                start,
                lane0,
                num_lanes,
                seg,
                live: 0,
            });
            start += num_lanes * seg;
            lane0 += num_lanes;
        }
        NetworkLanes {
            pv: vec![[0.0; 2]; start],
            wait: vec![0; start],
            slot: vec![0; start],
            link: vec![0; start],
            id: vec![0; start],
            lanes: vec![LaneMeta::default(); lane0],
            spans,
            active: Vec::with_capacity(shapes.len()),
        }
    }

    /// Element index of the first slot of lane `l` of road `r`.
    #[inline]
    fn lane_base(&self, r: usize, l: usize) -> usize {
        let s = self.spans[r];
        s.start + l * s.seg
    }

    /// The lane metadata of lane `l` of road `r` (by value).
    #[inline]
    fn meta(&self, r: usize, l: usize) -> LaneMeta {
        self.lanes[self.spans[r].lane0 + l]
    }

    /// Number of lanes of road `r`.
    pub fn num_lanes(&self, r: usize) -> usize {
        self.spans[r].num_lanes
    }

    /// Number of vehicles on lane `l` of road `r`.
    pub fn len(&self, r: usize, l: usize) -> usize {
        let m = self.meta(r, l);
        m.fill - m.head
    }

    /// Whether lane `l` of road `r` is empty.
    pub fn is_empty(&self, r: usize, l: usize) -> bool {
        let m = self.meta(r, l);
        m.head == m.fill
    }

    /// Vehicles on road `r`'s lanes (the incrementally maintained count
    /// behind the active-road list).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn road_len(&self, r: usize) -> usize {
        self.spans[r].live as usize
    }

    /// Total vehicles on lanes across the whole network.
    pub fn total_vehicles(&self) -> usize {
        self.spans.iter().map(|s| s.live as usize).sum()
    }

    /// Position of the `i`-th vehicle from the head of lane `l` of road
    /// `r`.
    pub fn pos_at(&self, r: usize, l: usize, i: usize) -> f64 {
        self.pv[self.lane_base(r, l) + self.meta(r, l).head + i][0]
    }

    /// Speed of the `i`-th vehicle from the head of lane `l` of road
    /// `r`.
    pub fn speed_at(&self, r: usize, l: usize, i: usize) -> f64 {
        self.pv[self.lane_base(r, l) + self.meta(r, l).head + i][1]
    }

    /// Arena slot of the `i`-th vehicle from the head of lane `l` of
    /// road `r`.
    pub fn slot_at(&self, r: usize, l: usize, i: usize) -> u32 {
        self.slot[self.lane_base(r, l) + self.meta(r, l).head + i]
    }

    /// Cached movement link index of the `i`-th vehicle from the head of
    /// lane `l` of road `r`.
    pub fn link_at(&self, r: usize, l: usize, i: usize) -> u16 {
        self.link[self.lane_base(r, l) + self.meta(r, l).head + i]
    }

    /// The active waiting accumulators of every vehicle in the network —
    /// roads in index order, lanes in order, head first (the canonical
    /// fleet-walk order shared with `fleet_digest` and `replan_routes`).
    pub fn all_waits(&self) -> impl Iterator<Item = u64> + '_ {
        self.spans.iter().flat_map(move |span| {
            (0..span.num_lanes).flat_map(move |l| {
                let m = self.lanes[span.lane0 + l];
                let base = span.start + l * span.seg;
                self.wait[base + m.head..base + m.fill]
                    .iter()
                    .map(|&w| w as u64)
            })
        })
    }

    /// Appends a vehicle at the entry of lane `l` of road `r` (landing
    /// or insertion). The caller must have updated the sensors via the
    /// road's `sensor_add`. Maintains the road's live count and the
    /// active-road list.
    #[allow(clippy::too_many_arguments)]
    pub fn push(
        &mut self,
        r: usize,
        l: usize,
        pos: f64,
        speed: f64,
        wait: u64,
        slot: u32,
        link: u16,
        id: u64,
    ) {
        if self.meta(r, l).fill == self.spans[r].seg {
            self.make_room(r, l);
        }
        let span = self.spans[r];
        let li = span.lane0 + l;
        let m = &mut self.lanes[li];
        let j = span.start + l * span.seg + m.fill;
        m.fill += 1;
        self.pv[j] = [pos, speed];
        self.wait[j] = wait as u32;
        self.slot[j] = slot;
        self.link[j] = link;
        self.id[j] = id;
        self.road_live_add(r, 1);
    }

    /// Removes the head vehicle of lane `l` of road `r` (stop-line
    /// crossing); returns its arena slot and accumulated waiting.
    /// Segments are compacted amortizedly, so popping is O(1) and
    /// allocation-free. Maintains the live count / active-road list.
    pub fn pop_head(&mut self, r: usize, l: usize) -> (u32, u64) {
        let span = self.spans[r];
        let base = span.start + l * span.seg;
        let li = span.lane0 + l;
        let mut m = self.lanes[li];
        let j = base + m.head;
        let (slot, wait) = (self.slot[j], self.wait[j]);
        m.head += 1;
        if m.head == m.fill {
            m.head = 0;
            m.fill = 0;
            self.lanes[li] = m;
        } else if m.head >= 32 && m.head * 2 >= m.fill {
            self.lanes[li] = m;
            self.compact(r, l);
        } else {
            self.lanes[li] = m;
        }
        self.road_live_add(r, -1);
        (slot, wait as u64)
    }

    /// Position of the last vehicle of lane `l` of road `r` (smallest
    /// `pos`), or `length` if empty — the space available at the lane
    /// entry.
    pub fn tail_position(&self, r: usize, l: usize, length: f64) -> f64 {
        let m = self.meta(r, l);
        if m.head == m.fill {
            length
        } else {
            self.pv[self.lane_base(r, l) + m.fill - 1][0]
        }
    }

    /// Whether a new vehicle can be placed at `pos = 0` on lane `l` of
    /// road `r` while keeping jam spacing to the current tail.
    pub fn entry_clear(&self, r: usize, l: usize, length: f64, cfg: &MicroSimConfig) -> bool {
        self.tail_position(r, l, length) >= cfg.jam_spacing_m()
    }

    /// Number of vehicles on lane `l` of road `r` within `range` meters
    /// of the stop line — what a presence detector reports. O(n) rescan
    /// for arbitrary ranges; the road's dense counters answer the
    /// configured detector in O(1).
    pub fn detected(&self, r: usize, l: usize, length: f64, range: f64) -> u32 {
        self.live(r, l)
            .iter()
            .filter(|pv| pv[0] >= length - range)
            .count() as u32
    }

    /// Number of *halted* vehicles (speed below `halt_speed`) on lane
    /// `l` of road `r` within `range` meters of the stop line — what a
    /// SUMO-style jam detector reports. O(n) rescan; the road's dense
    /// counters answer whole-lane reads under the configured halt speed
    /// in O(1).
    #[allow(dead_code)] // kept for ad-hoc detector queries and tests
    pub fn halted(&self, r: usize, l: usize, length: f64, range: f64, halt_speed: f64) -> u32 {
        self.live(r, l)
            .iter()
            .filter(|pv| pv[0] >= length - range && pv[1] < halt_speed)
            .count() as u32
    }

    /// Recomputes lane `l` of road `r`'s sensor counters by rescanning
    /// (used when validating the incremental-sensing invariant kept in
    /// the road's dense counter arrays).
    pub fn rescan_sensors(&self, r: usize, l: usize, spec: SensorSpec) -> (u32, u32) {
        let live = self.live(r, l);
        let detected = live.iter().filter(|pv| pv[0] >= spec.detect_from).count() as u32;
        let halted = live.iter().filter(|pv| pv[1] < spec.halt_speed).count() as u32;
        (detected, halted)
    }

    /// Serializes lane `l` of road `r`'s logical content (head first).
    /// The `head` offset, the dequeued prefix, and the segment geometry
    /// (including the arena's road spans) are amortization artifacts,
    /// not state: restoring at `head = 0` yields identical physics, and
    /// canonicalizing makes save → load → save a fixed point. Cached ids
    /// are not written — they are derivable from the arena
    /// ([`refresh_ids_road`](Self::refresh_ids_road)), which keeps the
    /// wire format identical to the pre-arena per-road layout.
    pub fn save_lane(&self, r: usize, l: usize, writer: &mut StateWriter) {
        let base = self.lane_base(r, l);
        let m = self.meta(r, l);
        writer.push_usize(m.fill - m.head);
        for j in base + m.head..base + m.fill {
            writer.push_f64(self.pv[j][0]);
            writer.push_f64(self.pv[j][1]);
            writer.push_u32(self.wait[j]);
            writer.push_u32(self.slot[j]);
            writer.push(u64::from(self.link[j]));
        }
    }

    /// Restores lane `l` of road `r` from a stream saved by
    /// [`save_lane`](Self::save_lane), replacing the current content.
    /// `head_crossed` is intra-step scratch and resets to `false`
    /// (checkpoints are taken at tick boundaries). Cached ids are left
    /// stale — the simulator rebuilds them from the restored arena via
    /// [`refresh_ids_road`](Self::refresh_ids_road) once both sides are
    /// loaded. The road's live count and the active list are maintained
    /// here, so a restore into a non-empty simulator stays consistent.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a truncated stream or a link word out
    /// of `u16` range.
    pub fn load_lane(
        &mut self,
        r: usize,
        l: usize,
        reader: &mut StateReader<'_>,
    ) -> Result<(), StateError> {
        let len = reader.take_usize()?;
        let li = self.spans[r].lane0 + l;
        let old_len = self.lanes[li].fill - self.lanes[li].head;
        self.lanes[li] = LaneMeta::default();
        while self.spans[r].seg < len {
            self.grow_road(r);
        }
        let base = self.lane_base(r, l);
        for i in 0..len {
            let pos = reader.take_f64()?;
            let speed = reader.take_f64()?;
            let wait = reader.take_u32()?;
            let slot = reader.take_u32()?;
            let word = reader.take()?;
            let link = u16::try_from(word).map_err(|_| StateError::Invalid {
                what: "lane link",
                word,
            })?;
            self.pv[base + i] = [pos, speed];
            self.wait[base + i] = wait;
            self.slot[base + i] = slot;
            self.link[base + i] = link;
        }
        self.lanes[self.spans[r].lane0 + l].fill = len;
        self.road_live_add(r, len as i64 - old_len as i64);
        Ok(())
    }

    /// Rebuilds road `r`'s cached vehicle ids from the arena (slot →
    /// external id). Called once per road after a state restore, when
    /// both the lanes and the arena are loaded.
    pub fn refresh_ids_road(&mut self, r: usize, arena: &VehicleArena) {
        let span = self.spans[r];
        for l in 0..span.num_lanes {
            let m = self.lanes[span.lane0 + l];
            let base = span.start + l * span.seg;
            for j in base + m.head..base + m.fill {
                self.id[j] = arena.id(self.slot[j]).raw();
            }
        }
    }

    /// Number of roads currently holding vehicles.
    pub fn num_active(&self) -> usize {
        self.active.len()
    }

    /// The `ai`-th active road (ascending road-index order).
    pub fn active_road(&self, ai: usize) -> usize {
        self.active[ai] as usize
    }

    /// The sorted active-road list (diagnostics and tests).
    #[cfg_attr(not(test), allow(dead_code))]
    pub fn active_roads(&self) -> &[u32] {
        &self.active
    }

    /// Validates the occupancy bookkeeping: every road's live count must
    /// equal the sum of its lane windows, and the active list must hold
    /// exactly the roads with `live > 0`, sorted and without duplicates.
    ///
    /// # Errors
    ///
    /// Returns a message naming the first divergent road.
    pub fn verify_active(&self) -> Result<(), String> {
        for (r, span) in self.spans.iter().enumerate() {
            let count: usize = (0..span.num_lanes)
                .map(|l| {
                    let m = self.lanes[span.lane0 + l];
                    m.fill - m.head
                })
                .sum();
            if count != span.live as usize {
                return Err(format!(
                    "road {r}: live count {} != lane sum {count}",
                    span.live
                ));
            }
            let listed = self.active.binary_search(&(r as u32)).is_ok();
            if listed != (span.live > 0) {
                return Err(format!(
                    "road {r}: live {} but active-listed {listed}",
                    span.live
                ));
            }
        }
        if !self.active.windows(2).all(|w| w[0] < w[1]) {
            return Err("active list not strictly sorted".to_string());
        }
        Ok(())
    }

    /// The follower phase's serial entry: one full-range view over the
    /// hot arrays plus the road spans and the active list — everything
    /// the serial sweep needs, borrowed disjointly and allocation-free.
    pub fn follower_parts(&mut self) -> (LaneView<'_>, &[RoadSpan], &[u32]) {
        (
            LaneView {
                pv: &mut self.pv,
                wait: &mut self.wait,
                link: &self.link,
                id: &self.id,
                lanes: &mut self.lanes,
                offset: 0,
                lane0: 0,
            },
            &self.spans,
            &self.active,
        )
    }

    /// Splits the hot arrays into disjoint per-shard views at road-region
    /// boundaries, `chunk` roads per shard — the Rayon follower phase's
    /// entry. Safe splitting only (`split_at_mut`), no `unsafe`.
    pub fn follower_shards(&mut self, chunk: usize) -> (Vec<FollowerShard<'_>>, &[RoadSpan]) {
        let num_roads = self.spans.len();
        let chunk = chunk.max(1);
        let total = self.pv.len();
        let total_lanes = self.lanes.len();
        let mut shards = Vec::with_capacity(num_roads.div_ceil(chunk));
        let mut pv = self.pv.as_mut_slice();
        let mut wait = self.wait.as_mut_slice();
        let mut lanes = self.lanes.as_mut_slice();
        let mut link = self.link.as_slice();
        let mut id = self.id.as_slice();
        let mut r0 = 0usize;
        while r0 < num_roads {
            let r1 = (r0 + chunk).min(num_roads);
            let start = self.spans[r0].start;
            let end = if r1 < num_roads {
                self.spans[r1].start
            } else {
                total
            };
            let lane0 = self.spans[r0].lane0;
            let lane_end = if r1 < num_roads {
                self.spans[r1].lane0
            } else {
                total_lanes
            };
            let (pv_a, pv_b) = std::mem::take(&mut pv).split_at_mut(end - start);
            pv = pv_b;
            let (wait_a, wait_b) = std::mem::take(&mut wait).split_at_mut(end - start);
            wait = wait_b;
            let (lanes_a, lanes_b) = std::mem::take(&mut lanes).split_at_mut(lane_end - lane0);
            lanes = lanes_b;
            let (link_a, link_b) = link.split_at(end - start);
            link = link_b;
            let (id_a, id_b) = id.split_at(end - start);
            id = id_b;
            shards.push(FollowerShard {
                view: LaneView {
                    pv: pv_a,
                    wait: wait_a,
                    link: link_a,
                    id: id_a,
                    lanes: lanes_a,
                    offset: start,
                    lane0,
                },
                r0,
                r1,
            });
            r0 = r1;
        }
        (shards, &self.spans)
    }

    /// The live `[position, speed]` span of lane `l` of road `r`.
    fn live(&self, r: usize, l: usize) -> &[[f64; 2]] {
        let base = self.lane_base(r, l);
        let m = self.meta(r, l);
        &self.pv[base + m.head..base + m.fill]
    }

    /// Adjusts road `r`'s live count, (de)registering it in the sorted
    /// active list on the empty↔non-empty transitions. `insert`/`remove`
    /// shift at most `active.len()` (≤ roads) small words and never
    /// allocate (capacity is reserved at construction).
    fn road_live_add(&mut self, r: usize, delta: i64) {
        let span = &mut self.spans[r];
        let old = span.live;
        span.live = (i64::from(old) + delta) as u32;
        let new = span.live;
        if old == 0 && new > 0 {
            let i = self.active.partition_point(|&x| (x as usize) < r);
            self.active.insert(i, r as u32);
        } else if old > 0 && new == 0 {
            let i = self.active.partition_point(|&x| (x as usize) < r);
            debug_assert_eq!(self.active[i] as usize, r);
            self.active.remove(i);
        }
    }

    /// Shifts lane `l` of road `r`'s live window to the start of its
    /// segment.
    fn compact(&mut self, r: usize, l: usize) {
        let span = self.spans[r];
        let base = span.start + l * span.seg;
        let li = span.lane0 + l;
        let m = self.lanes[li];
        let src = base + m.head..base + m.fill;
        self.pv.copy_within(src.clone(), base);
        self.wait.copy_within(src.clone(), base);
        self.slot.copy_within(src.clone(), base);
        self.link.copy_within(src.clone(), base);
        self.id.copy_within(src, base);
        self.lanes[li].fill = m.fill - m.head;
        self.lanes[li].head = 0;
    }

    /// Makes space for one more vehicle on lane `l` of road `r`:
    /// compacts the dequeued prefix away if there is one, otherwise
    /// re-segments the road's region at double the stride (cold path —
    /// segments are sized so steady-state traffic never outgrows them).
    fn make_room(&mut self, r: usize, l: usize) {
        if self.meta(r, l).head > 0 {
            self.compact(r, l);
        } else {
            self.grow_road(r);
        }
    }

    /// Re-lays-out the arena with road `r`'s stride doubled, compacting
    /// every lane to its new base (other roads keep their stride; their
    /// regions shift to make room). Representation-only: the logical
    /// content (and therefore the physics) is unchanged, as are the live
    /// counts and the active list.
    fn grow_road(&mut self, r: usize) {
        let mut new_spans = self.spans.clone();
        new_spans[r].seg = 2 * new_spans[r].seg.max(16) + 2;
        let mut start = 0usize;
        for span in new_spans.iter_mut() {
            span.start = start;
            start += span.num_lanes * span.seg;
        }
        let total = start;
        let mut pv = vec![[0.0; 2]; total];
        let mut wait = vec![0u32; total];
        let mut slot = vec![0u32; total];
        let mut link = vec![0u16; total];
        let mut id = vec![0u64; total];
        for (old, new) in self.spans.iter().zip(new_spans.iter()) {
            for l in 0..old.num_lanes {
                let li = old.lane0 + l;
                let m = self.lanes[li];
                let src = old.start + l * old.seg + m.head..old.start + l * old.seg + m.fill;
                let dst = new.start + l * new.seg;
                let live = src.len();
                pv[dst..dst + live].copy_from_slice(&self.pv[src.clone()]);
                wait[dst..dst + live].copy_from_slice(&self.wait[src.clone()]);
                slot[dst..dst + live].copy_from_slice(&self.slot[src.clone()]);
                link[dst..dst + live].copy_from_slice(&self.link[src.clone()]);
                id[dst..dst + live].copy_from_slice(&self.id[src]);
                self.lanes[li].head = 0;
                self.lanes[li].fill = live;
            }
        }
        self.pv = pv;
        self.wait = wait;
        self.slot = slot;
        self.link = link;
        self.id = id;
        self.spans = new_spans;
    }

    /// The head offset of lane `l` of road `r` (storage diagnostics for
    /// tests).
    #[cfg(test)]
    fn head(&self, r: usize, l: usize) -> usize {
        self.meta(r, l).head
    }

    /// The stride of road `r`'s segments (storage diagnostics for
    /// tests).
    #[cfg(test)]
    fn seg(&self, r: usize) -> usize {
        self.spans[r].seg
    }
}

/// A mutable window over the arena's follower-phase arrays: the hot
/// mutable state (`pv`, `wait`, lane metadata), the read-only per-vehicle
/// caches (`link`, `id`), and the window's element/lane offsets so
/// road-span indices translate to window-local indices. The serial sweep
/// uses one full-range view (offsets 0); the Rayon sweep splits the
/// arrays into disjoint per-shard views at road boundaries. The `slot`
/// array is deliberately absent — the follower phase never touches it.
pub(crate) struct LaneView<'a> {
    pub(crate) pv: &'a mut [[f64; 2]],
    pub(crate) wait: &'a mut [u32],
    pub(crate) link: &'a [u16],
    pub(crate) id: &'a [u64],
    pub(crate) lanes: &'a mut [LaneMeta],
    /// Element offset of `pv[0]` within the network arrays.
    pub(crate) offset: usize,
    /// Lane-meta offset of `lanes[0]`.
    pub(crate) lane0: usize,
}

/// One Rayon shard of the follower phase: a disjoint [`LaneView`] window
/// covering roads `r0..r1`.
pub(crate) struct FollowerShard<'a> {
    pub(crate) view: LaneView<'a>,
    pub(crate) r0: usize,
    pub(crate) r1: usize,
}

/// Per-(road, link) movement counters for mixed-lane roads.
///
/// Under [`LaneDiscipline::SharedMixed`](crate::LaneDiscipline) a
/// movement's vehicles may sit on any lane, so the per-lane counters
/// cannot answer "how many vehicles bound for link `l`?". These arrays —
/// indexed by `LinkId::index()` at the road's destination intersection —
/// are maintained incrementally at the same mutation points as the lane
/// sensors (advance, crossing, landing, insertion), turning the
/// SharedMixed detector read from a per-decision lane rescan into an O(1)
/// lookup. A vehicle's movement never changes while it is on the road,
/// which is why the lanes can cache it as a plain link index.
#[derive(Debug, Clone, Default)]
pub(crate) struct MovementCounters {
    /// Vehicles on the road bound for each link (any position).
    pub total: Vec<u32>,
    /// Vehicles bound for each link within the detection window.
    pub detected: Vec<u32>,
}

impl MovementCounters {
    /// Counters for a destination layout with `num_links` links.
    pub fn new(num_links: usize) -> Self {
        MovementCounters {
            total: vec![0; num_links],
            detected: vec![0; num_links],
        }
    }

    /// Registers a vehicle bound for `link` appearing on the road.
    pub fn add(&mut self, link: usize, pos: f64, spec: SensorSpec) {
        self.total[link] += 1;
        if pos >= spec.detect_from {
            self.detected[link] += 1;
        }
    }

    /// Registers a vehicle bound for `link` leaving the road from `pos`
    /// (crossings happen at or past the stop line, which is always inside
    /// the detector window).
    fn remove(&mut self, link: usize, pos: f64, spec: SensorSpec) {
        self.total[link] -= 1;
        if pos >= spec.detect_from {
            self.detected[link] -= 1;
        }
    }

    /// Registers an in-place movement across the detector boundary.
    fn moved(&mut self, link: usize, old_pos: f64, new_pos: f64, spec: SensorSpec) {
        match (old_pos >= spec.detect_from, new_pos >= spec.detect_from) {
            (false, true) => self.detected[link] += 1,
            (true, false) => self.detected[link] -= 1,
            _ => {}
        }
    }

    /// Serializes both counter arrays.
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.push_usize(self.total.len());
        for &v in &self.total {
            writer.push_u32(v);
        }
        for &v in &self.detected {
            writer.push_u32(v);
        }
    }

    /// Restores counters saved by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a truncated stream or a link count
    /// that disagrees with this road's layout.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let len = reader.take_usize()?;
        if len != self.total.len() {
            return Err(StateError::Invalid {
                what: "movement counter width",
                word: len as u64,
            });
        }
        for v in &mut self.total {
            *v = reader.take_u32()?;
        }
        for v in &mut self.detected {
            *v = reader.take_u32()?;
        }
        Ok(())
    }
}

/// Where a head vehicle's dawdle sample comes from — the one
/// fidelity-dependent ingredient of the (serial, cold) head phase, so
/// the phase itself is shared between modes.
#[derive(Debug)]
pub(crate) enum DawdleSource<'a> {
    /// Exact mode: the road's sequential stream. Draw order is part of
    /// the bit-level contract.
    Stream(&'a mut SmallRng),
    /// Batched mode: stateless counter draws keyed on
    /// `(seed, vehicle_id, tick)` — see [`crate::counter_rng`].
    Counter {
        /// The configured dawdle seed.
        seed: u64,
        /// The tick being simulated.
        tick: u64,
    },
}

impl DawdleSource<'_> {
    /// The dawdle sample for `vehicle_id`, or 0 when dawdling is off.
    /// In exact mode this consumes one sequential draw (iff `σ > 0`),
    /// exactly like the pre-fidelity code path; `vehicle_id` is ignored.
    #[inline]
    fn draw(&mut self, cfg: &MicroSimConfig, vehicle_id: u64) -> f64 {
        if cfg.sigma <= 0.0 {
            return 0.0;
        }
        match self {
            DawdleSource::Stream(rng) => rng.gen::<f64>(),
            DawdleSource::Counter { seed, tick } => {
                counter_rng::dawdle_xi(*seed, vehicle_id, *tick)
            }
        }
    }
}

/// What the head vehicle of a lane faces this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeadMode {
    /// Green with space downstream: the head may drive through the stop
    /// line (and is returned as crossed when its front passes it).
    Release,
    /// Red/amber or blocked downstream: the stop line is a wall.
    Blocked,
}

/// The outcome of one head advance: the crossed vehicle (arena slot +
/// accumulated waiting), if any, plus the lane's sensor-counter deltas
/// for the caller to fold into the road's dense counter arrays.
pub(crate) struct HeadOutcome {
    /// `Some((slot, wait))` if the head crossed the stop line.
    pub crossed: Option<(u32, u64)>,
    /// Detection-window occupancy delta.
    pub detected_delta: i32,
    /// Halted-count delta.
    pub halted_delta: i32,
}

/// Advances only the head vehicle of lane `l` of road `r` by one step,
/// popping it and returning it in the outcome if it crossed the stop
/// line under [`HeadMode::Release`]. Records the crossing on the lane so
/// the follower phase ([`advance_followers`]) can run later — possibly
/// on another thread — without re-deriving it.
///
/// If the head stays on the lane at waiting speed, its wait accumulator
/// is incremented in place (a crossed head is in the junction box, not
/// waiting).
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_head(
    net: &mut NetworkLanes,
    r: usize,
    l: usize,
    length: f64,
    head_mode: HeadMode,
    cfg: &MicroSimConfig,
    spec: SensorSpec,
    noise: &mut DawdleSource<'_>,
    mut movements: Option<&mut MovementCounters>,
) -> HeadOutcome {
    let span = net.spans[r];
    let li = span.lane0 + l;
    net.lanes[li].head_crossed = false;
    if net.lanes[li].head == net.lanes[li].fill {
        return HeadOutcome {
            crossed: None,
            detected_delta: 0,
            halted_delta: 0,
        };
    }

    let j = span.start + l * span.seg + net.lanes[li].head;
    let [old_pos, old_speed] = net.pv[j];
    let leader = match head_mode {
        HeadMode::Release => LeaderInfo::Free,
        HeadMode::Blocked => LeaderInfo::Wall {
            distance_m: length - old_pos,
        },
    };
    let xi = noise.draw(cfg, net.id[j]);
    let new_speed = next_speed(old_speed, leader, xi, cfg);
    let new_pos = old_pos + new_speed * cfg.dt_seconds;
    net.pv[j] = [new_pos, new_speed];
    let link = net.link[j];
    if let Some(mv) = movements.as_deref_mut() {
        mv.moved(link as usize, old_pos, new_pos, spec);
    }

    let was_detected = (old_pos >= spec.detect_from) as i32;
    let was_halted = (old_speed < spec.halt_speed) as i32;
    if head_mode == HeadMode::Release && new_pos >= length {
        net.lanes[li].head_crossed = true;
        if let Some(mv) = movements {
            mv.remove(link as usize, new_pos, spec);
        }
        // Moved then left: the net effect is removing the old state.
        return HeadOutcome {
            crossed: Some(net.pop_head(r, l)),
            detected_delta: -was_detected,
            halted_delta: -was_halted,
        };
    }
    if new_speed < cfg.waiting_speed_mps {
        net.wait[j] += 1;
    }
    HeadOutcome {
        crossed: None,
        detected_delta: (new_pos >= spec.detect_from) as i32 - was_detected,
        halted_delta: (new_speed < spec.halt_speed) as i32 - was_halted,
    }
}

/// Advances every remaining vehicle of lane `l` of the road described by
/// `span` (sequential front-to-back Krauss update with an anti-overlap
/// clamp), streaming over the lane's contiguous position/speed/wait
/// spans inside `view`. Must be called exactly once after
/// [`advance_head`] each step for every lane of an *occupied* road
/// (roads skipped by the active list carry no vehicles and no pending
/// scratch that matters — see the module docs); independent across lanes
/// and roads, which is what the parallel car-following phase shards.
/// Vehicles ending the step at waiting speed accumulate a waiting tick
/// in place. Returns `(detected_delta, halted_delta)` for the caller's
/// dense counter arrays.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_followers(
    view: &mut LaneView<'_>,
    span: &RoadSpan,
    l: usize,
    length: f64,
    cfg: &MicroSimConfig,
    spec: SensorSpec,
    rng: &mut SmallRng,
    mut movements: Option<&mut MovementCounters>,
) -> (i64, i64) {
    let li = span.lane0 - view.lane0 + l;
    let m = view.lanes[li];
    let start = if m.head_crossed { 0 } else { 1 };
    view.lanes[li].head_crossed = false;
    if m.fill - m.head <= start {
        return (0, 0);
    }
    let mut detected_delta = 0i64;
    let mut halted_delta = 0i64;
    // Leader state of vehicle `i` (updated before `i` moves, so each
    // follower reacts to its leader's already-advanced state, as in the
    // sequential front-to-back Krauss update). `INFINITY` position marks
    // "no leader; the stop line is the obstacle" — the case right after
    // the head crossed (its successor is re-evaluated for release next
    // step).
    let mut leader_pos = f64::INFINITY;
    let mut leader_speed = 0.0;

    let base = span.start - view.offset + l * span.seg;
    let n = m.fill - m.head;
    let pv = &mut view.pv[base + m.head..base + m.fill];
    let wait = &mut view.wait[base + m.head..base + m.fill];
    let link = &view.link[base + m.head..base + m.fill];
    if start == 1 {
        [leader_pos, leader_speed] = pv[0];
    }
    // Hoisted config scalars. `a_dt` and `sigma_a_dt` associate exactly as
    // the inline expressions they replace (`speed + a·Δt` computes `a·Δt`
    // first; `σ·a·Δt·ξ` associates left), so results are bit-identical.
    let dt = cfg.dt_seconds;
    let veh_len = cfg.vehicle_length_m;
    let min_gap = cfg.min_gap_m;
    let waiting_speed = cfg.waiting_speed_mps;
    let free_speed = cfg.free_speed_mps;
    let a_dt = cfg.max_accel * cfg.dt_seconds;
    let sigma_a_dt = cfg.sigma * cfg.max_accel * cfg.dt_seconds;
    let dawdling = cfg.sigma > 0.0;
    let tau = cfg.reaction_time_s;
    let decel = cfg.max_decel;
    let (detect_from, halt_speed) = (spec.detect_from, spec.halt_speed);

    let mut i = start;
    // At most one follower faces the stop line instead of a vehicle: the
    // new head right after a crossing (`leader_pos` infinite). Peeling it
    // keeps the main loop free of the leader-kind branch.
    if !leader_pos.is_finite() && i < n {
        let [old_pos, old_speed] = pv[i];
        let xi = dawdle(cfg, rng);
        let v = next_speed(
            old_speed,
            LeaderInfo::Wall {
                distance_m: length - old_pos,
            },
            xi,
            cfg,
        );
        let p = old_pos + v * dt;
        pv[i] = [p, v];
        detected_delta += (p >= detect_from) as i64 - (old_pos >= detect_from) as i64;
        halted_delta += (v < halt_speed) as i64 - (old_speed < halt_speed) as i64;
        if let Some(mv) = movements.as_deref_mut() {
            mv.moved(link[i] as usize, old_pos, p, spec);
        }
        if v < waiting_speed {
            wait[i] += 1;
        }
        (leader_pos, leader_speed) = (p, v);
        i += 1;
    }
    // Tight vehicle-leader loop: the Krauss update inlined with the same
    // operation order as `next_speed`/`safe_speed`.
    for i in i..n {
        let [old_pos, old_speed] = pv[i];
        let xi = if dawdling { rng.gen::<f64>() } else { 0.0 };
        let net_gap = leader_pos - old_pos - veh_len - min_gap;
        let v_bar = (old_speed + leader_speed) / 2.0;
        let v_safe = leader_speed + (net_gap - leader_speed * tau) / (v_bar / decel + tau);
        let v_des = free_speed.min(old_speed + a_dt).min(v_safe);
        let mut v = (v_des - sigma_a_dt * xi).max(0.0);
        let mut p = old_pos + v * dt;
        // Anti-overlap safety clamp (numerical guard; Krauss alone is
        // collision-free for consistent inputs).
        let max_pos = leader_pos - veh_len - 0.05;
        if p > max_pos {
            p = max_pos.max(old_pos);
            v = ((p - old_pos) / dt).max(0.0);
        }
        pv[i] = [p, v];
        detected_delta += (p >= detect_from) as i64 - (old_pos >= detect_from) as i64;
        halted_delta += (v < halt_speed) as i64 - (old_speed < halt_speed) as i64;
        if let Some(mv) = movements.as_deref_mut() {
            mv.moved(link[i] as usize, old_pos, p, spec);
        }
        if v < waiting_speed {
            wait[i] += 1;
        }
        (leader_pos, leader_speed) = (p, v);
    }
    (detected_delta, halted_delta)
}

/// Residual net gap (meters) below which a stopped vehicle behind a
/// stationary leader freezes in the batched fidelity, instead of
/// creeping it shut at the exact dynamics\' ever-shrinking
/// running-minimum pace. Half a meter is well under the 2.5 m
/// standstill gap, is closed by a single tick of ordinary driving once
/// the queue discharges, and captures a stopping vehicle within a few
/// draws (each draw has a ~38% chance of landing at or below it).
const QUIESCE_GAP: f64 = 0.5;

/// Stack-buffer width of the `simd` feature's precomputed dawdle draws:
/// 1 KiB of stack per lane pass, wide enough that almost every urban
/// lane fills in one chunk (longer lanes refill per chunk).
#[cfg(feature = "simd")]
const XI_CHUNK: usize = 128;

/// The batched-fidelity counterpart of [`advance_followers`]: one call
/// advances every lane of a road under the batched numerical contract.
///
/// The recurrence is the *same* sequential front-to-back Krauss update
/// as exact mode — each follower reads its leader's already-advanced
/// state — so the car-following dynamics are identical and statistical
/// equivalence is inherited rather than approximated. What changes is
/// everything around the formula:
///
/// - **Road-granular dispatch.** Urban lanes are short (mean occupied
///   length is ~4 on the 10x10 bench workload), so a per-lane entry
///   point pays its call and setup cost once per handful of vehicles.
///   This kernel hoists every config-derived coefficient once per
///   *road* and streams all lanes from one frame.
/// - **Counter-based dawdling.** The draw for vehicle `v` at tick `t`
///   is a pure hash of `(seed, vehicle_id, tick)`
///   ([`counter_rng::dawdle_xi`]) — no generator state advances, so the
///   noise a vehicle sees is independent of visitation order, lane
///   membership, and (crucially) of *which vehicles were skipped*.
/// - **Queue freezing.** Exact Krauss queues never truly park: a
///   stopped follower's residual gap evolves as the running *minimum*
///   of its dawdle draws (`net_gap ← min(net_gap, ξ)`), so red-phase
///   queues creep forever at ever-smaller speeds, and every queued
///   vehicle pays the full update every tick. The batched contract cuts
///   this tail off: a vehicle at speed exactly `0` behind a stationary
///   leader with `net_gap ≤` [`QUIESCE_GAP`] *freezes* — speed and
///   position hold, only the waiting tick accrues — until the leader
///   moves again. The residual creep this suppresses is below
///   [`QUIESCE_GAP`] of position (the running minimum is already there
///   and only shrinks) at speeds almost always below the waiting
///   threshold, so macroscopic metrics can't see it; what it buys is
///   that a red-phase queue costs three compares and an increment per
///   vehicle instead of a hash, a divide, and the full bookkeeping.
///   Because the counter RNG consumes no stream, skipping the draw
///   perturbs no other vehicle's noise — the freeze is a local,
///   deterministic rule, not a source of cross-vehicle divergence.
///
/// Exact mode can do none of this: its per-road `SmallRng` must draw
/// once per vehicle in visitation order to keep its stream (and thus
/// its goldens) stable, so every vehicle pays the full update.
///
/// Per-lane sensor deltas fold into `lane_detected` / `lane_halted`;
/// the road totals are returned. Bit-identical to itself across
/// `Serial`/`Rayon`, repeats, and checkpoint restores; *not*
/// bit-compatible with [`advance_followers`] (the dawdle streams
/// differ), which the statistical-equivalence harness validates
/// distributionally.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_followers_batched_road(
    view: &mut LaneView<'_>,
    span: &RoadSpan,
    length: f64,
    cfg: &MicroSimConfig,
    spec: SensorSpec,
    seed: u64,
    tick: u64,
    mut movements: Option<&mut MovementCounters>,
    lane_detected: &mut [u32],
    lane_halted: &mut [u32],
) -> (i64, i64) {
    let LaneView {
        pv,
        wait,
        link,
        id,
        lanes,
        offset,
        lane0,
    } = view;
    let seg = span.seg;
    let road_base = span.start - *offset;
    let meta_lo = span.lane0 - *lane0;
    let meta = &mut lanes[meta_lo..meta_lo + span.num_lanes];

    let dt = cfg.dt_seconds;
    let free_speed = cfg.free_speed_mps;
    let a_dt = cfg.max_accel * dt;
    let sigma_a_dt = cfg.sigma * cfg.max_accel * dt;
    let tau = cfg.reaction_time_s;
    // Reciprocal-multiply: exact mode's `v_bar = (v + v_l)/2` then
    // `v_bar/b` become one multiply by `0.5/b`.
    let half_inv_decel = 0.5 / cfg.max_decel;
    let gap_off = cfg.vehicle_length_m + cfg.min_gap_m;
    let inv_dt = 1.0 / dt;
    let waiting_speed = cfg.waiting_speed_mps;
    let clamp_off = cfg.vehicle_length_m + 0.05;
    let (detect_from, halt_speed) = (spec.detect_from, spec.halt_speed);
    // The `(seed, tick)` half of every draw key is the same for the
    // whole road-tick; only the per-vehicle fold remains in the loop.
    let xi_base = counter_rng::base(seed, tick);

    let mut road_detected = 0i64;
    let mut road_halted = 0i64;
    for (l, m) in meta.iter_mut().enumerate() {
        let start = if m.head_crossed { 0 } else { 1 };
        m.head_crossed = false;
        let n = m.fill - m.head;
        if n <= start {
            continue;
        }
        let h = road_base + l * seg + m.head;
        let f = h + start;
        let e = road_base + l * seg + m.fill;
        // The first follower's leader: the head's post-head-phase state,
        // or the stop line encoded as a standing virtual vehicle at
        // `length + gap_off` — algebraically identical to the exact
        // `Wall` branch (`net_gap = length − pos`). A zero-speed leader
        // is stationary by construction (`p = po + 0·dt`), so its
        // pre/post positions agree and the quiescence proof below holds
        // against either.
        let (mut leader_pos, mut leader_speed) = if start == 0 {
            (length + gap_off, 0.0)
        } else {
            (pv[h][0], pv[h][1])
        };
        let mut clamp_pos = if start == 0 { f64::INFINITY } else { pv[h][0] };
        let mut detected_delta = 0i64;
        let mut halted_delta = 0i64;
        // `simd` pass: hoist the dawdle draws out of the sequential
        // recurrence into a vectorizable precompute over the packed id
        // stream. Element-for-element bit-identical to the fused draw
        // (`counter_rng` pins it), so the gated build shares every
        // golden and self-identity contract with the default one. Draws
        // for frozen vehicles are computed and discarded — the counter
        // RNG is stateless, so the waste is wall-clock only.
        #[cfg(feature = "simd")]
        let mut xi_buf = [0.0f64; XI_CHUNK];
        for i in f..e {
            #[cfg(feature = "simd")]
            if sigma_a_dt > 0.0 && (i - f).is_multiple_of(XI_CHUNK) {
                let hi = (i + XI_CHUNK).min(e);
                counter_rng::fill_xi(xi_base, sigma_a_dt, &id[i..hi], &mut xi_buf[..hi - i]);
            }
            let [po, vo] = pv[i];
            let net_gap = leader_pos - po - gap_off;
            // Queue freeze: stopped behind a stationary leader with the
            // following distance almost used up — hold in place. No
            // bookkeeping delta is nonzero; only waiting accrues (a
            // frozen vehicle is below the waiting threshold by
            // definition).
            if vo == 0.0 && leader_speed == 0.0 && net_gap <= QUIESCE_GAP {
                wait[i] += 1;
                leader_pos = po;
                clamp_pos = po;
                continue;
            }
            let v_safe = leader_speed
                + (net_gap - leader_speed * tau) / ((vo + leader_speed) * half_inv_decel + tau);
            let v_des = free_speed.min(vo + a_dt).min(v_safe);
            let xi = if sigma_a_dt > 0.0 {
                #[cfg(feature = "simd")]
                let x = xi_buf[(i - f) % XI_CHUNK];
                #[cfg(not(feature = "simd"))]
                let x = sigma_a_dt * counter_rng::uniform01(counter_rng::finish(xi_base, id[i]));
                x
            } else {
                0.0
            };
            let mut v = (v_des - xi).max(0.0);
            let mut p = po + v * dt;
            let max_pos = clamp_pos - clamp_off;
            if p > max_pos {
                p = max_pos.max(po);
                v = ((p - po) * inv_dt).max(0.0);
            }
            pv[i] = [p, v];
            detected_delta += (p >= detect_from) as i64 - (po >= detect_from) as i64;
            halted_delta += (v < halt_speed) as i64 - (vo < halt_speed) as i64;
            if let Some(mv) = movements.as_deref_mut() {
                mv.moved(link[i] as usize, po, p, spec);
            }
            if v < waiting_speed {
                wait[i] += 1;
            }
            leader_pos = p;
            leader_speed = v;
            clamp_pos = p;
        }
        if detected_delta != 0 {
            lane_detected[l] = (lane_detected[l] as i64 + detected_delta) as u32;
        }
        if halted_delta != 0 {
            lane_halted[l] = (lane_halted[l] as i64 + halted_delta) as u32;
        }
        road_detected += detected_delta;
        road_halted += halted_delta;
    }
    (road_detected, road_halted)
}

/// Advances every vehicle in lane `l` of road `r` by one step. Returns
/// the head's `(slot, wait)` if it crossed the stop line under
/// [`HeadMode::Release`].
///
/// Composition of [`advance_head`] and [`advance_followers`]; the
/// simulator calls the two phases separately (all heads first, then all
/// followers) so the follower phase can shard across threads.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn update_lane(
    net: &mut NetworkLanes,
    r: usize,
    l: usize,
    length: f64,
    head_mode: HeadMode,
    cfg: &MicroSimConfig,
    rng: &mut SmallRng,
) -> Option<(u32, u64)> {
    let spec = SensorSpec::for_road(length, cfg);
    let mut noise = DawdleSource::Stream(rng);
    let outcome = advance_head(net, r, l, length, head_mode, cfg, spec, &mut noise, None);
    let DawdleSource::Stream(rng) = noise else {
        unreachable!()
    };
    let (mut view, spans, _) = net.follower_parts();
    let span = spans[r];
    advance_followers(&mut view, &span, l, length, cfg, spec, rng, None);
    outcome.crossed
}

fn dawdle(cfg: &MicroSimConfig, rng: &mut SmallRng) -> f64 {
    if cfg.sigma > 0.0 {
        rng.gen::<f64>()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> MicroSimConfig {
        MicroSimConfig::deterministic()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    /// A one-road, one-lane arena for the lane-level tests.
    fn lane() -> NetworkLanes {
        NetworkLanes::new(&[(1, 1)])
    }

    /// Pushes a vehicle (slot doubles as the test's vehicle id). Sensor
    /// counters live in the road's dense arrays, which these lane-level
    /// tests validate through `rescan_sensors` instead.
    fn push(net: &mut NetworkLanes, slot: u32, pos: f64, speed: f64, _spec: SensorSpec) {
        net.push(0, 0, pos, speed, 0, slot, 0, slot as u64);
    }

    fn spec300() -> SensorSpec {
        SensorSpec::for_road(300.0, &cfg())
    }

    /// Runs the exact follower kernel for lane `l` of road `r` through a
    /// throwaway full-range view.
    fn followers(
        net: &mut NetworkLanes,
        r: usize,
        l: usize,
        length: f64,
        c: &MicroSimConfig,
        spec: SensorSpec,
        rng: &mut SmallRng,
    ) -> (i64, i64) {
        let (mut view, spans, _) = net.follower_parts();
        let span = spans[r];
        advance_followers(&mut view, &span, l, length, c, spec, rng, None)
    }

    /// Manual follower-kernel timing probe (not a correctness test):
    /// `cargo test -p utilbp-microsim --release -- --ignored --nocapture kernel_timing`.
    #[test]
    #[ignore = "timing probe; run manually in release"]
    fn kernel_timing_probe() {
        use std::time::Instant;
        let c = MicroSimConfig::default();
        // Bench-workload shape: a handful of short occupied lanes per
        // road (mean occupied length ~4 at 10x10).
        const LANES: usize = 4;
        const N: usize = 4;
        const ITERS: usize = 500_000;
        let mut net = NetworkLanes::new(&[(LANES, 2 * N)]);
        let spec = SensorSpec::for_road(1000.0, &c);
        for l in 0..LANES {
            for i in 0..N {
                let s = (l * N + i) as u32;
                net.push(0, l, 900.0 - 15.0 * i as f64, 8.0, 0, s, 0, s as u64);
            }
        }
        let saved_pv = net.pv.clone();
        let mut r = rng();
        let t = Instant::now();
        for k in 0..ITERS {
            if k % 64 == 0 {
                net.pv.copy_from_slice(&saved_pv);
            }
            let (mut view, spans, _) = net.follower_parts();
            let span = spans[0];
            for l in 0..LANES {
                advance_followers(&mut view, &span, l, 1000.0, &c, spec, &mut r, None);
            }
        }
        let per = (ITERS * LANES * N) as f64;
        let exact_ns = t.elapsed().as_secs_f64() * 1e9 / per;
        let mut ld = [0u32; LANES];
        let mut lh = [0u32; LANES];
        let t = Instant::now();
        for k in 0..ITERS {
            if k % 64 == 0 {
                net.pv.copy_from_slice(&saved_pv);
            }
            let (mut view, spans, _) = net.follower_parts();
            let span = spans[0];
            advance_followers_batched_road(
                &mut view, &span, 1000.0, &c, spec, 7, k as u64, None, &mut ld, &mut lh,
            );
        }
        let batched_ns = t.elapsed().as_secs_f64() * 1e9 / per;
        eprintln!("exact {exact_ns:.2} ns/vehicle, batched {batched_ns:.2} ns/vehicle");
    }

    #[test]
    fn empty_lane_is_a_noop() {
        let mut net = lane();
        assert!(
            update_lane(&mut net, 0, 0, 300.0, HeadMode::Release, &cfg(), &mut rng()).is_none()
        );
    }

    #[test]
    fn blocked_head_stops_at_the_line() {
        let c = cfg();
        let mut net = lane();
        push(&mut net, 0, 250.0, c.free_speed_mps, spec300());
        let mut r = rng();
        for _ in 0..30 {
            let crossed = update_lane(&mut net, 0, 0, 300.0, HeadMode::Blocked, &c, &mut r);
            assert!(crossed.is_none(), "blocked head must never cross");
        }
        assert!(net.speed_at(0, 0, 0) < 0.05);
        assert!(net.pos_at(0, 0, 0) <= 300.0 + 1e-9);
        assert!(
            net.pos_at(0, 0, 0) > 290.0,
            "head pos {}",
            net.pos_at(0, 0, 0)
        );
    }

    #[test]
    fn released_head_crosses_and_is_returned() {
        let c = cfg();
        let mut net = lane();
        push(&mut net, 7, 295.0, 10.0, spec300());
        let mut r = rng();
        let crossed = update_lane(&mut net, 0, 0, 300.0, HeadMode::Release, &c, &mut r);
        let (slot, _wait) = crossed.expect("head must cross");
        assert_eq!(slot, 7);
        assert!(net.is_empty(0, 0));
        assert_eq!(net.rescan_sensors(0, 0, spec300()), (0, 0));
    }

    #[test]
    fn queue_compacts_without_collisions() {
        let c = cfg();
        let mut net = lane();
        // Five vehicles strung out; head blocked at the line.
        for (i, pos) in [280.0, 220.0, 160.0, 100.0, 40.0].iter().enumerate() {
            push(&mut net, i as u32, *pos, 10.0, spec300());
        }
        let mut r = rng();
        for _ in 0..80 {
            update_lane(&mut net, 0, 0, 300.0, HeadMode::Blocked, &c, &mut r);
            // Strict ordering with at least a vehicle length between
            // consecutive front bumpers.
            for w in 0..net.len(0, 0) - 1 {
                let gap = net.pos_at(0, 0, w) - net.pos_at(0, 0, w + 1);
                assert!(
                    gap >= c.vehicle_length_m - 1e-6,
                    "overlap after step: gap {gap}"
                );
            }
        }
        // All stopped in a jam near the line at ~7.5 m spacing.
        for w in 0..net.len(0, 0) - 1 {
            let gap = net.pos_at(0, 0, w) - net.pos_at(0, 0, w + 1);
            assert!(
                (gap - c.jam_spacing_m()).abs() < 0.6,
                "jam spacing violated: {gap}"
            );
        }
    }

    #[test]
    fn detection_counts_only_near_the_stop_line() {
        let mut net = lane();
        net.push(0, 0, 295.0, 0.0, 0, 0, 0, 0);
        net.push(0, 0, 287.0, 0.0, 0, 1, 0, 1);
        net.push(0, 0, 100.0, 10.0, 0, 2, 0, 2); // far upstream
        assert_eq!(net.detected(0, 0, 300.0, 100.0), 2);
        assert_eq!(net.detected(0, 0, 300.0, 300.0), 3);
        assert_eq!(net.detected(0, 0, 300.0, 1.0), 0);
    }

    #[test]
    fn entry_clearance_respects_jam_spacing() {
        let c = cfg();
        let mut net = lane();
        assert!(net.entry_clear(0, 0, 300.0, &c), "empty lane is clear");
        net.push(0, 0, 8.0, 0.0, 0, 0, 0, 0);
        assert!(net.entry_clear(0, 0, 300.0, &c));
        net.push(0, 0, 6.0, 0.0, 0, 1, 0, 1);
        assert!(!net.entry_clear(0, 0, 300.0, &c), "tail at 6 m < 7.5 m");
        assert_eq!(net.tail_position(0, 0, 300.0), 6.0);
    }

    #[test]
    fn successor_of_crossed_head_sees_the_line() {
        let c = cfg();
        let mut net = lane();
        push(&mut net, 0, 296.0, 12.0, spec300());
        push(&mut net, 1, 285.0, 12.0, spec300());
        let mut r = rng();
        let crossed = update_lane(&mut net, 0, 0, 300.0, HeadMode::Release, &c, &mut r);
        assert!(crossed.is_some());
        assert_eq!(net.len(0, 0), 1);
        // The successor advanced but is still on the lane.
        assert!(net.pos_at(0, 0, 0) < 300.0);
        assert!(net.pos_at(0, 0, 0) > 285.0);
    }

    #[test]
    fn advance_deltas_track_every_mutation() {
        // The advance functions report sensor-counter deltas; applied to a
        // running pair they must match a from-scratch rescan every step —
        // the invariant `MicroSim` relies on for its dense counter arrays.
        let c = cfg();
        let spec = spec300();
        let mut net = lane();
        // One vehicle upstream of the 50 m window, one inside it, halted.
        push(&mut net, 0, 270.0, 0.0, spec);
        push(&mut net, 1, 100.0, 13.0, spec);
        let (mut detected, mut halted) = net.rescan_sensors(0, 0, spec);
        assert_eq!((detected, halted), (1, 1));

        let mut r = rng();
        for _ in 0..60 {
            let outcome = {
                let mut noise = DawdleSource::Stream(&mut r);
                advance_head(
                    &mut net,
                    0,
                    0,
                    300.0,
                    HeadMode::Blocked,
                    &c,
                    spec,
                    &mut noise,
                    None,
                )
            };
            let (dd, hd) = followers(&mut net, 0, 0, 300.0, &c, spec, &mut r);
            detected = (detected as i64 + outcome.detected_delta as i64 + dd) as u32;
            halted = (halted as i64 + outcome.halted_delta as i64 + hd) as u32;
            assert_eq!(
                (detected, halted),
                net.rescan_sensors(0, 0, spec),
                "deltas diverged from rescan"
            );
        }
        // Both vehicles end up jammed inside the window.
        assert_eq!((detected, halted), (2, 2));
    }

    #[test]
    fn waiting_accumulates_in_place_for_stopped_vehicles() {
        let c = cfg();
        let spec = spec300();
        let mut net = lane();
        push(&mut net, 0, 299.0, 0.0, spec);
        push(&mut net, 1, 150.0, c.free_speed_mps, spec);
        let mut r = rng();
        for _ in 0..40 {
            update_lane(&mut net, 0, 0, 300.0, HeadMode::Blocked, &c, &mut r);
        }
        // The head sat at the line the whole time; the follower drove,
        // then queued behind it.
        let waits: Vec<u64> = net.all_waits().collect();
        assert!(waits[0] >= 39, "head wait {waits:?}");
        assert!(
            waits[1] > 0 && waits[1] < waits[0],
            "follower waits less: {waits:?}"
        );
    }

    #[test]
    fn pop_head_compacts_storage() {
        let spec = spec300();
        let c = cfg();
        let mut net = lane();
        for i in 0..100u32 {
            push(
                &mut net,
                i,
                299.0 - f64::from(i) * c.jam_spacing_m(),
                0.0,
                spec,
            );
        }
        for expect in 0..60u32 {
            let (slot, _) = net.pop_head(0, 0);
            assert_eq!(slot, expect);
            assert_eq!(net.len(0, 0), (99 - expect) as usize);
        }
        // Offset-based dequeue must have compacted by now.
        assert!(
            net.head(0, 0) < 40,
            "storage not compacted: head {}",
            net.head(0, 0)
        );
        assert_eq!(net.slot_at(0, 0, 0), 60);
        assert_eq!(
            net.tail_position(0, 0, 300.0),
            net.pos_at(0, 0, net.len(0, 0) - 1)
        );
    }

    #[test]
    fn segmented_storage_grows_without_losing_content() {
        // A road sized for a single resident vehicle per lane must
        // re-segment transparently when overfilled from a head-zero
        // state (the cold growth path), preserving order and content.
        let mut net = NetworkLanes::new(&[(2, 1)]);
        let initial_seg = net.seg(0);
        for i in 0..(2 * initial_seg) as u32 {
            net.push(
                0,
                1,
                1000.0 - f64::from(i),
                3.0,
                u64::from(i),
                i,
                2,
                u64::from(i),
            );
        }
        assert!(net.seg(0) > initial_seg, "road must have re-segmented");
        assert_eq!(net.len(0, 1), 2 * initial_seg);
        assert!(net.is_empty(0, 0), "other lanes untouched");
        for i in 0..net.len(0, 1) {
            assert_eq!(net.pos_at(0, 1, i), 1000.0 - i as f64);
            assert_eq!(net.slot_at(0, 1, i), i as u32);
            assert_eq!(net.link_at(0, 1, i), 2);
        }
        let waits: Vec<u64> = net.all_waits().collect();
        assert_eq!(waits.len(), net.len(0, 1));
        assert_eq!(waits[5], 5);
    }

    #[test]
    fn growth_relayouts_without_disturbing_other_roads() {
        // Overflow road 0 while roads 1 and 2 hold traffic: only road
        // 0's stride changes; every road's logical content survives the
        // re-layout (regions shift, content does not).
        let mut net = NetworkLanes::new(&[(1, 1), (2, 1), (1, 1)]);
        net.push(1, 1, 42.0, 3.0, 9, 100, 4, 100);
        net.push(2, 0, 77.0, 1.0, 2, 200, 5, 200);
        let (seg1, seg2) = (net.seg(1), net.seg(2));
        let overfill = net.seg(0) + 1;
        for i in 0..overfill as u32 {
            net.push(0, 0, 900.0 - f64::from(i), 2.0, 0, i, 0, u64::from(i));
        }
        assert!(net.seg(0) > seg1, "road 0 re-segmented");
        assert_eq!(net.seg(1), seg1, "road 1 stride untouched");
        assert_eq!(net.seg(2), seg2, "road 2 stride untouched");
        assert_eq!(net.len(0, 0), overfill);
        for i in 0..overfill {
            assert_eq!(net.pos_at(0, 0, i), 900.0 - i as f64);
            assert_eq!(net.slot_at(0, 0, i), i as u32);
        }
        assert_eq!(net.pos_at(1, 1, 0), 42.0);
        assert_eq!(net.slot_at(1, 1, 0), 100);
        assert_eq!(net.link_at(1, 1, 0), 4);
        assert_eq!(net.pos_at(2, 0, 0), 77.0);
        let waits: Vec<u64> = net.all_waits().collect();
        assert_eq!(waits[overfill], 9, "road 1's wait survives the re-layout");
        net.verify_active().unwrap();
        assert_eq!(net.active_roads(), &[0, 1, 2]);
    }

    #[test]
    fn active_list_tracks_occupancy() {
        let mut net = NetworkLanes::new(&[(2, 4), (1, 4), (3, 4)]);
        assert!(net.active_roads().is_empty());
        net.push(1, 0, 50.0, 0.0, 0, 0, 0, 0);
        assert_eq!(net.active_roads(), &[1]);
        net.push(2, 2, 10.0, 1.0, 0, 1, 0, 1);
        net.push(0, 1, 20.0, 2.0, 0, 2, 0, 2);
        assert_eq!(net.active_roads(), &[0, 1, 2], "sorted registration");
        net.verify_active().unwrap();
        net.pop_head(1, 0);
        assert_eq!(net.active_roads(), &[0, 2], "drained road deregisters");
        // A road with several occupied lanes stays active until the last
        // vehicle pops.
        net.push(0, 0, 30.0, 0.0, 0, 3, 0, 3);
        net.pop_head(0, 1);
        assert_eq!(net.active_roads(), &[0, 2]);
        net.pop_head(0, 0);
        net.pop_head(2, 2);
        assert!(net.active_roads().is_empty());
        net.verify_active().unwrap();
        assert_eq!(net.total_vehicles(), 0);
    }

    #[test]
    fn steady_churn_never_regrows_storage() {
        // Landing/crossing churn at the plateau: the offset dequeue plus
        // amortized compaction keeps the arena's stride and allocation
        // fixed — the property `tests/perf_alloc.rs` measures end to end.
        let mut net = NetworkLanes::new(&[(1, 8)]);
        let seg0 = net.seg(0);
        for i in 0..8u32 {
            net.push(0, 0, 300.0 - f64::from(i) * 8.0, 0.0, 0, i, 0, u64::from(i));
        }
        let ptr = net.pv.as_ptr();
        for i in 8..5000u32 {
            net.pop_head(0, 0);
            net.push(0, 0, 0.0, 0.0, 0, i, 0, u64::from(i));
        }
        assert_eq!(net.seg(0), seg0, "stride stable under churn");
        assert!(
            std::ptr::eq(ptr, net.pv.as_ptr()),
            "no reallocation under churn"
        );
        assert_eq!(net.len(0, 0), 8);
        net.verify_active().unwrap();
    }

    #[test]
    fn load_lane_keeps_the_active_list_consistent() {
        // Restoring a lane over existing content must reconcile the live
        // count and the active list, both directions (emptying a road,
        // filling an empty one).
        let mut src = NetworkLanes::new(&[(1, 4), (1, 4)]);
        src.push(0, 0, 120.0, 5.0, 3, 11, 1, 11);
        src.push(0, 0, 80.0, 4.0, 0, 12, 1, 12);
        let mut w = StateWriter::new();
        src.save_lane(0, 0, &mut w);
        let empty = {
            let mut w = StateWriter::new();
            NetworkLanes::new(&[(1, 4)]).save_lane(0, 0, &mut w);
            w
        };

        let mut dst = NetworkLanes::new(&[(1, 4), (1, 4)]);
        dst.push(1, 0, 10.0, 0.0, 0, 99, 0, 99);
        let words = w.into_words();
        dst.load_lane(0, 0, &mut StateReader::new(&words)).unwrap();
        assert_eq!(dst.active_roads(), &[0, 1]);
        assert_eq!(dst.len(0, 0), 2);
        assert_eq!(dst.pos_at(0, 0, 0), 120.0);
        dst.verify_active().unwrap();
        // Now overwrite the occupied lane with an empty snapshot: the
        // road must deactivate.
        let empty_words = empty.into_words();
        dst.load_lane(1, 0, &mut StateReader::new(&empty_words))
            .unwrap();
        assert_eq!(dst.active_roads(), &[0]);
        dst.verify_active().unwrap();
    }

    #[test]
    fn arena_recycles_slots() {
        use utilbp_core::LinkId;
        use utilbp_netgen::{IntersectionId, RoadId};
        let route = Arc::new(Route::new(
            RoadId::new(0),
            vec![(IntersectionId::new(0), LinkId::new(0))],
        ));
        let mut arena = VehicleArena::new();
        let a = arena.insert(VehicleId::new(10), Arc::clone(&route));
        let b = arena.insert(VehicleId::new(11), Arc::clone(&route));
        assert_ne!(a, b);
        assert_eq!(arena.id(a), VehicleId::new(10));
        arena.bump_hop(a);
        assert_eq!(arena.hop(a), 1);
        assert_eq!(arena.release(a), VehicleId::new(10));
        // The freed slot is reused (LIFO) and starts a fresh cursor.
        let c = arena.insert(VehicleId::new(12), route);
        assert_eq!(c, a);
        assert_eq!(arena.hop(c), 0);
        assert_eq!(arena.id(c), VehicleId::new(12));
        assert_eq!(arena.id(b), VehicleId::new(11));
    }
}
