//! The data-oriented vehicle arena, SoA lanes, and the per-lane
//! car-following update.
//!
//! ## Layout
//!
//! Vehicle state is split by access pattern instead of being stored as an
//! array of `Vehicle` structs:
//!
//! - **Hot, per-tick state** — position, speed, and the waiting-tick
//!   accumulator — lives in parallel arrays *inside each [`Lane`]*
//!   (struct-of-arrays). The Krauss car-following phase streams over
//!   contiguous `f64` slices per lane, touching nothing else.
//! - **Cold, per-journey state** — the external [`VehicleId`], the
//!   `Arc<Route>`, and the route cursor (`hop`) — lives in the
//!   [`VehicleArena`], a slab keyed by a compact `u32` slot carried in the
//!   lane arrays. Only the serial phases (head release, landings,
//!   insertions, completions) dereference it.
//! - The movement link a vehicle queues for is fixed while it is on a
//!   road, so each lane also caches it as a `u16` per vehicle — the
//!   `SharedMixed` movement counters never chase the `Arc<Route>` in the
//!   hot loop.
//!
//! Lanes are FIFO (single file, no overtaking): index order *is* position
//! order, head first. Dequeuing a crossed head advances a `head` offset
//! instead of shifting the arrays; storage is compacted amortizedly.
//!
//! ## Incremental sensing
//!
//! Sensor counters (vehicles inside the detection window, halted
//! vehicles) live as dense per-lane arrays on the *road* (see
//! `RoadSim` in the simulator), not on the lanes: the sense phase then
//! reads short contiguous arrays instead of walking lane storage. The
//! advance functions here return per-step counter deltas — computed at
//! the *only* points where a vehicle's position or speed can change —
//! which the road folds into its arrays and sums; crossings, landings,
//! and insertions adjust them directly. The invariant (counter ≡ rescan
//! under the same [`SensorSpec`], via [`Lane::rescan_sensors`]) is
//! enforced by `MicroSim::verify_sensors` and a dedicated regression
//! test.
//!
//! ## Waiting accumulators
//!
//! A vehicle's waiting ticks (speed below the SUMO threshold) accumulate
//! in the lane's `wait` array in the same pass that moves the vehicle,
//! ride along through junction boxes, and are flushed to the
//! `WaitingLedger` exactly once, at journey completion. Nothing scans the
//! fleet per tick to account waiting.

use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use utilbp_core::state::{StateError, StateReader, StateWriter};
use utilbp_core::LinkId;
use utilbp_metrics::VehicleId;
use utilbp_netgen::{IntersectionId, RoadId, Route};

use crate::config::MicroSimConfig;
use crate::krauss::{next_speed, LeaderInfo};

/// Lane-cached movement link of vehicles on boundary exit roads (no
/// downstream junction, hence no movement).
pub(crate) const LINK_NONE: u16 = u16::MAX;

/// Slab of per-journey vehicle state, keyed by a compact `u32` slot.
///
/// Slots are recycled through a free list (LIFO), so the slab stays as
/// dense as the peak concurrent fleet. A freed slot keeps its stale
/// `Arc<Route>` in place until reuse — routes are shared from the demand
/// generators' caches, so the extra reference is a few bytes, and it
/// spares the slab an `Option` per entry.
#[derive(Debug, Clone, Default)]
pub(crate) struct VehicleArena {
    id: Vec<VehicleId>,
    route: Vec<Arc<Route>>,
    hop: Vec<u32>,
    free: Vec<u32>,
}

impl VehicleArena {
    /// An empty arena.
    pub fn new() -> Self {
        VehicleArena::default()
    }

    /// Admits a vehicle starting its route; returns its slot.
    pub fn insert(&mut self, id: VehicleId, route: Arc<Route>) -> u32 {
        match self.free.pop() {
            Some(slot) => {
                let i = slot as usize;
                self.id[i] = id;
                self.route[i] = route;
                self.hop[i] = 0;
                slot
            }
            None => {
                self.id.push(id);
                self.route.push(route);
                self.hop.push(0);
                (self.id.len() - 1) as u32
            }
        }
    }

    /// Retires a slot (journey complete); returns the external id.
    pub fn release(&mut self, slot: u32) -> VehicleId {
        self.free.push(slot);
        self.id[slot as usize]
    }

    /// The external id of a live slot.
    pub fn id(&self, slot: u32) -> VehicleId {
        self.id[slot as usize]
    }

    /// The route of a live slot.
    pub fn route(&self, slot: u32) -> &Arc<Route> {
        &self.route[slot as usize]
    }

    /// The route cursor: index of the next intersection to cross
    /// (== route length once on a boundary exit road).
    pub fn hop(&self, slot: u32) -> usize {
        self.hop[slot as usize] as usize
    }

    /// Advances the route cursor past a crossed intersection.
    pub fn bump_hop(&mut self, slot: u32) {
        self.hop[slot as usize] += 1;
    }

    /// Replaces a live slot's route (en-route replanning). The caller
    /// must preserve every hop up to and including the current cursor —
    /// the vehicle's lane (and, while crossing, its destination lane) is
    /// bound to that movement, and the lanes cache its link index.
    pub fn set_route(&mut self, slot: u32, route: Arc<Route>) {
        let i = slot as usize;
        debug_assert!(
            route.hops()[..=self.hop[i] as usize] == self.route[i].hops()[..=self.hop[i] as usize],
            "replanned route must preserve the committed prefix"
        );
        self.route[i] = route;
    }

    /// Serializes the slab: the free list exactly (its LIFO order decides
    /// future slot assignment, hence determinism), live slots in full,
    /// and freed slots not at all — their stale ids and routes are
    /// allocator residue, so normalizing them away makes
    /// save → load → save a byte-level fixed point.
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.push_usize(self.id.len());
        writer.push_usize(self.free.len());
        for &slot in &self.free {
            writer.push_u32(slot);
        }
        let mut is_free = vec![false; self.id.len()];
        for &slot in &self.free {
            is_free[slot as usize] = true;
        }
        for (i, &freed) in is_free.iter().enumerate() {
            if freed {
                continue;
            }
            writer.push(self.id[i].raw());
            writer.push_u32(self.hop[i]);
            self.route[i].save_state(writer);
        }
    }

    /// Restores a slab saved by [`save_state`](Self::save_state). Freed
    /// slots come back holding a shared placeholder route until reuse.
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a truncated stream or a free-list
    /// entry out of range.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let len = reader.take_usize()?;
        let free_len = reader.take_usize()?;
        let mut free = Vec::with_capacity(free_len);
        for _ in 0..free_len {
            let slot = reader.take_u32()?;
            if slot as usize >= len {
                return Err(StateError::Invalid {
                    what: "arena free slot",
                    word: u64::from(slot),
                });
            }
            free.push(slot);
        }
        let placeholder = Arc::new(Route::new(
            RoadId::new(0),
            vec![(IntersectionId::new(0), LinkId::new(0))],
        ));
        let mut is_free = vec![false; len];
        for &slot in &free {
            is_free[slot as usize] = true;
        }
        self.id.clear();
        self.route.clear();
        self.hop.clear();
        self.id.resize(len, VehicleId::new(0));
        self.route.resize(len, Arc::clone(&placeholder));
        self.hop.resize(len, 0);
        for (i, &freed) in is_free.iter().enumerate() {
            if freed {
                continue;
            }
            self.id[i] = VehicleId::new(reader.take()?);
            self.hop[i] = reader.take_u32()?;
            self.route[i] = Arc::new(Route::load_state(reader)?);
        }
        self.free = free;
        Ok(())
    }
}

/// The fixed sensor geometry of one road's lanes: everything needed to
/// classify a vehicle for the incremental counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SensorSpec {
    /// Stop-line-relative detector start: a vehicle at `pos >=
    /// detect_from` is inside the detection window. `NEG_INFINITY` for an
    /// infinite detector range.
    pub detect_from: f64,
    /// Speed below which a vehicle counts as halted.
    pub halt_speed: f64,
}

impl SensorSpec {
    /// The spec for a road of `length` under `cfg`.
    pub fn for_road(length: f64, cfg: &MicroSimConfig) -> Self {
        SensorSpec {
            detect_from: if cfg.detection_range_m.is_finite() {
                length - cfg.detection_range_m
            } else {
                f64::NEG_INFINITY
            },
            halt_speed: cfg.halt_speed_mps,
        }
    }
}

/// A single-file lane in struct-of-arrays layout. Index `head` is the
/// vehicle closest to the stop line; positions are strictly decreasing
/// from there.
#[derive(Debug, Clone, Default)]
pub(crate) struct Lane {
    /// `[position, speed]` per vehicle, interleaved: the car-following
    /// update always reads and writes both, so pairing them halves the
    /// cache lines a short lane touches. Positions are meters from the
    /// lane start (the stop line is at the lane length); valid range
    /// `head..`.
    pv: Vec<[f64; 2]>,
    /// Accumulated waiting ticks (flushed to the ledger at completion).
    /// `u32` on purpose: 2³² waiting ticks is 136 simulated years, and
    /// the narrower accumulator keeps the array out of the hot loop's
    /// cache budget except when a vehicle is actually waiting.
    wait: Vec<u32>,
    /// [`VehicleArena`] slot per vehicle.
    slot: Vec<u32>,
    /// Cached movement link index at the road's destination intersection
    /// ([`LINK_NONE`] on exit-road lanes). Never changes on-road.
    link: Vec<u16>,
    /// Index of the current head vehicle (offset dequeue — popping the
    /// head does not shift the arrays).
    head: usize,
    /// Whether this lane's head crossed the stop line in the current
    /// step's head phase — consumed by [`advance_followers`].
    head_crossed: bool,
}

impl Lane {
    /// A lane with storage for `capacity` resident vehicles, pre-reserved
    /// at the offset-dequeue plateau so pushes never reallocate: the
    /// arrays are compacted before `head` exceeds `max(32, len - head)`,
    /// bounding the storage at twice that (plus the entry in flight).
    pub fn with_capacity(capacity: usize) -> Self {
        let reserve = 2 * capacity.max(32) + 2;
        Lane {
            pv: Vec::with_capacity(reserve),
            wait: Vec::with_capacity(reserve),
            slot: Vec::with_capacity(reserve),
            link: Vec::with_capacity(reserve),
            ..Lane::default()
        }
    }

    /// Number of vehicles on the lane.
    pub fn len(&self) -> usize {
        self.pv.len() - self.head
    }

    /// Whether the lane is empty.
    pub fn is_empty(&self) -> bool {
        self.head == self.pv.len()
    }

    /// Position of the `i`-th vehicle from the head.
    pub fn pos_at(&self, i: usize) -> f64 {
        self.pv[self.head + i][0]
    }

    /// Speed of the `i`-th vehicle from the head.
    pub fn speed_at(&self, i: usize) -> f64 {
        self.pv[self.head + i][1]
    }

    /// Arena slot of the `i`-th vehicle from the head.
    pub fn slot_at(&self, i: usize) -> u32 {
        self.slot[self.head + i]
    }

    /// Cached movement link index of the `i`-th vehicle from the head.
    pub fn link_at(&self, i: usize) -> u16 {
        self.link[self.head + i]
    }

    /// The active waiting accumulators, head first.
    pub fn waits(&self) -> impl Iterator<Item = u64> + '_ {
        self.wait[self.head..].iter().map(|&w| w as u64)
    }

    /// Appends a vehicle at the lane entry (landing or insertion). The
    /// caller must have updated the sensors via
    /// [`sensor_add`](Self::sensor_add).
    pub fn push(&mut self, pos: f64, speed: f64, wait: u64, slot: u32, link: u16) {
        self.pv.push([pos, speed]);
        self.wait.push(wait as u32);
        self.slot.push(slot);
        self.link.push(link);
    }

    /// Removes the head vehicle (stop-line crossing); returns its arena
    /// slot and accumulated waiting. Storage is compacted amortizedly, so
    /// popping is O(1) and allocation-free.
    pub fn pop_head(&mut self) -> (u32, u64) {
        let h = self.head;
        let (slot, wait) = (self.slot[h], self.wait[h]);
        self.head += 1;
        if self.head == self.pv.len() {
            self.pv.clear();
            self.wait.clear();
            self.slot.clear();
            self.link.clear();
            self.head = 0;
        } else if self.head >= 32 && self.head * 2 >= self.pv.len() {
            self.pv.drain(..self.head);
            self.wait.drain(..self.head);
            self.slot.drain(..self.head);
            self.link.drain(..self.head);
            self.head = 0;
        }
        (slot, wait as u64)
    }

    /// Position of the last vehicle (smallest `pos`), or `length` if empty
    /// — the space available at the lane entry.
    pub fn tail_position(&self, length: f64) -> f64 {
        self.pv.last().map_or(length, |pv| pv[0])
    }

    /// Whether a new vehicle can be placed at `pos = 0` while keeping jam
    /// spacing to the current tail.
    pub fn entry_clear(&self, length: f64, cfg: &MicroSimConfig) -> bool {
        self.tail_position(length) >= cfg.jam_spacing_m()
    }

    /// Number of vehicles within `range` meters of the stop line — what a
    /// presence detector reports. O(n) rescan for arbitrary ranges; the
    /// road's dense counters answer the configured detector in O(1).
    pub fn detected(&self, length: f64, range: f64) -> u32 {
        self.pv[self.head..]
            .iter()
            .filter(|pv| pv[0] >= length - range)
            .count() as u32
    }

    /// Number of *halted* vehicles (speed below `halt_speed`) within
    /// `range` meters of the stop line — what a SUMO-style jam detector
    /// reports. O(n) rescan; the road's dense counters answer whole-lane
    /// reads under the configured halt speed in O(1).
    #[allow(dead_code)] // kept for ad-hoc detector queries and tests
    pub fn halted(&self, length: f64, range: f64, halt_speed: f64) -> u32 {
        self.pv[self.head..]
            .iter()
            .filter(|pv| pv[0] >= length - range && pv[1] < halt_speed)
            .count() as u32
    }

    /// Serializes the lane's logical content (head first). The `head`
    /// offset and the already-dequeued storage prefix are amortization
    /// artifacts, not state: restoring at `head = 0` yields identical
    /// physics, and canonicalizing makes save → load → save a fixed
    /// point.
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.push_usize(self.len());
        for i in self.head..self.pv.len() {
            writer.push_f64(self.pv[i][0]);
            writer.push_f64(self.pv[i][1]);
            writer.push_u32(self.wait[i]);
            writer.push_u32(self.slot[i]);
            writer.push(u64::from(self.link[i]));
        }
    }

    /// Restores a lane saved by [`save_state`](Self::save_state),
    /// replacing the current content. `head_crossed` is intra-step
    /// scratch and resets to `false` (checkpoints are taken at tick
    /// boundaries).
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a truncated stream or a link word out
    /// of `u16` range.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let len = reader.take_usize()?;
        self.pv.clear();
        self.wait.clear();
        self.slot.clear();
        self.link.clear();
        self.head = 0;
        self.head_crossed = false;
        for _ in 0..len {
            let pos = reader.take_f64()?;
            let speed = reader.take_f64()?;
            let wait = reader.take_u32()?;
            let slot = reader.take_u32()?;
            let word = reader.take()?;
            let link = u16::try_from(word).map_err(|_| StateError::Invalid {
                what: "lane link",
                word,
            })?;
            self.pv.push([pos, speed]);
            self.wait.push(wait);
            self.slot.push(slot);
            self.link.push(link);
        }
        Ok(())
    }

    /// Recomputes both sensor counters by rescanning (used when validating
    /// the incremental-sensing invariant kept in the road's dense counter
    /// arrays).
    pub fn rescan_sensors(&self, spec: SensorSpec) -> (u32, u32) {
        let detected = self.pv[self.head..]
            .iter()
            .filter(|pv| pv[0] >= spec.detect_from)
            .count() as u32;
        let halted = self.pv[self.head..]
            .iter()
            .filter(|pv| pv[1] < spec.halt_speed)
            .count() as u32;
        (detected, halted)
    }
}

/// Per-(road, link) movement counters for mixed-lane roads.
///
/// Under [`LaneDiscipline::SharedMixed`](crate::LaneDiscipline) a
/// movement's vehicles may sit on any lane, so the per-lane counters
/// cannot answer "how many vehicles bound for link `l`?". These arrays —
/// indexed by `LinkId::index()` at the road's destination intersection —
/// are maintained incrementally at the same mutation points as the lane
/// sensors (advance, crossing, landing, insertion), turning the
/// SharedMixed detector read from a per-decision lane rescan into an O(1)
/// lookup. A vehicle's movement never changes while it is on the road,
/// which is why the lanes can cache it as a plain link index.
#[derive(Debug, Clone, Default)]
pub(crate) struct MovementCounters {
    /// Vehicles on the road bound for each link (any position).
    pub total: Vec<u32>,
    /// Vehicles bound for each link within the detection window.
    pub detected: Vec<u32>,
}

impl MovementCounters {
    /// Counters for a destination layout with `num_links` links.
    pub fn new(num_links: usize) -> Self {
        MovementCounters {
            total: vec![0; num_links],
            detected: vec![0; num_links],
        }
    }

    /// Registers a vehicle bound for `link` appearing on the road.
    pub fn add(&mut self, link: usize, pos: f64, spec: SensorSpec) {
        self.total[link] += 1;
        if pos >= spec.detect_from {
            self.detected[link] += 1;
        }
    }

    /// Registers a vehicle bound for `link` leaving the road from `pos`
    /// (crossings happen at or past the stop line, which is always inside
    /// the detector window).
    fn remove(&mut self, link: usize, pos: f64, spec: SensorSpec) {
        self.total[link] -= 1;
        if pos >= spec.detect_from {
            self.detected[link] -= 1;
        }
    }

    /// Registers an in-place movement across the detector boundary.
    fn moved(&mut self, link: usize, old_pos: f64, new_pos: f64, spec: SensorSpec) {
        match (old_pos >= spec.detect_from, new_pos >= spec.detect_from) {
            (false, true) => self.detected[link] += 1,
            (true, false) => self.detected[link] -= 1,
            _ => {}
        }
    }

    /// Serializes both counter arrays.
    pub fn save_state(&self, writer: &mut StateWriter) {
        writer.push_usize(self.total.len());
        for &v in &self.total {
            writer.push_u32(v);
        }
        for &v in &self.detected {
            writer.push_u32(v);
        }
    }

    /// Restores counters saved by [`save_state`](Self::save_state).
    ///
    /// # Errors
    ///
    /// Returns a [`StateError`] on a truncated stream or a link count
    /// that disagrees with this road's layout.
    pub fn load_state(&mut self, reader: &mut StateReader<'_>) -> Result<(), StateError> {
        let len = reader.take_usize()?;
        if len != self.total.len() {
            return Err(StateError::Invalid {
                what: "movement counter width",
                word: len as u64,
            });
        }
        for v in &mut self.total {
            *v = reader.take_u32()?;
        }
        for v in &mut self.detected {
            *v = reader.take_u32()?;
        }
        Ok(())
    }
}

/// What the head vehicle of a lane faces this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeadMode {
    /// Green with space downstream: the head may drive through the stop
    /// line (and is returned as crossed when its front passes it).
    Release,
    /// Red/amber or blocked downstream: the stop line is a wall.
    Blocked,
}

/// The outcome of one head advance: the crossed vehicle (arena slot +
/// accumulated waiting), if any, plus the lane's sensor-counter deltas
/// for the caller to fold into the road's dense counter arrays.
pub(crate) struct HeadOutcome {
    /// `Some((slot, wait))` if the head crossed the stop line.
    pub crossed: Option<(u32, u64)>,
    /// Detection-window occupancy delta.
    pub detected_delta: i32,
    /// Halted-count delta.
    pub halted_delta: i32,
}

/// Advances only the head vehicle by one step, popping it and returning
/// it in the outcome if it crossed the stop line under
/// [`HeadMode::Release`]. Records the crossing on the lane so the
/// follower phase ([`advance_followers`]) can run later — possibly on
/// another thread — without re-deriving it.
///
/// If the head stays on the lane at waiting speed, its wait accumulator
/// is incremented in place (a crossed head is in the junction box, not
/// waiting).
pub(crate) fn advance_head(
    lane: &mut Lane,
    length: f64,
    head_mode: HeadMode,
    cfg: &MicroSimConfig,
    spec: SensorSpec,
    rng: &mut SmallRng,
    mut movements: Option<&mut MovementCounters>,
) -> HeadOutcome {
    lane.head_crossed = false;
    if lane.is_empty() {
        return HeadOutcome {
            crossed: None,
            detected_delta: 0,
            halted_delta: 0,
        };
    }

    let h = lane.head;
    let [old_pos, old_speed] = lane.pv[h];
    let leader = match head_mode {
        HeadMode::Release => LeaderInfo::Free,
        HeadMode::Blocked => LeaderInfo::Wall {
            distance_m: length - old_pos,
        },
    };
    let xi = dawdle(cfg, rng);
    let new_speed = next_speed(old_speed, leader, xi, cfg);
    let new_pos = old_pos + new_speed * cfg.dt_seconds;
    lane.pv[h] = [new_pos, new_speed];
    let link = lane.link[h];
    if let Some(mv) = movements.as_deref_mut() {
        mv.moved(link as usize, old_pos, new_pos, spec);
    }

    let was_detected = (old_pos >= spec.detect_from) as i32;
    let was_halted = (old_speed < spec.halt_speed) as i32;
    if head_mode == HeadMode::Release && new_pos >= length {
        lane.head_crossed = true;
        if let Some(mv) = movements {
            mv.remove(link as usize, new_pos, spec);
        }
        // Moved then left: the net effect is removing the old state.
        return HeadOutcome {
            crossed: Some(lane.pop_head()),
            detected_delta: -was_detected,
            halted_delta: -was_halted,
        };
    }
    if new_speed < cfg.waiting_speed_mps {
        lane.wait[h] += 1;
    }
    HeadOutcome {
        crossed: None,
        detected_delta: (new_pos >= spec.detect_from) as i32 - was_detected,
        halted_delta: (new_speed < spec.halt_speed) as i32 - was_halted,
    }
}

/// Advances every remaining vehicle of the lane (sequential
/// front-to-back Krauss update with an anti-overlap clamp), streaming
/// over the lane's contiguous position/speed/wait arrays. Must be called
/// exactly once after [`advance_head`] each step; independent across
/// lanes and roads, which is what the parallel car-following phase
/// shards. Vehicles ending the step at waiting speed accumulate a
/// waiting tick in place. Returns `(detected_delta, halted_delta)` for
/// the caller's dense counter arrays.
pub(crate) fn advance_followers(
    lane: &mut Lane,
    length: f64,
    cfg: &MicroSimConfig,
    spec: SensorSpec,
    rng: &mut SmallRng,
    mut movements: Option<&mut MovementCounters>,
) -> (i64, i64) {
    let start = if lane.head_crossed { 0 } else { 1 };
    lane.head_crossed = false;
    if lane.len() <= start {
        return (0, 0);
    }
    let mut detected_delta = 0i64;
    let mut halted_delta = 0i64;
    // Leader state of vehicle `i` (updated before `i` moves, so each
    // follower reacts to its leader's already-advanced state, as in the
    // sequential front-to-back Krauss update). `INFINITY` position marks
    // "no leader; the stop line is the obstacle" — the case right after
    // the head crossed (its successor is re-evaluated for release next
    // step).
    let mut leader_pos = f64::INFINITY;
    let mut leader_speed = 0.0;

    let h = lane.head;
    let n = lane.pv.len() - h;
    let pv = &mut lane.pv[h..];
    let wait = &mut lane.wait[h..][..n];
    let link = &lane.link[h..][..n];
    if start == 1 {
        [leader_pos, leader_speed] = pv[0];
    }
    // Hoisted config scalars. `a_dt` and `sigma_a_dt` associate exactly as
    // the inline expressions they replace (`speed + a·Δt` computes `a·Δt`
    // first; `σ·a·Δt·ξ` associates left), so results are bit-identical.
    let dt = cfg.dt_seconds;
    let veh_len = cfg.vehicle_length_m;
    let min_gap = cfg.min_gap_m;
    let waiting_speed = cfg.waiting_speed_mps;
    let free_speed = cfg.free_speed_mps;
    let a_dt = cfg.max_accel * cfg.dt_seconds;
    let sigma_a_dt = cfg.sigma * cfg.max_accel * cfg.dt_seconds;
    let dawdling = cfg.sigma > 0.0;
    let tau = cfg.reaction_time_s;
    let decel = cfg.max_decel;
    let (detect_from, halt_speed) = (spec.detect_from, spec.halt_speed);

    let mut i = start;
    // At most one follower faces the stop line instead of a vehicle: the
    // new head right after a crossing (`leader_pos` infinite). Peeling it
    // keeps the main loop free of the leader-kind branch.
    if !leader_pos.is_finite() && i < n {
        let [old_pos, old_speed] = pv[i];
        let xi = dawdle(cfg, rng);
        let v = next_speed(
            old_speed,
            LeaderInfo::Wall {
                distance_m: length - old_pos,
            },
            xi,
            cfg,
        );
        let p = old_pos + v * dt;
        pv[i] = [p, v];
        detected_delta += (p >= detect_from) as i64 - (old_pos >= detect_from) as i64;
        halted_delta += (v < halt_speed) as i64 - (old_speed < halt_speed) as i64;
        if let Some(mv) = movements.as_deref_mut() {
            mv.moved(link[i] as usize, old_pos, p, spec);
        }
        if v < waiting_speed {
            wait[i] += 1;
        }
        (leader_pos, leader_speed) = (p, v);
        i += 1;
    }
    // Tight vehicle-leader loop: the Krauss update inlined with the same
    // operation order as `next_speed`/`safe_speed`.
    for i in i..n {
        let [old_pos, old_speed] = pv[i];
        let xi = if dawdling { rng.gen::<f64>() } else { 0.0 };
        let net_gap = leader_pos - old_pos - veh_len - min_gap;
        let v_bar = (old_speed + leader_speed) / 2.0;
        let v_safe = leader_speed + (net_gap - leader_speed * tau) / (v_bar / decel + tau);
        let v_des = free_speed.min(old_speed + a_dt).min(v_safe);
        let mut v = (v_des - sigma_a_dt * xi).max(0.0);
        let mut p = old_pos + v * dt;
        // Anti-overlap safety clamp (numerical guard; Krauss alone is
        // collision-free for consistent inputs).
        let max_pos = leader_pos - veh_len - 0.05;
        if p > max_pos {
            p = max_pos.max(old_pos);
            v = ((p - old_pos) / dt).max(0.0);
        }
        pv[i] = [p, v];
        detected_delta += (p >= detect_from) as i64 - (old_pos >= detect_from) as i64;
        halted_delta += (v < halt_speed) as i64 - (old_speed < halt_speed) as i64;
        if let Some(mv) = movements.as_deref_mut() {
            mv.moved(link[i] as usize, old_pos, p, spec);
        }
        if v < waiting_speed {
            wait[i] += 1;
        }
        (leader_pos, leader_speed) = (p, v);
    }
    (detected_delta, halted_delta)
}

/// Advances every vehicle in the lane by one step. Returns the head's
/// `(slot, wait)` if it crossed the stop line under [`HeadMode::Release`].
///
/// Composition of [`advance_head`] and [`advance_followers`]; the
/// simulator calls the two phases separately (all heads first, then all
/// followers) so the follower phase can shard across threads.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn update_lane(
    lane: &mut Lane,
    length: f64,
    head_mode: HeadMode,
    cfg: &MicroSimConfig,
    rng: &mut SmallRng,
) -> Option<(u32, u64)> {
    let spec = SensorSpec::for_road(length, cfg);
    let outcome = advance_head(lane, length, head_mode, cfg, spec, rng, None);
    advance_followers(lane, length, cfg, spec, rng, None);
    outcome.crossed
}

fn dawdle(cfg: &MicroSimConfig, rng: &mut SmallRng) -> f64 {
    if cfg.sigma > 0.0 {
        rng.gen::<f64>()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn cfg() -> MicroSimConfig {
        MicroSimConfig::deterministic()
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    /// Pushes a vehicle (slot doubles as the test's vehicle id). Sensor
    /// counters live in the road's dense arrays, which these lane-level
    /// tests validate through `rescan_sensors` instead.
    fn push(lane: &mut Lane, slot: u32, pos: f64, speed: f64, _spec: SensorSpec) {
        lane.push(pos, speed, 0, slot, 0);
    }

    fn spec300() -> SensorSpec {
        SensorSpec::for_road(300.0, &cfg())
    }

    #[test]
    fn empty_lane_is_a_noop() {
        let mut lane = Lane::default();
        assert!(update_lane(&mut lane, 300.0, HeadMode::Release, &cfg(), &mut rng()).is_none());
    }

    #[test]
    fn blocked_head_stops_at_the_line() {
        let c = cfg();
        let mut lane = Lane::default();
        push(&mut lane, 0, 250.0, c.free_speed_mps, spec300());
        let mut r = rng();
        for _ in 0..30 {
            let crossed = update_lane(&mut lane, 300.0, HeadMode::Blocked, &c, &mut r);
            assert!(crossed.is_none(), "blocked head must never cross");
        }
        assert!(lane.speed_at(0) < 0.05);
        assert!(lane.pos_at(0) <= 300.0 + 1e-9);
        assert!(lane.pos_at(0) > 290.0, "head pos {}", lane.pos_at(0));
    }

    #[test]
    fn released_head_crosses_and_is_returned() {
        let c = cfg();
        let mut lane = Lane::default();
        push(&mut lane, 7, 295.0, 10.0, spec300());
        let mut r = rng();
        let crossed = update_lane(&mut lane, 300.0, HeadMode::Release, &c, &mut r);
        let (slot, _wait) = crossed.expect("head must cross");
        assert_eq!(slot, 7);
        assert!(lane.is_empty());
        assert_eq!(lane.rescan_sensors(spec300()), (0, 0));
    }

    #[test]
    fn queue_compacts_without_collisions() {
        let c = cfg();
        let mut lane = Lane::default();
        // Five vehicles strung out; head blocked at the line.
        for (i, pos) in [280.0, 220.0, 160.0, 100.0, 40.0].iter().enumerate() {
            push(&mut lane, i as u32, *pos, 10.0, spec300());
        }
        let mut r = rng();
        for _ in 0..80 {
            update_lane(&mut lane, 300.0, HeadMode::Blocked, &c, &mut r);
            // Strict ordering with at least a vehicle length between
            // consecutive front bumpers.
            for w in 0..lane.len() - 1 {
                let gap = lane.pos_at(w) - lane.pos_at(w + 1);
                assert!(
                    gap >= c.vehicle_length_m - 1e-6,
                    "overlap after step: gap {gap}"
                );
            }
        }
        // All stopped in a jam near the line at ~7.5 m spacing.
        for w in 0..lane.len() - 1 {
            let gap = lane.pos_at(w) - lane.pos_at(w + 1);
            assert!(
                (gap - c.jam_spacing_m()).abs() < 0.6,
                "jam spacing violated: {gap}"
            );
        }
    }

    #[test]
    fn detection_counts_only_near_the_stop_line() {
        let mut lane = Lane::default();
        lane.push(295.0, 0.0, 0, 0, 0);
        lane.push(287.0, 0.0, 0, 1, 0);
        lane.push(100.0, 10.0, 0, 2, 0); // far upstream
        assert_eq!(lane.detected(300.0, 100.0), 2);
        assert_eq!(lane.detected(300.0, 300.0), 3);
        assert_eq!(lane.detected(300.0, 1.0), 0);
    }

    #[test]
    fn entry_clearance_respects_jam_spacing() {
        let c = cfg();
        let mut lane = Lane::default();
        assert!(lane.entry_clear(300.0, &c), "empty lane is clear");
        lane.push(8.0, 0.0, 0, 0, 0);
        assert!(lane.entry_clear(300.0, &c));
        lane.push(6.0, 0.0, 0, 1, 0);
        assert!(!lane.entry_clear(300.0, &c), "tail at 6 m < 7.5 m");
        assert_eq!(lane.tail_position(300.0), 6.0);
    }

    #[test]
    fn successor_of_crossed_head_sees_the_line() {
        let c = cfg();
        let mut lane = Lane::default();
        push(&mut lane, 0, 296.0, 12.0, spec300());
        push(&mut lane, 1, 285.0, 12.0, spec300());
        let mut r = rng();
        let crossed = update_lane(&mut lane, 300.0, HeadMode::Release, &c, &mut r);
        assert!(crossed.is_some());
        assert_eq!(lane.len(), 1);
        // The successor advanced but is still on the lane.
        assert!(lane.pos_at(0) < 300.0);
        assert!(lane.pos_at(0) > 285.0);
    }

    #[test]
    fn advance_deltas_track_every_mutation() {
        // The advance functions report sensor-counter deltas; applied to a
        // running pair they must match a from-scratch rescan every step —
        // the invariant `MicroSim` relies on for its dense counter arrays.
        let c = cfg();
        let spec = spec300();
        let mut lane = Lane::default();
        // One vehicle upstream of the 50 m window, one inside it, halted.
        push(&mut lane, 0, 270.0, 0.0, spec);
        push(&mut lane, 1, 100.0, 13.0, spec);
        let (mut detected, mut halted) = lane.rescan_sensors(spec);
        assert_eq!((detected, halted), (1, 1));

        let mut r = rng();
        for _ in 0..60 {
            let outcome = advance_head(&mut lane, 300.0, HeadMode::Blocked, &c, spec, &mut r, None);
            let (dd, hd) = advance_followers(&mut lane, 300.0, &c, spec, &mut r, None);
            detected = (detected as i64 + outcome.detected_delta as i64 + dd) as u32;
            halted = (halted as i64 + outcome.halted_delta as i64 + hd) as u32;
            assert_eq!(
                (detected, halted),
                lane.rescan_sensors(spec),
                "deltas diverged from rescan"
            );
        }
        // Both vehicles end up jammed inside the window.
        assert_eq!((detected, halted), (2, 2));
    }

    #[test]
    fn waiting_accumulates_in_place_for_stopped_vehicles() {
        let c = cfg();
        let spec = spec300();
        let mut lane = Lane::default();
        push(&mut lane, 0, 299.0, 0.0, spec);
        push(&mut lane, 1, 150.0, c.free_speed_mps, spec);
        let mut r = rng();
        for _ in 0..40 {
            update_lane(&mut lane, 300.0, HeadMode::Blocked, &c, &mut r);
        }
        // The head sat at the line the whole time; the follower drove,
        // then queued behind it.
        let waits: Vec<u64> = lane.waits().collect();
        assert!(waits[0] >= 39, "head wait {waits:?}");
        assert!(
            waits[1] > 0 && waits[1] < waits[0],
            "follower waits less: {waits:?}"
        );
    }

    #[test]
    fn pop_head_compacts_storage() {
        let spec = spec300();
        let c = cfg();
        let mut lane = Lane::default();
        for i in 0..100u32 {
            push(
                &mut lane,
                i,
                299.0 - i as f64 * c.jam_spacing_m(),
                0.0,
                spec,
            );
        }
        for expect in 0..60u32 {
            let (slot, _) = lane.pop_head();
            assert_eq!(slot, expect);
            assert_eq!(lane.len(), (99 - expect) as usize);
        }
        // Offset-based dequeue must have compacted by now.
        assert!(lane.head < 40, "storage not compacted: head {}", lane.head);
        assert_eq!(lane.slot_at(0), 60);
        assert_eq!(lane.tail_position(300.0), lane.pos_at(lane.len() - 1));
    }

    #[test]
    fn arena_recycles_slots() {
        use utilbp_core::LinkId;
        use utilbp_netgen::{IntersectionId, RoadId};
        let route = Arc::new(Route::new(
            RoadId::new(0),
            vec![(IntersectionId::new(0), LinkId::new(0))],
        ));
        let mut arena = VehicleArena::new();
        let a = arena.insert(VehicleId::new(10), Arc::clone(&route));
        let b = arena.insert(VehicleId::new(11), Arc::clone(&route));
        assert_ne!(a, b);
        assert_eq!(arena.id(a), VehicleId::new(10));
        arena.bump_hop(a);
        assert_eq!(arena.hop(a), 1);
        assert_eq!(arena.release(a), VehicleId::new(10));
        // The freed slot is reused (LIFO) and starts a fresh cursor.
        let c = arena.insert(VehicleId::new(12), route);
        assert_eq!(c, a);
        assert_eq!(arena.hop(c), 0);
        assert_eq!(arena.id(c), VehicleId::new(12));
        assert_eq!(arena.id(b), VehicleId::new(11));
    }
}
