//! Lanes, vehicles, and the per-lane car-following update.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use utilbp_metrics::VehicleId;
use utilbp_netgen::Route;

use crate::config::MicroSimConfig;
use crate::krauss::{next_speed, LeaderInfo};

/// One simulated vehicle.
#[derive(Debug, Clone)]
pub(crate) struct Vehicle {
    pub id: VehicleId,
    pub route: Arc<Route>,
    /// Index of the next intersection to cross (== `route.len()` once on a
    /// boundary exit road).
    pub hop: usize,
    /// Front-bumper position along the current lane, meters from the lane
    /// start (the stop line is at the lane length).
    pub pos: f64,
    /// Current speed, m/s.
    pub speed: f64,
}

/// A single-file lane. `vehicles.front()` is the vehicle closest to the
/// stop line.
#[derive(Debug, Clone, Default)]
pub(crate) struct Lane {
    pub vehicles: VecDeque<Vehicle>,
}

impl Lane {
    /// Position of the last vehicle (smallest `pos`), or `length` if empty
    /// — the space available at the lane entry.
    pub fn tail_position(&self, length: f64) -> f64 {
        self.vehicles.back().map_or(length, |v| v.pos)
    }

    /// Whether a new vehicle can be placed at `pos = 0` while keeping jam
    /// spacing to the current tail.
    pub fn entry_clear(&self, length: f64, cfg: &MicroSimConfig) -> bool {
        self.tail_position(length) >= cfg.jam_spacing_m()
    }

    /// Number of vehicles within `range` meters of the stop line — what a
    /// presence detector reports.
    pub fn detected(&self, length: f64, range: f64) -> u32 {
        self.vehicles
            .iter()
            .filter(|v| v.pos >= length - range)
            .count() as u32
    }

    /// Number of *halted* vehicles (speed below `halt_speed`) within
    /// `range` meters of the stop line — what a SUMO-style jam detector
    /// reports, and the `q` the controllers observe.
    pub fn halted(&self, length: f64, range: f64, halt_speed: f64) -> u32 {
        self.vehicles
            .iter()
            .filter(|v| v.pos >= length - range && v.speed < halt_speed)
            .count() as u32
    }
}

/// What the head vehicle of a lane faces this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeadMode {
    /// Green with space downstream: the head may drive through the stop
    /// line (and is returned as crossed when its front passes it).
    Release,
    /// Red/amber or blocked downstream: the stop line is a wall.
    Blocked,
}

/// Advances every vehicle in the lane by one step (sequential front-to-back
/// Krauss update with an anti-overlap clamp). Returns the head vehicle if
/// it crossed the stop line under [`HeadMode::Release`].
pub(crate) fn update_lane(
    lane: &mut Lane,
    length: f64,
    head_mode: HeadMode,
    cfg: &MicroSimConfig,
    rng: &mut SmallRng,
) -> Option<Vehicle> {
    if lane.vehicles.is_empty() {
        return None;
    }

    let mut crossed = None;

    // Head vehicle.
    {
        let head = &mut lane.vehicles[0];
        let leader = match head_mode {
            HeadMode::Release => LeaderInfo::Free,
            HeadMode::Blocked => LeaderInfo::Wall {
                distance_m: length - head.pos,
            },
        };
        let xi = dawdle(cfg, rng);
        head.speed = next_speed(head.speed, leader, xi, cfg);
        head.pos += head.speed * cfg.dt_seconds;
        if head_mode == HeadMode::Release && head.pos >= length {
            crossed = lane.vehicles.pop_front();
        }
    }

    // Followers (and the new head if the old one crossed).
    let start = if crossed.is_some() { 0 } else { 1 };
    for i in start..lane.vehicles.len() {
        let (leader, leader_pos) = if i == 0 {
            // The previous head just crossed; its successor sees the stop
            // line (it will be re-evaluated for release next step).
            (
                LeaderInfo::Wall {
                    distance_m: length - lane.vehicles[0].pos,
                },
                f64::INFINITY,
            )
        } else {
            let lp = lane.vehicles[i - 1].pos;
            let ls = lane.vehicles[i - 1].speed;
            (
                LeaderInfo::Vehicle {
                    net_gap_m: lp - lane.vehicles[i].pos
                        - cfg.vehicle_length_m
                        - cfg.min_gap_m,
                    speed_mps: ls,
                },
                lp,
            )
        };
        let xi = dawdle(cfg, rng);
        let v = &mut lane.vehicles[i];
        let old_pos = v.pos;
        v.speed = next_speed(v.speed, leader, xi, cfg);
        v.pos += v.speed * cfg.dt_seconds;
        // Anti-overlap safety clamp (numerical guard; Krauss alone is
        // collision-free for consistent inputs).
        if leader_pos.is_finite() {
            let max_pos = leader_pos - cfg.vehicle_length_m - 0.05;
            if v.pos > max_pos {
                v.pos = max_pos.max(old_pos);
                v.speed = ((v.pos - old_pos) / cfg.dt_seconds).max(0.0);
            }
        }
    }

    crossed
}

fn dawdle(cfg: &MicroSimConfig, rng: &mut SmallRng) -> f64 {
    if cfg.sigma > 0.0 {
        rng.gen::<f64>()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use utilbp_core::LinkId;
    use utilbp_netgen::{IntersectionId, RoadId};

    fn cfg() -> MicroSimConfig {
        MicroSimConfig::deterministic()
    }

    fn veh(id: u64, pos: f64, speed: f64) -> Vehicle {
        Vehicle {
            id: VehicleId::new(id),
            route: Arc::new(Route::new(
                RoadId::new(0),
                vec![(IntersectionId::new(0), LinkId::new(0))],
            )),
            hop: 0,
            pos,
            speed,
        }
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    #[test]
    fn empty_lane_is_a_noop() {
        let mut lane = Lane::default();
        assert!(update_lane(&mut lane, 300.0, HeadMode::Release, &cfg(), &mut rng()).is_none());
    }

    #[test]
    fn blocked_head_stops_at_the_line() {
        let c = cfg();
        let mut lane = Lane::default();
        lane.vehicles.push_back(veh(0, 250.0, c.free_speed_mps));
        let mut r = rng();
        for _ in 0..30 {
            let crossed = update_lane(&mut lane, 300.0, HeadMode::Blocked, &c, &mut r);
            assert!(crossed.is_none(), "blocked head must never cross");
        }
        let head = &lane.vehicles[0];
        assert!(head.speed < 0.05);
        assert!(head.pos <= 300.0 + 1e-9);
        assert!(head.pos > 290.0, "head pos {}", head.pos);
    }

    #[test]
    fn released_head_crosses_and_is_returned() {
        let c = cfg();
        let mut lane = Lane::default();
        lane.vehicles.push_back(veh(7, 295.0, 10.0));
        let mut r = rng();
        let crossed = update_lane(&mut lane, 300.0, HeadMode::Release, &c, &mut r);
        let v = crossed.expect("head must cross");
        assert_eq!(v.id, VehicleId::new(7));
        assert!(lane.vehicles.is_empty());
    }

    #[test]
    fn queue_compacts_without_collisions() {
        let c = cfg();
        let mut lane = Lane::default();
        // Five vehicles strung out; head blocked at the line.
        for (i, pos) in [280.0, 220.0, 160.0, 100.0, 40.0].iter().enumerate() {
            lane.vehicles.push_back(veh(i as u64, *pos, 10.0));
        }
        let mut r = rng();
        for _ in 0..80 {
            update_lane(&mut lane, 300.0, HeadMode::Blocked, &c, &mut r);
            // Strict ordering with at least a vehicle length between
            // consecutive front bumpers.
            for w in 0..lane.vehicles.len() - 1 {
                let gap = lane.vehicles[w].pos - lane.vehicles[w + 1].pos;
                assert!(
                    gap >= c.vehicle_length_m - 1e-6,
                    "overlap after step: gap {gap}"
                );
            }
        }
        // All stopped in a jam near the line at ~7.5 m spacing.
        for w in 0..lane.vehicles.len() - 1 {
            let gap = lane.vehicles[w].pos - lane.vehicles[w + 1].pos;
            assert!(
                (gap - c.jam_spacing_m()).abs() < 0.6,
                "jam spacing violated: {gap}"
            );
        }
    }

    #[test]
    fn detection_counts_only_near_the_stop_line() {
        let mut lane = Lane::default();
        lane.vehicles.push_back(veh(0, 295.0, 0.0));
        lane.vehicles.push_back(veh(1, 287.0, 0.0));
        lane.vehicles.push_back(veh(2, 100.0, 10.0)); // far upstream
        assert_eq!(lane.detected(300.0, 100.0), 2);
        assert_eq!(lane.detected(300.0, 300.0), 3);
        assert_eq!(lane.detected(300.0, 1.0), 0);
    }

    #[test]
    fn entry_clearance_respects_jam_spacing() {
        let c = cfg();
        let mut lane = Lane::default();
        assert!(lane.entry_clear(300.0, &c), "empty lane is clear");
        lane.vehicles.push_back(veh(0, 8.0, 0.0));
        assert!(lane.entry_clear(300.0, &c));
        lane.vehicles.push_back(veh(1, 6.0, 0.0));
        assert!(!lane.entry_clear(300.0, &c), "tail at 6 m < 7.5 m");
        assert_eq!(lane.tail_position(300.0), 6.0);
    }

    #[test]
    fn successor_of_crossed_head_sees_the_line() {
        let c = cfg();
        let mut lane = Lane::default();
        lane.vehicles.push_back(veh(0, 296.0, 12.0));
        lane.vehicles.push_back(veh(1, 285.0, 12.0));
        let mut r = rng();
        let crossed = update_lane(&mut lane, 300.0, HeadMode::Release, &c, &mut r);
        assert!(crossed.is_some());
        assert_eq!(lane.vehicles.len(), 1);
        // The successor advanced but is still on the lane.
        assert!(lane.vehicles[0].pos < 300.0);
        assert!(lane.vehicles[0].pos > 285.0);
    }
}
