//! Lanes, vehicles, and the per-lane car-following update.
//!
//! ## Incremental sensing
//!
//! Every lane maintains two sensor counters alongside its vehicle deque:
//! the number of vehicles within the configured detector window of the
//! stop line ([`Lane::detected_count`]) and the number of halted vehicles
//! anywhere on the lane ([`Lane::halted_count`]). The counters are
//! updated at the *only* points where a vehicle's position or speed can
//! change — the car-following advance, stop-line crossings, junction-box
//! landings, and boundary insertions — so reading a detector is O(1)
//! instead of a rescan of the lane. The invariant (counter ≡ rescan under
//! the same [`SensorSpec`]) is enforced by `MicroSim::verify_sensors` and
//! a dedicated regression test.

use std::collections::VecDeque;
use std::sync::Arc;

use rand::rngs::SmallRng;
use rand::Rng;
use utilbp_metrics::VehicleId;
use utilbp_netgen::Route;

use crate::config::MicroSimConfig;
use crate::krauss::{next_speed, LeaderInfo};

/// One simulated vehicle.
#[derive(Debug, Clone)]
pub(crate) struct Vehicle {
    pub id: VehicleId,
    pub route: Arc<Route>,
    /// Index of the next intersection to cross (== `route.len()` once on a
    /// boundary exit road).
    pub hop: usize,
    /// Front-bumper position along the current lane, meters from the lane
    /// start (the stop line is at the lane length).
    pub pos: f64,
    /// Current speed, m/s.
    pub speed: f64,
}

/// The fixed sensor geometry of one road's lanes: everything needed to
/// classify a vehicle for the incremental counters.
#[derive(Debug, Clone, Copy)]
pub(crate) struct SensorSpec {
    /// Stop-line-relative detector start: a vehicle at `pos >=
    /// detect_from` is inside the detection window. `NEG_INFINITY` for an
    /// infinite detector range.
    pub detect_from: f64,
    /// Speed below which a vehicle counts as halted.
    pub halt_speed: f64,
}

impl SensorSpec {
    /// The spec for a road of `length` under `cfg`.
    pub fn for_road(length: f64, cfg: &MicroSimConfig) -> Self {
        SensorSpec {
            detect_from: if cfg.detection_range_m.is_finite() {
                length - cfg.detection_range_m
            } else {
                f64::NEG_INFINITY
            },
            halt_speed: cfg.halt_speed_mps,
        }
    }
}

/// A single-file lane. `vehicles.front()` is the vehicle closest to the
/// stop line.
#[derive(Debug, Clone, Default)]
pub(crate) struct Lane {
    pub vehicles: VecDeque<Vehicle>,
    /// Vehicles within the detection window (incremental; see module
    /// docs).
    detected: u32,
    /// Halted vehicles anywhere on the lane (incremental).
    halted: u32,
    /// Whether this lane's head crossed the stop line in the current
    /// step's head phase — consumed by [`advance_followers`].
    head_crossed: bool,
}

impl Lane {
    /// Position of the last vehicle (smallest `pos`), or `length` if empty
    /// — the space available at the lane entry.
    pub fn tail_position(&self, length: f64) -> f64 {
        self.vehicles.back().map_or(length, |v| v.pos)
    }

    /// Whether a new vehicle can be placed at `pos = 0` while keeping jam
    /// spacing to the current tail.
    pub fn entry_clear(&self, length: f64, cfg: &MicroSimConfig) -> bool {
        self.tail_position(length) >= cfg.jam_spacing_m()
    }

    /// Number of vehicles within `range` meters of the stop line — what a
    /// presence detector reports. O(n) rescan for arbitrary ranges; use
    /// [`detected_count`](Self::detected_count) for the configured
    /// detector.
    pub fn detected(&self, length: f64, range: f64) -> u32 {
        self.vehicles
            .iter()
            .filter(|v| v.pos >= length - range)
            .count() as u32
    }

    /// Number of *halted* vehicles (speed below `halt_speed`) within
    /// `range` meters of the stop line — what a SUMO-style jam detector
    /// reports. O(n) rescan; use [`halted_count`](Self::halted_count) for
    /// whole-lane reads under the configured halt speed.
    #[allow(dead_code)] // kept for ad-hoc detector queries and tests
    pub fn halted(&self, length: f64, range: f64, halt_speed: f64) -> u32 {
        self.vehicles
            .iter()
            .filter(|v| v.pos >= length - range && v.speed < halt_speed)
            .count() as u32
    }

    /// O(1) incremental count of vehicles inside the detection window.
    pub fn detected_count(&self) -> u32 {
        self.detected
    }

    /// O(1) incremental count of halted vehicles on the whole lane.
    pub fn halted_count(&self) -> u32 {
        self.halted
    }

    /// Registers a vehicle appearing on the lane (landing or insertion).
    pub fn sensor_add(&mut self, pos: f64, speed: f64, spec: SensorSpec) {
        if pos >= spec.detect_from {
            self.detected += 1;
        }
        if speed < spec.halt_speed {
            self.halted += 1;
        }
    }

    /// Registers a vehicle leaving the lane (crossing or completion).
    pub fn sensor_remove(&mut self, pos: f64, speed: f64, spec: SensorSpec) {
        if pos >= spec.detect_from {
            self.detected -= 1;
        }
        if speed < spec.halt_speed {
            self.halted -= 1;
        }
    }

    /// Registers a vehicle's state change in place.
    pub fn sensor_move(
        &mut self,
        old_pos: f64,
        old_speed: f64,
        new_pos: f64,
        new_speed: f64,
        spec: SensorSpec,
    ) {
        match (old_pos >= spec.detect_from, new_pos >= spec.detect_from) {
            (false, true) => self.detected += 1,
            (true, false) => self.detected -= 1,
            _ => {}
        }
        match (old_speed < spec.halt_speed, new_speed < spec.halt_speed) {
            (false, true) => self.halted += 1,
            (true, false) => self.halted -= 1,
            _ => {}
        }
    }

    /// Recomputes both counters by rescanning (used when validating the
    /// incremental-sensing invariant).
    pub fn rescan_sensors(&self, spec: SensorSpec) -> (u32, u32) {
        let detected = self
            .vehicles
            .iter()
            .filter(|v| v.pos >= spec.detect_from)
            .count() as u32;
        let halted = self
            .vehicles
            .iter()
            .filter(|v| v.speed < spec.halt_speed)
            .count() as u32;
        (detected, halted)
    }
}

/// Per-(road, link) movement counters for mixed-lane roads.
///
/// Under [`LaneDiscipline::SharedMixed`](crate::LaneDiscipline) a
/// movement's vehicles may sit on any lane, so the per-lane counters
/// cannot answer "how many vehicles bound for link `l`?". These arrays —
/// indexed by `LinkId::index()` at the road's destination intersection —
/// are maintained incrementally at the same mutation points as the lane
/// sensors (advance, crossing, landing, insertion), turning the
/// SharedMixed detector read from a per-decision lane rescan into an O(1)
/// lookup. A vehicle's movement is `route.hop(hop)`, which never changes
/// while it is on the road.
#[derive(Debug, Clone, Default)]
pub(crate) struct MovementCounters {
    /// Vehicles on the road bound for each link (any position).
    pub total: Vec<u32>,
    /// Vehicles bound for each link within the detection window.
    pub detected: Vec<u32>,
}

impl MovementCounters {
    /// Counters for a destination layout with `num_links` links.
    pub fn new(num_links: usize) -> Self {
        MovementCounters {
            total: vec![0; num_links],
            detected: vec![0; num_links],
        }
    }

    /// The link a vehicle on this road queues for.
    fn link_of(v: &Vehicle) -> usize {
        v.route
            .hop(v.hop)
            .expect("roads with movement counters feed an intersection")
            .1
            .index()
    }

    /// Registers a vehicle appearing on the road.
    pub fn add(&mut self, v: &Vehicle, spec: SensorSpec) {
        let l = Self::link_of(v);
        self.total[l] += 1;
        if v.pos >= spec.detect_from {
            self.detected[l] += 1;
        }
    }

    /// Registers a vehicle leaving the road from `pos` (crossings happen
    /// at or past the stop line, which is always inside the detector
    /// window).
    fn remove(&mut self, v: &Vehicle, pos: f64, spec: SensorSpec) {
        let l = Self::link_of(v);
        self.total[l] -= 1;
        if pos >= spec.detect_from {
            self.detected[l] -= 1;
        }
    }

    /// Registers an in-place movement across the detector boundary.
    fn moved(&mut self, v: &Vehicle, old_pos: f64, new_pos: f64, spec: SensorSpec) {
        match (old_pos >= spec.detect_from, new_pos >= spec.detect_from) {
            (false, true) => self.detected[Self::link_of(v)] += 1,
            (true, false) => self.detected[Self::link_of(v)] -= 1,
            _ => {}
        }
    }
}

/// What the head vehicle of a lane faces this step.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum HeadMode {
    /// Green with space downstream: the head may drive through the stop
    /// line (and is returned as crossed when its front passes it).
    Release,
    /// Red/amber or blocked downstream: the stop line is a wall.
    Blocked,
}

/// Advances only the head vehicle by one step, popping and returning it
/// if it crossed the stop line under [`HeadMode::Release`]. Records the
/// crossing on the lane so the follower phase ([`advance_followers`]) can
/// run later — possibly on another thread — without re-deriving it.
///
/// If the head stays on the lane at waiting speed, its id is appended to
/// `waiting` (the road's reusable waiting-accumulation buffer), saving
/// the separate whole-network waiting scan.
#[allow(clippy::too_many_arguments)]
pub(crate) fn advance_head(
    lane: &mut Lane,
    length: f64,
    head_mode: HeadMode,
    cfg: &MicroSimConfig,
    spec: SensorSpec,
    rng: &mut SmallRng,
    waiting: &mut Vec<VehicleId>,
    mut movements: Option<&mut MovementCounters>,
) -> Option<Vehicle> {
    lane.head_crossed = false;
    if lane.vehicles.is_empty() {
        return None;
    }

    let head = &mut lane.vehicles[0];
    let leader = match head_mode {
        HeadMode::Release => LeaderInfo::Free,
        HeadMode::Blocked => LeaderInfo::Wall {
            distance_m: length - head.pos,
        },
    };
    let xi = dawdle(cfg, rng);
    let (old_pos, old_speed) = (head.pos, head.speed);
    head.speed = next_speed(head.speed, leader, xi, cfg);
    head.pos += head.speed * cfg.dt_seconds;
    let (new_pos, new_speed) = (head.pos, head.speed);
    if new_speed < cfg.waiting_speed_mps {
        waiting.push(head.id);
    }
    lane.sensor_move(old_pos, old_speed, new_pos, new_speed, spec);
    if let Some(mv) = movements.as_deref_mut() {
        mv.moved(&lane.vehicles[0], old_pos, new_pos, spec);
    }

    if head_mode == HeadMode::Release && new_pos >= length {
        lane.sensor_remove(new_pos, new_speed, spec);
        lane.head_crossed = true;
        // A crossed head is in the junction box, not waiting; undo.
        if new_speed < cfg.waiting_speed_mps {
            waiting.pop();
        }
        let crossed = lane.vehicles.pop_front();
        if let (Some(mv), Some(v)) = (movements, crossed.as_ref()) {
            mv.remove(v, new_pos, spec);
        }
        return crossed;
    }
    None
}

/// Advances every remaining vehicle of the lane (sequential
/// front-to-back Krauss update with an anti-overlap clamp). Must be
/// called exactly once after [`advance_head`] each step; independent
/// across lanes and roads, which is what the parallel car-following
/// phase shards. Vehicles ending the step at waiting speed are appended
/// to `waiting`.
pub(crate) fn advance_followers(
    lane: &mut Lane,
    length: f64,
    cfg: &MicroSimConfig,
    spec: SensorSpec,
    rng: &mut SmallRng,
    waiting: &mut Vec<VehicleId>,
    mut movements: Option<&mut MovementCounters>,
) {
    let mut start = if lane.head_crossed { 0 } else { 1 };
    lane.head_crossed = false;
    if lane.vehicles.len() <= start {
        return;
    }
    let mut detected_delta = 0i64;
    let mut halted_delta = 0i64;
    // Leader state of vehicle `i` (updated before `i` moves, so each
    // follower reacts to its leader's already-advanced state, as in the
    // sequential front-to-back Krauss update). `INFINITY` position marks
    // "no leader; the stop line is the obstacle" — the case right after
    // the head crossed (its successor is re-evaluated for release next
    // step).
    let mut leader_pos = f64::INFINITY;
    let mut leader_speed = 0.0;
    if start == 1 {
        let head = &lane.vehicles[0];
        (leader_pos, leader_speed) = (head.pos, head.speed);
    }
    // Iterate the deque's two backing slices directly instead of
    // `make_contiguous`: this is the simulator's innermost hot loop, and
    // busy lanes (constant pop-front/push-back traffic) would otherwise
    // pay an O(n) ring rotation every step.
    let (front, back) = lane.vehicles.as_mut_slices();
    for slice in [front, back] {
        let part = if start >= slice.len() {
            start -= slice.len();
            continue;
        } else {
            let part = &mut slice[start..];
            start = 0;
            part
        };
        for v in part {
            let leader = if leader_pos.is_finite() {
                LeaderInfo::Vehicle {
                    net_gap_m: leader_pos - v.pos - cfg.vehicle_length_m - cfg.min_gap_m,
                    speed_mps: leader_speed,
                }
            } else {
                LeaderInfo::Wall {
                    distance_m: length - v.pos,
                }
            };
            let xi = dawdle(cfg, rng);
            let old_pos = v.pos;
            let old_speed = v.speed;
            v.speed = next_speed(v.speed, leader, xi, cfg);
            v.pos += v.speed * cfg.dt_seconds;
            // Anti-overlap safety clamp (numerical guard; Krauss alone is
            // collision-free for consistent inputs).
            if leader_pos.is_finite() {
                let max_pos = leader_pos - cfg.vehicle_length_m - 0.05;
                if v.pos > max_pos {
                    v.pos = max_pos.max(old_pos);
                    v.speed = ((v.pos - old_pos) / cfg.dt_seconds).max(0.0);
                }
            }
            detected_delta +=
                (v.pos >= spec.detect_from) as i64 - (old_pos >= spec.detect_from) as i64;
            halted_delta +=
                (v.speed < spec.halt_speed) as i64 - (old_speed < spec.halt_speed) as i64;
            if let Some(mv) = movements.as_deref_mut() {
                mv.moved(v, old_pos, v.pos, spec);
            }
            if v.speed < cfg.waiting_speed_mps {
                waiting.push(v.id);
            }
            (leader_pos, leader_speed) = (v.pos, v.speed);
        }
    }
    lane.detected = (lane.detected as i64 + detected_delta) as u32;
    lane.halted = (lane.halted as i64 + halted_delta) as u32;
}

/// Advances every vehicle in the lane by one step. Returns the head
/// vehicle if it crossed the stop line under [`HeadMode::Release`].
///
/// Composition of [`advance_head`] and [`advance_followers`]; the
/// simulator calls the two phases separately (all heads first, then all
/// followers) so the follower phase can shard across threads.
#[cfg_attr(not(test), allow(dead_code))]
pub(crate) fn update_lane(
    lane: &mut Lane,
    length: f64,
    head_mode: HeadMode,
    cfg: &MicroSimConfig,
    rng: &mut SmallRng,
) -> Option<Vehicle> {
    let spec = SensorSpec::for_road(length, cfg);
    let mut waiting = Vec::new();
    let crossed = advance_head(lane, length, head_mode, cfg, spec, rng, &mut waiting, None);
    advance_followers(lane, length, cfg, spec, rng, &mut waiting, None);
    crossed
}

fn dawdle(cfg: &MicroSimConfig, rng: &mut SmallRng) -> f64 {
    if cfg.sigma > 0.0 {
        rng.gen::<f64>()
    } else {
        0.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;
    use utilbp_core::LinkId;
    use utilbp_netgen::{IntersectionId, RoadId};

    fn cfg() -> MicroSimConfig {
        MicroSimConfig::deterministic()
    }

    fn veh(id: u64, pos: f64, speed: f64) -> Vehicle {
        Vehicle {
            id: VehicleId::new(id),
            route: Arc::new(Route::new(
                RoadId::new(0),
                vec![(IntersectionId::new(0), LinkId::new(0))],
            )),
            hop: 0,
            pos,
            speed,
        }
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(0)
    }

    /// Pushes a vehicle through the sensor bookkeeping like the simulator
    /// does.
    fn push(lane: &mut Lane, v: Vehicle, spec: SensorSpec) {
        lane.sensor_add(v.pos, v.speed, spec);
        lane.vehicles.push_back(v);
    }

    fn spec300() -> SensorSpec {
        SensorSpec::for_road(300.0, &cfg())
    }

    #[test]
    fn empty_lane_is_a_noop() {
        let mut lane = Lane::default();
        assert!(update_lane(&mut lane, 300.0, HeadMode::Release, &cfg(), &mut rng()).is_none());
    }

    #[test]
    fn blocked_head_stops_at_the_line() {
        let c = cfg();
        let mut lane = Lane::default();
        push(&mut lane, veh(0, 250.0, c.free_speed_mps), spec300());
        let mut r = rng();
        for _ in 0..30 {
            let crossed = update_lane(&mut lane, 300.0, HeadMode::Blocked, &c, &mut r);
            assert!(crossed.is_none(), "blocked head must never cross");
        }
        let head = &lane.vehicles[0];
        assert!(head.speed < 0.05);
        assert!(head.pos <= 300.0 + 1e-9);
        assert!(head.pos > 290.0, "head pos {}", head.pos);
    }

    #[test]
    fn released_head_crosses_and_is_returned() {
        let c = cfg();
        let mut lane = Lane::default();
        push(&mut lane, veh(7, 295.0, 10.0), spec300());
        let mut r = rng();
        let crossed = update_lane(&mut lane, 300.0, HeadMode::Release, &c, &mut r);
        let v = crossed.expect("head must cross");
        assert_eq!(v.id, VehicleId::new(7));
        assert!(lane.vehicles.is_empty());
        assert_eq!(lane.detected_count(), 0);
        assert_eq!(lane.halted_count(), 0);
    }

    #[test]
    fn queue_compacts_without_collisions() {
        let c = cfg();
        let mut lane = Lane::default();
        // Five vehicles strung out; head blocked at the line.
        for (i, pos) in [280.0, 220.0, 160.0, 100.0, 40.0].iter().enumerate() {
            push(&mut lane, veh(i as u64, *pos, 10.0), spec300());
        }
        let mut r = rng();
        for _ in 0..80 {
            update_lane(&mut lane, 300.0, HeadMode::Blocked, &c, &mut r);
            // Strict ordering with at least a vehicle length between
            // consecutive front bumpers.
            for w in 0..lane.vehicles.len() - 1 {
                let gap = lane.vehicles[w].pos - lane.vehicles[w + 1].pos;
                assert!(
                    gap >= c.vehicle_length_m - 1e-6,
                    "overlap after step: gap {gap}"
                );
            }
        }
        // All stopped in a jam near the line at ~7.5 m spacing.
        for w in 0..lane.vehicles.len() - 1 {
            let gap = lane.vehicles[w].pos - lane.vehicles[w + 1].pos;
            assert!(
                (gap - c.jam_spacing_m()).abs() < 0.6,
                "jam spacing violated: {gap}"
            );
        }
    }

    #[test]
    fn detection_counts_only_near_the_stop_line() {
        let mut lane = Lane::default();
        lane.vehicles.push_back(veh(0, 295.0, 0.0));
        lane.vehicles.push_back(veh(1, 287.0, 0.0));
        lane.vehicles.push_back(veh(2, 100.0, 10.0)); // far upstream
        assert_eq!(lane.detected(300.0, 100.0), 2);
        assert_eq!(lane.detected(300.0, 300.0), 3);
        assert_eq!(lane.detected(300.0, 1.0), 0);
    }

    #[test]
    fn entry_clearance_respects_jam_spacing() {
        let c = cfg();
        let mut lane = Lane::default();
        assert!(lane.entry_clear(300.0, &c), "empty lane is clear");
        lane.vehicles.push_back(veh(0, 8.0, 0.0));
        assert!(lane.entry_clear(300.0, &c));
        lane.vehicles.push_back(veh(1, 6.0, 0.0));
        assert!(!lane.entry_clear(300.0, &c), "tail at 6 m < 7.5 m");
        assert_eq!(lane.tail_position(300.0), 6.0);
    }

    #[test]
    fn successor_of_crossed_head_sees_the_line() {
        let c = cfg();
        let mut lane = Lane::default();
        push(&mut lane, veh(0, 296.0, 12.0), spec300());
        push(&mut lane, veh(1, 285.0, 12.0), spec300());
        let mut r = rng();
        let crossed = update_lane(&mut lane, 300.0, HeadMode::Release, &c, &mut r);
        assert!(crossed.is_some());
        assert_eq!(lane.vehicles.len(), 1);
        // The successor advanced but is still on the lane.
        assert!(lane.vehicles[0].pos < 300.0);
        assert!(lane.vehicles[0].pos > 285.0);
    }

    #[test]
    fn incremental_counters_track_every_mutation() {
        let c = cfg();
        let spec = spec300();
        let mut lane = Lane::default();
        // One vehicle upstream of the 50 m window, one inside it, halted.
        push(&mut lane, veh(0, 270.0, 0.0), spec);
        push(&mut lane, veh(1, 100.0, 13.0), spec);
        let (d, h) = lane.rescan_sensors(spec);
        assert_eq!((lane.detected_count(), lane.halted_count()), (d, h));
        assert_eq!((d, h), (1, 1));

        let mut r = rng();
        for _ in 0..60 {
            update_lane(&mut lane, 300.0, HeadMode::Blocked, &c, &mut r);
            let (d, h) = lane.rescan_sensors(spec);
            assert_eq!(
                (lane.detected_count(), lane.halted_count()),
                (d, h),
                "counters diverged from rescan"
            );
        }
        // Both vehicles end up jammed inside the window.
        assert_eq!(lane.detected_count(), 2);
        assert_eq!(lane.halted_count(), 2);
    }
}
