//! Counter-based dawdle noise for the batched fidelity.
//!
//! Exact mode draws dawdling noise from a *sequential* per-road stream:
//! every draw depends on how many draws came before it, which welds the
//! car-following loop to the visitation order and to a serial dependency
//! chain through the generator state. The batched kernel instead derives
//! each sample *statelessly* from the key `(seed, vehicle_id, tick)`:
//!
//! - **Order-independent** — a vehicle's draw is the same whatever order
//!   the fleet is visited in, so lanes can be updated in any order (or in
//!   SIMD lanes) without changing a single trajectory.
//! - **Deterministic** — the same key always yields the same sample,
//!   across `Serial`/`Rayon`, repeats, and checkpoint restores (the key
//!   is plain data, so there is no stream position to save).
//! - **Vectorizable** — one SplitMix64-style integer mix plus a bit-cast
//!   to `f64`; no loop-carried state and no `u64 → f64` conversion
//!   instruction (pre-AVX-512 hardware has none worth vectorizing).
//!
//! The statistical quality bar is modest — dawdling wants i.i.d.-looking
//! `U[0, 1)` noise, not cryptographic strength — and the SplitMix64
//! finalizer comfortably clears it (it is the same avalanche the
//! workspace's `SmallRng` shim uses for seeding).

/// Mixes the draw key into a scrambled 64-bit word.
///
/// The three words are combined injectively-enough (distinct odd
/// multipliers per coordinate, from the SplitMix64/xxHash constant
/// families) and then avalanched by the SplitMix64 finalizer, so flipping
/// any key bit flips each output bit with probability ≈ 1/2.
#[inline]
pub(crate) fn mix(seed: u64, vehicle_id: u64, tick: u64) -> u64 {
    finish(base(seed, tick), vehicle_id)
}

/// The `(seed, tick)` half of the key combination — loop-invariant
/// across a tick, so batch callers hoist it out of their per-vehicle
/// loops.
#[inline]
pub(crate) fn base(seed: u64, tick: u64) -> u64 {
    seed.wrapping_add(tick.wrapping_mul(0xD1B5_4A32_D192_ED03))
}

/// Folds a vehicle id into a hoisted [`base`] word and avalanches:
/// `finish(base(s, t), v) == mix(s, v, t)` by construction.
#[inline]
pub(crate) fn finish(base: u64, vehicle_id: u64) -> u64 {
    let mut z = base.wrapping_add(vehicle_id.wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Maps a scrambled word to `U[0, 1)` with 52 random mantissa bits: the
/// top bits are planted into the mantissa of a double in `[1, 2)` and the
/// result shifted down — pure bit ops plus one subtraction, so the batch
/// kernel's draw loop autovectorizes.
#[inline]
pub(crate) fn uniform01(word: u64) -> f64 {
    f64::from_bits((word >> 12) | 0x3FF0_0000_0000_0000) - 1.0
}

/// The dawdle sample `ξ ∈ [0, 1)` for `vehicle_id` at `tick` under
/// `seed` — the batched replacement for one sequential `rng.gen::<f64>()`.
#[inline]
pub(crate) fn dawdle_xi(seed: u64, vehicle_id: u64, tick: u64) -> f64 {
    uniform01(mix(seed, vehicle_id, tick))
}

/// Bulk dawdle draws: `out[k] = sigma_a_dt * uniform01(finish(xi_base,
/// ids[k]))` for each packed id. This is the `simd`-feature pass of the
/// batched kernel: the loop has no loop-carried state — each element is
/// an integer avalanche, a bit-plant, and two float ops on contiguous
/// input/output — so the optimizer autovectorizes it, whereas the fused
/// per-follower draw sits inside the sequential Krauss recurrence where
/// no vectorization is possible. Compiled (and unit-tested for
/// bit-identity against the inline expression) unconditionally so the
/// gated path can never drift from the default one.
#[cfg_attr(not(any(test, feature = "simd")), allow(dead_code))]
#[inline]
pub(crate) fn fill_xi(xi_base: u64, sigma_a_dt: f64, ids: &[u64], out: &mut [f64]) {
    for (o, &v) in out.iter_mut().zip(ids) {
        *o = sigma_a_dt * uniform01(finish(xi_base, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn draws_are_independent_of_visitation_order() {
        // The property the batched kernel rests on: a draw is a pure
        // function of its key, so visiting vehicles front-to-back,
        // back-to-front, or interleaved across lanes yields identical
        // noise per vehicle.
        let seed = 0xDEAD_BEEF;
        let keys: Vec<(u64, u64)> = (0..64)
            .flat_map(|v| (0..16).map(move |t| (v * 17 + 3, t * 31)))
            .collect();
        let forward: Vec<f64> = keys.iter().map(|&(v, t)| dawdle_xi(seed, v, t)).collect();
        let reverse: Vec<f64> = keys
            .iter()
            .rev()
            .map(|&(v, t)| dawdle_xi(seed, v, t))
            .collect();
        let strided: Vec<f64> = (0..keys.len())
            .map(|i| {
                let (v, t) = keys[(i * 7) % keys.len()];
                dawdle_xi(seed, v, t)
            })
            .collect();
        for (i, &x) in forward.iter().enumerate() {
            assert_eq!(x.to_bits(), reverse[keys.len() - 1 - i].to_bits());
            // Find the strided position of key i: j with (j*7) % len == i.
            let j = (0..keys.len())
                .find(|&j| (j * 7) % keys.len() == i)
                .unwrap();
            assert_eq!(x.to_bits(), strided[j].to_bits());
        }
    }

    #[test]
    fn distinct_keys_decorrelate() {
        // Neighboring keys (vehicle ± 1, tick ± 1, seed ± 1) must not
        // produce equal or near-equal draws — the finalizer's avalanche
        // at the smallest key perturbations.
        let base = dawdle_xi(7, 42, 1000);
        for (s, v, t) in [(7, 43, 1000), (7, 42, 1001), (8, 42, 1000), (7, 41, 999)] {
            let other = dawdle_xi(s, v, t);
            assert_ne!(base.to_bits(), other.to_bits(), "key ({s},{v},{t})");
        }
        // A window of keys yields all-distinct samples (53-bit draws:
        // collisions in a few thousand draws would be astronomical luck).
        let mut seen: Vec<u64> = (0..64u64)
            .flat_map(|v| (0..64u64).map(move |t| dawdle_xi(0, v, t).to_bits()))
            .collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), 64 * 64, "duplicate draws across distinct keys");
    }

    #[test]
    fn uniformity_sanity() {
        // 100k draws across a realistic key grid: mean near 1/2, decile
        // bins near 10% each, range actually exercised. A smoke-level
        // frequency test, not a NIST battery — dawdling noise only needs
        // to look i.i.d. uniform to the physics.
        let n = 100_000u64;
        let mut sum = 0.0;
        let mut bins = [0u32; 10];
        let (mut min, mut max) = (f64::INFINITY, f64::NEG_INFINITY);
        for k in 0..n {
            let x = dawdle_xi(2020, k % 977, k / 977);
            assert!((0.0..1.0).contains(&x), "draw out of [0,1): {x}");
            sum += x;
            bins[(x * 10.0) as usize] += 1;
            min = min.min(x);
            max = max.max(x);
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.005, "mean {mean}");
        for (i, &b) in bins.iter().enumerate() {
            let frac = f64::from(b) / n as f64;
            assert!((frac - 0.1).abs() < 0.01, "bin {i} frequency {frac}");
        }
        assert!(min < 0.001 && max > 0.999, "range [{min}, {max}]");
    }

    #[test]
    fn hoisted_base_matches_the_fused_mix() {
        // The batch kernel hoists `base(seed, tick)` per road-tick and
        // folds ids in the loop; the split must reproduce `mix` exactly
        // or the hoist would silently change every trajectory.
        for (s, v, t) in [
            (0, 0, 0),
            (7, 42, 1000),
            (u64::MAX, 3, 9),
            (2020, u64::MAX, u64::MAX),
        ] {
            assert_eq!(finish(base(s, t), v), mix(s, v, t));
        }
    }

    #[test]
    fn bulk_draws_are_bit_identical_to_the_inline_path() {
        // The `simd` feature swaps the kernel's fused per-follower draw
        // for a precomputed buffer filled by `fill_xi`; the swap is only
        // sound if every element matches the inline expression to the
        // bit (f64 multiplication is commutative bitwise, and the hash
        // is element-pure, so equality must be exact, not approximate).
        let xi_base = base(2020, 777);
        let ids: Vec<u64> = (0..200).map(|k| k * 13 + 5).collect();
        for sigma_a_dt in [0.375, 1.0, 0.0625] {
            let mut out = vec![0.0; ids.len()];
            fill_xi(xi_base, sigma_a_dt, &ids, &mut out);
            for (k, &v) in ids.iter().enumerate() {
                let inline = sigma_a_dt * uniform01(finish(xi_base, v));
                assert_eq!(out[k].to_bits(), inline.to_bits(), "id {v}");
            }
        }
    }

    #[test]
    fn uniform01_plants_the_top_bits() {
        assert_eq!(uniform01(0), 0.0);
        assert!(uniform01(u64::MAX) < 1.0);
        assert!((uniform01(1u64 << 63) - 0.5).abs() < 1e-12);
    }
}
